"""Table 5: characteristics of the compressed LP constraint matrices.

Paper: 10^2-10^3x nnz compression at moderate error; tiny budgets give
huge errors that collapse once enough colors are used.
"""

from repro.experiments.table5_lp import lp_compression_rows

from _bench_utils import run_once, scale_factor


def test_table5_lp_compression(benchmark, report):
    rows = run_once(
        benchmark,
        lp_compression_rows,
        datasets=("qap15", "nug08-3rd", "supportcase10", "ex10"),
        scale=scale_factor(0.04),
        color_budgets=(10, 50, 100),
    )
    report(
        "table5_lp_compression",
        rows,
        "Table 5: compressed constraint-matrix characteristics",
    )
    for row in rows:
        assert row["compression"] >= 1.0
        assert row["rows"] <= row["colors"]
    # Largest budget should have moderate error on at least 3/4 datasets.
    final = [row for row in rows if row["colors"] == 100]
    moderate = sum(row["rel_error"] < 2.0 for row in final)
    assert moderate >= 3
