"""Ablation A-3: Eq. (4) sqrt-normalized vs Grohe LP reduction.

Sec. 4.1 shows both are instances of one family (related by diagonal
rescaling), so on a *stable* coloring they give identical optima; under
quasi-stability they may diverge.  We measure both modes across budgets.
"""

from repro.datasets.registry import load_lp
from repro.lp.reduction import approx_lp_opt
from repro.lp.solve import solve_lp
from repro.utils.stats import ratio_error

from _bench_utils import run_once, scale_factor


def _mode_rows(scale: float):
    rows = []
    lp = load_lp("qap15", scale=scale)
    exact = solve_lp(lp).objective
    for budget in (10, 30, 60):
        for mode in ("sqrt", "grohe"):
            result = approx_lp_opt(lp, n_colors=budget, mode=mode)
            rows.append(
                {
                    "mode": mode,
                    "colors": budget,
                    "exact": exact,
                    "approx": result.value,
                    "rel_error": ratio_error(exact, result.value),
                }
            )
    return rows


def test_ablation_lp_reduction_mode(benchmark, report):
    rows = run_once(benchmark, _mode_rows, scale_factor(0.04))
    report(
        "ablation_lp_reduction",
        rows,
        "Ablation A-3: sqrt (Eq. 4) vs Grohe reduction",
    )
    # Both modes must converge to moderate error at the largest budget.
    final = [row for row in rows if row["colors"] == 60]
    assert all(row["rel_error"] < 3.0 for row in final)
