"""Dynamic maintenance: update latency vs recolor-from-scratch.

For each churn scenario (random endpoint churn, hub-concentrated churn,
multiplicative weight jitter) on registry datasets, a
:class:`DynamicColoring` absorbs single-edge updates one at a time while
a from-scratch Rothko run on the final graph provides the baseline.

The acceptance bar: the maintained coloring's max q-error stays within
the configured tolerance (same bar the scratch run meets), and the mean
per-update repair cost is a fraction (``work_ratio < 1``) of one full
recoloring.
"""

from __future__ import annotations

import time

from repro.core.qerror import max_q_err
from repro.core.rothko import Rothko, q_color
from repro.datasets.churn import churn_scenario
from repro.datasets.registry import load_graph
from repro.dynamic import DynamicColoring

from _bench_utils import run_once, scale_factor

SCENARIOS = ("random", "hub", "jitter")
DATASETS = (("openflights", 0.06), ("deezer", 0.015))
SEED_COLORS = 40
N_UPDATES = 60
TOLERANCE_SLACK = 1e-6


def _scenario_row(dataset_name, scale, scenario, n_updates=N_UPDATES, seed=11):
    graph = load_graph(dataset_name, scale=scale)
    seeded = q_color(graph, n_colors=SEED_COLORS)
    tolerance = seeded.max_q_err
    updates = churn_scenario(scenario, graph, n_updates, seed=seed)

    dynamic = DynamicColoring(
        graph, q_tolerance=tolerance, coloring=seeded.coloring
    )
    latencies = []
    for update in updates:
        start = time.perf_counter()
        dynamic.apply(update)
        latencies.append(time.perf_counter() - start)
    snapshot = dynamic.snapshot()
    dynamic.detach()

    adjacency = graph.to_csr()
    start = time.perf_counter()
    scratch = Rothko(adjacency).run(
        q_tolerance=tolerance, max_colors=graph.n_nodes
    )
    recolor_s = time.perf_counter() - start

    mean_update_s = sum(latencies) / len(latencies)
    achieved = max_q_err(adjacency, snapshot)
    return {
        "dataset": dataset_name,
        "scenario": scenario,
        "nodes": graph.n_nodes,
        "updates": len(latencies),
        "tolerance": tolerance,
        "incr_max_q": achieved,
        "scratch_max_q": scratch.max_q_err,
        "incr_colors": snapshot.n_colors,
        "scratch_colors": scratch.n_colors,
        "update_ms": mean_update_s * 1e3,
        "recolor_ms": recolor_s * 1e3,
        "work_ratio": mean_update_s / recolor_s,
        "splits": dynamic.stats.splits,
        "merges": dynamic.stats.merges,
        "rebuilds": dynamic.stats.rebuilds,
    }


def _all_rows():
    rows = []
    for dataset_name, base_scale in DATASETS:
        scale = scale_factor(base_scale)
        for scenario in SCENARIOS:
            rows.append(_scenario_row(dataset_name, scale, scenario))
    return rows


def test_dynamic_updates(benchmark, report):
    rows = run_once(benchmark, _all_rows)
    report(
        "dynamic_updates",
        rows,
        "Dynamic maintenance: per-update repair vs recolor-from-scratch",
    )
    for row in rows:
        context = f"{row['dataset']}/{row['scenario']}"
        # Invariant: incremental repair meets the same tolerance a
        # from-scratch recoloring is run to.
        assert row["incr_max_q"] <= row["tolerance"] + TOLERANCE_SLACK, context
        # Single-edge maintenance must be measurably cheaper than one
        # full recoloring.
        assert row["work_ratio"] < 1.0, context
