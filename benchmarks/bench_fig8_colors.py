"""Fig. 8: accuracy as a function of the number of colors (all tasks).

Paper: no task needs more than ~150 colors to converge, with diminishing
returns; max-flow and centrality improve monotonically, LP need not.
"""

from repro.experiments.fig8_colors import accuracy_vs_colors

from _bench_utils import run_once, scale_factor


def test_fig8_maxflow(benchmark, report):
    rows = run_once(
        benchmark,
        accuracy_vs_colors,
        "maxflow",
        scale=scale_factor(0.003),
        datasets=("tsukuba0",),
        color_budgets=(4, 8, 16, 32),
    )
    report(
        "fig8a_maxflow_colors",
        rows,
        "Fig. 8(a): max-flow accuracy vs #colors",
        columns=["dataset", "colors", "accuracy"],
    )
    errors = [row["accuracy"] for row in rows]
    assert errors[-1] <= errors[0] + 1e-9  # more colors help overall


def test_fig8_lp(benchmark, report):
    rows = run_once(
        benchmark,
        accuracy_vs_colors,
        "lp",
        scale=scale_factor(0.04),
        datasets=("qap15",),
        color_budgets=(8, 16, 32, 64),
    )
    report(
        "fig8b_lp_colors",
        rows,
        "Fig. 8(b): LP accuracy vs #colors",
        columns=["dataset", "colors", "accuracy"],
    )
    assert rows[-1]["accuracy"] < rows[0]["accuracy"] + 1.0


def test_fig8_centrality(benchmark, report):
    rows = run_once(
        benchmark,
        accuracy_vs_colors,
        "centrality",
        scale=scale_factor(0.01),
        datasets=("facebook",),
        color_budgets=(5, 10, 20, 50, 100),
    )
    report(
        "fig8c_centrality_colors",
        rows,
        "Fig. 8(c): centrality rho vs #colors",
        columns=["dataset", "colors", "accuracy"],
    )
    rhos = [row["accuracy"] for row in rows]
    # Diminishing returns: by 50 colors the correlation is already high.
    assert max(rhos) > 0.85
    assert rhos[-1] >= rhos[0]
