#!/usr/bin/env python
"""Run the pytest-benchmark suites and persist machine-readable results.

Each selected ``bench_*.py`` file is executed under pytest with
``--benchmark-json``; the raw output is condensed to one JSON document per
suite under ``benchmarks/results/<suite>.json``::

    {
      "suite": "bench_rothko_scaling",
      "smoke": false,
      "max_rss_mb": 189.3,
      "metrics": {"counters": {"rothko.splits": 1270, ...},
                  "gauges": {...}, "histograms": {...}},
      "spans": {"rothko.split": {"count": 1270, "total_s": ...}, ...},
      "results": [
        {"name": "test_rothko_scaling_colors[128]", "median": 0.053,
         "mean": 0.054, "stddev": 0.001, "rounds": 9},
        ...
      ]
    }

Each suite runs pytest in a child interpreter with an observability
recorder installed, so the condensed document carries the suite's
metrics snapshot (``metrics``) and per-span-name aggregates (``spans``)
alongside the timings.  The child also reports its own peak RSS
(``resource.getrusage`` — KiB on Linux, bytes on macOS; ``None`` on
platforms without the ``resource`` module), persisted as ``max_rss_mb``;
benchmarks that attach ``extra_info`` (e.g. the large-scale Rothko
suite's traced peak memory) carry it through to the condensed results.
``--json`` additionally writes one consolidated ``BENCH_<date>.json``
at the repo root mapping every suite to its per-benchmark medians and
peak RSS — the committed regression baseline
(``benchmarks/check_regressions.py`` diffs a fresh run against it).
The header records the run's ``{backend, device, workers}`` config
(from ``REPRO_BACKEND``/``REPRO_WORKERS``); a same-day run under a
*different* config writes ``BENCH_<date>.<backend>-w<workers>.json``
instead of overwriting the other config's numbers.

Usage::

    python benchmarks/run_benchmarks.py --json                      # all suites
    python benchmarks/run_benchmarks.py --json --select rothko_scaling
    python benchmarks/run_benchmarks.py --json --smoke --select rothko_scaling

``--smoke`` runs a single round of the smallest parametrization (per the
registry below) — fast enough for CI, still exercising the real perf
path end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"

#: ``-k`` filters selecting the smallest parametrization for smoke mode
SMOKE_FILTERS = {
    "bench_rothko_scaling": (
        "test_rothko_scaling_nodes[500] or test_rothko_scaling_colors[8]"
    ),
    # Quarter-million-node coloring with the memory-ceiling assertion,
    # plus the colors[128] 5x peak-memory-reduction guard; the full
    # million-node case and the batched/parallel comparisons stay out
    # of smoke.
    "bench_rothko_largescale": (
        "test_largescale_coloring[250000] or colors128"
    ),
    # One numpy-vs-best pairing; the million-node case (two full
    # colorings per test) stays out of smoke.
    "bench_backends": "test_backend_coloring[250000]",
    "bench_core_micro": "test_q_error_evaluation or edmonds_karp",
    # Quarter-million-node mmap-vs-resident parity; the million-node
    # parity case and the 100M-arc ingest+color run stay out of smoke.
    "bench_outofcore_scale": "test_outofcore_parity[250000]",
    # bench_dynamic_updates needs no filter: its single test covers all
    # scenarios in one ~1 s pass (a stale "random" filter used to
    # deselect it entirely).
    # Time both sweep strategies once each; the strict >= 3x assertion
    # test stays out of smoke mode (CI runners are too noisy for it).
    "bench_pipeline_progressive": "test_sweep",
    # Time the arcstore engine only; the >= 5x speedup assertion test
    # (which also runs the slow python engine) stays out of smoke mode.
    "bench_solver_core": "arcstore",
    # Time the dispatched solver kernels once per backend (numba rows
    # skip cleanly where absent); the >= 3x numba speedup and the
    # parallel-Brandes assertion tests stay out of smoke.
    "bench_solver_backends": (
        "test_dinic_backend or test_brandes_backend"
    ),
}


def run_config() -> dict:
    """The kernel/parallelism configuration the child suites run under.

    Derived from the environment alone (the suites consult the same
    variables; importing repro into this driver would shadow the
    children's own resolution and slow every invocation down).
    """
    spec = os.environ.get("REPRO_BACKEND") or "auto"
    backend, _, device = spec.partition(":")
    try:
        workers = int(os.environ.get("REPRO_WORKERS") or 1)
    except ValueError:
        workers = 1
    return {
        "backend": backend,
        "device": device or None,
        "workers": workers,
    }


def consolidated_path(stamp: str, config: dict) -> pathlib.Path:
    """Where this run's consolidated baseline lands.

    ``BENCH_<date>.json`` normally; when that file already exists and
    records a *different* ``{backend, device, workers}`` configuration,
    the name gains a config suffix instead of silently overwriting the
    other configuration's numbers (same-config reruns still overwrite —
    that is a refresh, not a collision).
    """
    default = REPO_ROOT / f"BENCH_{stamp}.json"
    if default.exists():
        try:
            existing = json.loads(default.read_text()).get("config")
        except (OSError, ValueError):
            existing = None
        if existing is not None and existing != config:
            parts = [config["backend"]]
            if config["device"]:
                parts.append(config["device"])
            parts.append(f"w{config['workers']}")
            return REPO_ROOT / f"BENCH_{stamp}.{'-'.join(parts)}.json"
    return default


def discover(selects: list[str]) -> list[pathlib.Path]:
    suites = sorted(BENCH_DIR.glob("bench_*.py"))
    if not selects:
        return suites
    return [
        path
        for path in suites
        if any(want in path.stem for want in selects)
    ]


#: in-process pytest driver: the child interpreter's own peak RSS covers
#: the whole suite (getrusage on the parent would only see itself, and
#: RUSAGE_CHILDREN is a running maximum across unrelated suites); the
#: same child installs an obs recorder so the suite's counters and span
#: aggregates ride along in the payload
_PYTEST_WRAPPER = """\
import json, sys
import pytest

from repro.obs import Recorder, recording
from repro.obs.export import aggregate_spans

recorder = Recorder()
with recording(recorder):
    code = pytest.main(sys.argv[2:])

max_rss_kb = None
try:
    import resource
except ImportError:  # non-POSIX platform: degrade, don't crash
    pass
else:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KiB on Linux
        rss //= 1024
    max_rss_kb = int(rss)

payload = {
    "max_rss_kb": max_rss_kb,
    "metrics": recorder.snapshot(),
    "spans": aggregate_spans(recorder.spans),
}
with open(sys.argv[1], "w") as handle:
    json.dump(payload, handle, default=str)
sys.exit(code)
"""


def run_suite(
    path: pathlib.Path, smoke: bool, extra_args: list[str]
) -> dict | None:
    """Run one bench file under pytest-benchmark; return condensed results."""
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False, mode="w"
    ) as handle:
        raw_path = pathlib.Path(handle.name)
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False, mode="w"
    ) as handle:
        rss_path = pathlib.Path(handle.name)
    try:
        cmd = [
            sys.executable,
            "-c",
            _PYTEST_WRAPPER,
            str(rss_path),
            str(path),
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        if smoke:
            cmd += [
                "--benchmark-min-rounds=1",
                "--benchmark-warmup=off",
                "--benchmark-max-time=0",
            ]
            smoke_filter = SMOKE_FILTERS.get(path.stem)
            if smoke_filter:
                cmd += ["-k", smoke_filter]
        cmd += extra_args
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        completed = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            print(f"!! {path.stem}: pytest exited {completed.returncode}")
            return None
        raw = json.loads(raw_path.read_text())
        try:
            payload = json.loads(rss_path.read_text())
        except (OSError, ValueError):
            payload = {}
        max_rss_kb = payload.get("max_rss_kb")
        metrics = payload.get("metrics") or {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        span_summary = payload.get("spans") or {}
    finally:
        raw_path.unlink(missing_ok=True)
        rss_path.unlink(missing_ok=True)

    results = []
    for entry in raw.get("benchmarks", []):
        row = {
            "name": entry["name"],
            "median": entry["stats"]["median"],
            "mean": entry["stats"]["mean"],
            "stddev": entry["stats"]["stddev"],
            "rounds": entry["stats"]["rounds"],
        }
        if entry.get("extra_info"):
            row["extra_info"] = entry["extra_info"]
        results.append(row)
    return {
        "suite": path.stem,
        "smoke": smoke,
        "python": raw.get("machine_info", {}).get("python_version"),
        "datetime": raw.get("datetime"),
        "max_rss_mb": (
            round(max_rss_kb / 1024.0, 1) if max_rss_kb else None
        ),
        "metrics": metrics,
        "spans": span_summary,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="persist condensed results to benchmarks/results/<suite>.json",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="only run suites whose file name contains SUBSTR (repeatable)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1 round of the smallest parametrization (CI guard mode)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest",
    )
    args = parser.parse_args(argv)

    suites = discover(args.select)
    if not suites:
        print(f"no benchmark suites match {args.select}")
        return 2

    failures = 0
    consolidated: dict[str, dict] = {}
    for path in suites:
        print(f"== {path.stem} ==")
        condensed = run_suite(path, args.smoke, args.pytest_args)
        if condensed is None:
            failures += 1
            continue
        consolidated[path.stem] = {
            "max_rss_mb": condensed.get("max_rss_mb"),
            "medians": {
                row["name"]: row["median"]
                for row in condensed["results"]
            },
        }
        for row in condensed["results"]:
            print(
                f"  {row['name']}: median {row['median'] * 1000:.2f} ms "
                f"({row['rounds']} rounds)"
            )
        if condensed.get("max_rss_mb"):
            print(f"  peak RSS: {condensed['max_rss_mb']} MB")
        counters = condensed.get("metrics", {}).get("counters", {})
        if counters:
            top = sorted(counters.items(), key=lambda item: -item[1])[:4]
            print(
                "  counters: "
                + ", ".join(f"{name}={value:g}" for name, value in top)
            )
        if args.json:
            RESULTS_DIR.mkdir(exist_ok=True)
            out_path = RESULTS_DIR / f"{path.stem}.json"
            out_path.write_text(json.dumps(condensed, indent=2) + "\n")
            print(f"  -> {out_path.relative_to(REPO_ROOT)}")
    if args.json and consolidated:
        # One consolidated baseline per run at the repo root: every
        # suite's per-benchmark medians and peak RSS in a single file,
        # so a regression diff is one document, not a results/ crawl.
        import datetime

        stamp = datetime.date.today().isoformat()
        config = run_config()
        bench_path = consolidated_path(stamp, config)
        bench_path.write_text(
            json.dumps(
                {
                    "date": stamp,
                    "smoke": args.smoke,
                    "python": sys.version.split()[0],
                    "config": config,
                    "suites": consolidated,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"-> consolidated baseline: {bench_path.name}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
