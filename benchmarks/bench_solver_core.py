"""Arc-store solver core vs the legacy Python exact tier (acceptance
benchmark of the CSR-native solver refactor).

Two mid-size workloads, each solved by both engines:

* exact Dinic max-flow on the ``tsukuba0`` stereo instance — the
  arcstore engine runs the vectorized level BFS plus the compacted
  level-graph DFS;
* exact Brandes betweenness on the ``deezer`` social graph — the
  arcstore engine runs the frontier-batched multi-lane BFS with
  per-level sigma/dependency scatters.

``test_dinic_max_flow`` / ``test_brandes_betweenness`` record both
engines' medians in ``benchmarks/results/bench_solver_core.json`` (via
``run_benchmarks.py --json``); ``test_solver_core_speedup_and_equality``
asserts the contract — identical flow values and betweenness scores
(within 1e-9) and a >= 5x speedup on both workloads.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.datasets.registry import load_flow, load_graph
from repro.flow.network import max_flow

from _bench_utils import run_once, scale_factor, write_report

FLOW_SCALE = 0.2
CENTRALITY_SCALE = 0.06
SPEEDUP_TARGET = 5.0


def _flow_network():
    return load_flow("tsukuba0", scale=scale_factor(FLOW_SCALE))


def _graph():
    return load_graph("deezer", scale=scale_factor(CENTRALITY_SCALE))


def _solve_dinic(network, engine):
    return max_flow(network, algorithm="dinic", engine=engine)


def _solve_brandes(graph, engine):
    return betweenness_centrality(graph, engine=engine)


@pytest.mark.parametrize("engine", ["arcstore", "python"])
def test_dinic_max_flow(benchmark, engine):
    network = _flow_network()
    _solve_dinic(network, engine)  # warm dataset + arc-store caches
    result = run_once(benchmark, _solve_dinic, network, engine)
    assert result.value > 0


@pytest.mark.parametrize("engine", ["arcstore", "python"])
def test_brandes_betweenness(benchmark, engine):
    graph = _graph()
    result = run_once(benchmark, _solve_brandes, graph, engine)
    assert result.max() > 0


def _timed_best_of(fn, *args, repeats=3):
    """Best-of-N wall clock (guards the ratio against scheduler noise)."""
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return result, best_seconds


def test_solver_core_speedup_and_equality():
    network = _flow_network()
    graph = _graph()
    # Warm the loaders, the arc-store cache, and the allocator.
    _solve_dinic(network, "arcstore")
    _solve_brandes(graph, "arcstore")

    arc_flow, arc_flow_s = _timed_best_of(_solve_dinic, network, "arcstore")
    py_flow, py_flow_s = _timed_best_of(
        _solve_dinic, network, "python", repeats=2
    )
    arc_btw, arc_btw_s = _timed_best_of(_solve_brandes, graph, "arcstore")
    py_btw, py_btw_s = _timed_best_of(
        _solve_brandes, graph, "python", repeats=2
    )

    # Identical results across engines.
    assert np.isclose(arc_flow.value, py_flow.value, atol=1e-9)
    assert np.allclose(arc_btw, py_btw, atol=1e-9)

    flow_speedup = py_flow_s / arc_flow_s
    btw_speedup = py_btw_s / arc_btw_s
    rows = [
        {
            "workload": f"dinic tsukuba0@{scale_factor(FLOW_SCALE)}",
            "n": network.graph.n_nodes,
            "arcs": network.graph.n_arcs,
            "python_s": py_flow_s,
            "arcstore_s": arc_flow_s,
            "speedup": flow_speedup,
        },
        {
            "workload": f"brandes deezer@{scale_factor(CENTRALITY_SCALE)}",
            "n": graph.n_nodes,
            "arcs": graph.n_arcs,
            "python_s": py_btw_s,
            "arcstore_s": arc_btw_s,
            "speedup": btw_speedup,
        },
    ]
    write_report(
        "solver_core",
        rows,
        f"Arc-store engine vs legacy Python exact tier "
        f"(dinic {flow_speedup:.1f}x, brandes {btw_speedup:.1f}x)",
    )
    assert flow_speedup >= SPEEDUP_TARGET, (
        f"arcstore Dinic only {flow_speedup:.2f}x faster than python"
    )
    assert btw_speedup >= SPEEDUP_TARGET, (
        f"arcstore Brandes only {btw_speedup:.2f}x faster than python"
    )
