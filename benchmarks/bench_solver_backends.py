"""Solver-tier backend dispatch: numba kernels and parallel Brandes
(acceptance benchmark of the solver kernel family).

Two mid-size workloads, each solved through the dispatched arcstore
engine under every available backend:

* exact Dinic max-flow on the ``tsukuba0`` stereo instance — deep BFS
  levels, so the per-frontier work the numba kernels fuse dominates;
* exact Brandes betweenness on the ``deezer`` social graph — the
  per-source sequential numba pass vs the numpy flat-lane batches.

``test_dinic_backend`` / ``test_brandes_backend`` record per-backend
medians in ``benchmarks/results/bench_solver_backends.json`` (via
``run_benchmarks.py --json``); the assertion tests pin the contract —
results identical to the numpy/serial reference within 1e-9, a >= 3x
numba speedup on both workloads (skipped cleanly on numpy-only boxes),
and a >= 2x parallel source-batched Brandes speedup (asserted at >= 4
cores, reported otherwise).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.core.backends import solver_numba
from repro.datasets.registry import load_flow, load_graph
from repro.flow.network import max_flow

from _bench_utils import run_once, scale_factor, write_report

FLOW_SCALE = 0.2
CENTRALITY_SCALE = 0.06
#: the parallel test needs multiple source batches (batch size is
#: ``4M / n`` lanes), so it runs deezer at a larger cut than the
#: backend comparison does
PARALLEL_SCALE = 0.15
NUMBA_SPEEDUP_TARGET = 3.0
PARALLEL_SPEEDUP_TARGET = 2.0
PARALLEL_ASSERT_CORES = 4

BACKENDS = ["numpy", "numba"]


def _require(backend: str) -> None:
    if backend == "numba" and not solver_numba.available():
        pytest.skip("numba not installed")


def _flow_network():
    return load_flow("tsukuba0", scale=scale_factor(FLOW_SCALE))


def _graph():
    return load_graph("deezer", scale=scale_factor(CENTRALITY_SCALE))


def _solve_dinic(network, backend):
    return max_flow(network, algorithm="dinic", backend=backend)


def _solve_brandes(graph, backend, workers=None):
    return betweenness_centrality(graph, backend=backend, workers=workers)


@pytest.mark.parametrize("backend", BACKENDS)
def test_dinic_backend(benchmark, backend):
    _require(backend)
    network = _flow_network()
    _solve_dinic(network, backend)  # warm caches + jit compilation
    result = run_once(benchmark, _solve_dinic, network, backend)
    assert result.value > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_brandes_backend(benchmark, backend):
    _require(backend)
    graph = _graph()
    _solve_brandes(graph, backend)  # warm caches + jit compilation
    result = run_once(benchmark, _solve_brandes, graph, backend)
    assert result.max() > 0


def _timed_best_of(fn, *args, repeats=3, **kwargs):
    """Best-of-N wall clock (guards the ratio against scheduler noise)."""
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return result, best_seconds


def test_solver_backend_speedup_and_equality():
    """numba kernels: >= 3x over numpy on Dinic and Brandes, results
    within 1e-9 of the numpy reference."""
    _require("numba")
    network = _flow_network()
    graph = _graph()
    # Warm the loaders, the arc-store cache, and the jit compilations.
    _solve_dinic(network, "numba")
    _solve_brandes(graph, "numba")

    np_flow, np_flow_s = _timed_best_of(_solve_dinic, network, "numpy")
    nb_flow, nb_flow_s = _timed_best_of(_solve_dinic, network, "numba")
    np_btw, np_btw_s = _timed_best_of(_solve_brandes, graph, "numpy")
    nb_btw, nb_btw_s = _timed_best_of(_solve_brandes, graph, "numba")

    assert np.isclose(nb_flow.value, np_flow.value, atol=1e-9)
    assert np.allclose(nb_btw, np_btw, atol=1e-9)

    flow_speedup = np_flow_s / nb_flow_s
    btw_speedup = np_btw_s / nb_btw_s
    rows = [
        {
            "workload": f"dinic tsukuba0@{scale_factor(FLOW_SCALE)}",
            "n": network.graph.n_nodes,
            "arcs": network.graph.n_arcs,
            "numpy_s": np_flow_s,
            "numba_s": nb_flow_s,
            "speedup": flow_speedup,
        },
        {
            "workload": f"brandes deezer@{scale_factor(CENTRALITY_SCALE)}",
            "n": graph.n_nodes,
            "arcs": graph.n_arcs,
            "numpy_s": np_btw_s,
            "numba_s": nb_btw_s,
            "speedup": btw_speedup,
        },
    ]
    write_report(
        "solver_backends",
        rows,
        f"Solver kernels, numba vs numpy "
        f"(dinic {flow_speedup:.1f}x, brandes {btw_speedup:.1f}x)",
    )
    assert flow_speedup >= NUMBA_SPEEDUP_TARGET, (
        f"numba Dinic only {flow_speedup:.2f}x faster than numpy"
    )
    assert btw_speedup >= NUMBA_SPEEDUP_TARGET, (
        f"numba Brandes only {btw_speedup:.2f}x faster than numpy"
    )


def test_brandes_parallel_speedup():
    """Source-batched parallel Brandes: identical to serial within
    1e-9 always; >= 2x over serial asserted at >= 4 cores."""
    graph = load_graph("deezer", scale=scale_factor(PARALLEL_SCALE))
    cores = os.cpu_count() or 1
    workers = min(cores, 8)
    serial = _solve_brandes(graph, None, workers=1)  # warm caches

    serial, serial_s = _timed_best_of(
        _solve_brandes, graph, None, workers=1
    )
    parallel, parallel_s = _timed_best_of(
        _solve_brandes, graph, None, workers=workers
    )

    # Batch boundaries and the submission-order reduce are worker-count
    # independent, so parallel results are bit-identical to serial on a
    # given backend; 1e-9 is the contract the sweep asserts.
    assert np.allclose(parallel, serial, atol=1e-9)

    speedup = serial_s / parallel_s
    write_report(
        "solver_brandes_parallel",
        [
            {
                "workload": (
                    f"brandes deezer@{scale_factor(PARALLEL_SCALE)}"
                ),
                "cores": cores,
                "workers": workers,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": speedup,
            }
        ],
        f"Source-batched parallel Brandes ({speedup:.2f}x at "
        f"{workers} workers on {cores} cores)",
    )
    if cores >= PARALLEL_ASSERT_CORES:
        assert speedup >= PARALLEL_SPEEDUP_TARGET, (
            f"parallel Brandes only {speedup:.2f}x over serial "
            f"({workers} workers, {cores} cores)"
        )
