"""Benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures at a
laptop-friendly scale, prints the rows, and persists them under
``benchmarks/results/`` so they survive pytest's output capture.  Scales
can be raised with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import pytest

from _bench_utils import write_report


@pytest.fixture
def report():
    """Render rows, print them, and persist them to results/<name>.txt."""
    return write_report
