"""Ablation A-4: Rothko core scaling (runtime vs graph size and budget).

Verifies the engine's practical scalability claims: near-linear growth in
edges for a fixed color budget, and graceful growth in the budget.
These are the micro-benchmarks pytest-benchmark is actually good at, so
they use its statistical timing (several rounds) rather than run-once.
"""

import pytest

from repro.core.refinement import stable_coloring
from repro.core.rothko import q_color
from repro.graphs.generators import barabasi_albert


@pytest.mark.parametrize("n", [500, 2000, 8000])
def test_rothko_scaling_nodes(benchmark, n):
    graph = barabasi_albert(n, 4, seed=1)
    adjacency = graph.to_csr()
    result = benchmark(q_color, adjacency, 32)
    assert result.n_colors <= 32


@pytest.mark.parametrize("budget", [8, 32, 128])
def test_rothko_scaling_colors(benchmark, budget):
    graph = barabasi_albert(4000, 4, seed=2)
    adjacency = graph.to_csr()
    result = benchmark(q_color, adjacency, budget)
    assert result.n_colors <= budget


def test_stable_coloring_baseline(benchmark):
    graph = barabasi_albert(2000, 4, seed=3)
    adjacency = graph.to_csr()
    coloring = benchmark(stable_coloring, adjacency)
    # Random-ish graphs refine to (almost) discrete (Sec. 2 discussion).
    assert coloring.n_colors > 0.5 * graph.n_nodes
