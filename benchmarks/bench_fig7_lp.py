"""Fig. 7(b): LP speed-accuracy trade-off.

Paper: geometric-mean ratio error ~1.13 in under 0.5% of the direct
runtime; unlike the other tasks, LP error is *not* monotone in colors.
"""

from repro.experiments.fig7_tradeoff import lp_tradeoff
from repro.utils.stats import geometric_mean

from _bench_utils import run_once, scale_factor


def test_fig7b_lp_tradeoff(benchmark, report):
    rows = run_once(
        benchmark,
        lp_tradeoff,
        datasets=("qap15", "supportcase10", "ex10"),
        scale=scale_factor(0.04),
        color_budgets=(10, 25, 50, 100),
    )
    report(
        "fig7b_lp",
        rows,
        "Fig. 7(b): LP objective accuracy vs end-to-end time",
        columns=[
            "dataset", "colors", "exact_value", "approx_value",
            "accuracy", "time_s", "exact_time_s",
        ],
    )
    final_errors = [row["accuracy"] for row in rows if row["colors"] >= 50]
    assert geometric_mean(final_errors) < 2.0
