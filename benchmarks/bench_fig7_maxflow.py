"""Fig. 7(a): max-flow speed-accuracy trade-off.

Paper: geometric-mean ratio error ~1.17 using <1% of the exact
push-relabel runtime, with <= 35 colors, across the vision instances.
At our Python scale the qualitative claims checked are: the approximation
upper-bounds the exact flow, and error shrinks as colors grow.
"""

from repro.experiments.fig7_tradeoff import maxflow_tradeoff
from repro.utils.stats import geometric_mean

from _bench_utils import run_once, scale_factor


def test_fig7a_maxflow_tradeoff(benchmark, report):
    rows = run_once(
        benchmark,
        maxflow_tradeoff,
        datasets=("tsukuba0", "venus0", "sawtooth0"),
        scale=scale_factor(0.004),
        color_budgets=(5, 10, 20, 35),
    )
    report(
        "fig7a_maxflow",
        rows,
        "Fig. 7(a): max-flow accuracy vs end-to-end time",
        columns=[
            "dataset", "colors", "exact_value", "approx_value",
            "accuracy", "time_s", "exact_time_s",
        ],
    )
    # Theorem 6: the c_hat_2 approximation never under-estimates.
    assert all(row["approx_value"] >= row["exact_value"] - 1e-9 for row in rows)
    # Paper shape: at the largest budget the error is small.
    final_errors = [
        row["accuracy"] for row in rows if row["colors"] >= 20
    ]
    assert geometric_mean(final_errors) < 2.0
