"""Table 6: latency and responsiveness of the anytime Rothko loop.

Paper: first result within ~480 ms on average, a new color every ~2 s,
convergence within seconds to a minute depending on task.
"""

from repro.experiments.table6_responsiveness import responsiveness_rows

from _bench_utils import run_once, scale_factor


def test_table6_responsiveness(benchmark, report):
    rows = run_once(
        benchmark,
        responsiveness_rows,
        flow_scale=scale_factor(0.002),
        lp_scale=scale_factor(0.03),
        centrality_scale=scale_factor(0.005),
        max_colors=20,
    )
    report(
        "table6_responsiveness",
        rows,
        "Table 6: anytime-loop latency per task type",
    )
    assert [row["task"] for row in rows] == ["maxflow", "lp", "centrality"]
    for row in rows:
        assert row["time_to_first_s"] > 0
        assert row["updates"] >= 5
        assert row["time_to_converge_s"] >= row["time_to_first_s"] - 1e-9
