"""Shared helpers for the benchmark suite (imported by bench files)."""

from __future__ import annotations

import os
import pathlib

from repro.utils.tables import render_rows

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def scale_factor(default: float) -> float:
    """Benchmark scale, overridable via REPRO_BENCH_SCALE."""
    override = os.environ.get("REPRO_BENCH_SCALE")
    return float(override) if override else default


def write_report(name: str, rows, title: str, columns=None) -> str:
    """Render rows, print them, persist them to results/<name>.txt."""
    text = render_rows(rows, columns=columns, title=title)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
