"""Tables 2 and 3: the dataset inventory (paper sizes and provenance)."""

from repro.datasets.registry import table2_rows, table3_rows

from _bench_utils import run_once


def test_table2_graphs(benchmark, report):
    rows = run_once(benchmark, table2_rows)
    assert len(rows) == 16
    report("table2_graphs", rows, "Table 2: graphs used for evaluation")


def test_table3_lps(benchmark, report):
    rows = run_once(benchmark, table3_rows)
    assert len(rows) == 4
    report("table3_lps", rows, "Table 3: linear programs used for evaluation")
