"""Ablation A-1: arithmetic vs geometric mean splits (Sec. 5.2).

The paper argues geometric-mean splits produce less unbalanced partitions
on scale-free graphs (a BA graph with m = 3 splits ~1:216 under the
arithmetic mean but ~1:4 in log space).  We measure the size of the
largest color and the q-error at a fixed budget under both rules.
"""

import numpy as np

from repro.core.rothko import q_color
from repro.graphs.generators import barabasi_albert

from _bench_utils import run_once, write_report


def _split_quality(split_mean: str, n: int = 3000, budget: int = 30):
    graph = barabasi_albert(n, 3, seed=11)
    result = q_color(graph, n_colors=budget, split_mean=split_mean)
    sizes = result.coloring.sizes
    return {
        "split_mean": split_mean,
        "colors": result.n_colors,
        "max_q": result.max_q_err,
        "largest_color": int(sizes.max()),
        "median_color": float(np.median(sizes)),
        "first_split_ratio": None,  # filled below for the first split only
    }


def test_ablation_split_mean(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: [_split_quality("arithmetic"), _split_quality("geometric")],
    )
    # First-split balance on a fresh BA graph (the paper's 1:216 vs 1:4).
    from repro.core.rothko import Rothko

    for row in rows:
        engine = Rothko(
            barabasi_albert(3000, 3, seed=11), split_mean=row["split_mean"]
        )
        first = next(iter(engine.steps(max_colors=2)))
        sizes = first.coloring.sizes
        row["first_split_ratio"] = float(sizes.max() / sizes.min())
    report(
        "ablation_split_mean",
        rows,
        "Ablation A-1: split-threshold rule on a BA(3000, 3) graph",
    )
    arithmetic, geometric = rows
    # The paper's claim: geometric yields a much more balanced first split.
    assert geometric["first_split_ratio"] < arithmetic["first_split_ratio"]
