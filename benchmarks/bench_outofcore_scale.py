"""Out-of-core coloring: memmapped edge stores at the 100M-arc scale.

The edge-store path never materializes the graph: ingestion streams
chunked arc batches through an external-sort dedup onto disk, and the
coloring engine reads the CSR/CSC snapshots straight off the store's
memmapped ``.npy`` arrays.  tracemalloc counts the Python heap but not
file-backed pages (the repo's traced-peak convention), so the traced
peak of an out-of-core run is exactly the engine's *transient* state —
the quantity the tentpole bounds.

Two tiers:

* **parity** — quarter-million and million-node stores are colored
  twice, memmapped and fully resident, and must land bit-identical
  labels (the mmap path is an I/O strategy, not an approximation);
* **scale** — a 100M-arc synthetic digraph is ingested end to end and
  colored with a traced peak under 25% of the resident-array
  equivalent (``store.array_nbytes()``), the acceptance ceiling for
  the out-of-core pipeline.
"""

import time
import tracemalloc

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core.rothko import Rothko
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.edgestore import EdgeStore, ingest_uniform_random

#: parity tier: n -> (out_degree, color budget)
PARITY_CASES = {
    250_000: (4, 64),
    1_000_000: (4, 64),
}

#: scale tier: 1M nodes x 100 out-degree = 100M arc draws
SCALE_NODES = 1_000_000
SCALE_DEGREE = 100
SCALE_BUDGET = 32
#: traced peak must stay under this fraction of the resident arrays
SCALE_CEILING = 0.25


def _traced(fn):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes, seconds)."""
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, time.perf_counter() - start


@pytest.mark.parametrize("n", sorted(PARITY_CASES))
def test_outofcore_parity(benchmark, tmp_path, n):
    """Memmapped coloring is bit-identical to the resident coloring."""
    degree, budget = PARITY_CASES[n]
    store = ingest_uniform_random(
        tmp_path / "store", n, degree, seed=7
    )
    indptr, indices, data = store.csr_arrays(mmap=False)
    resident = WeightedDiGraph.from_arrays(
        np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr)),
        indices.astype(np.int64),
        data,
        n_nodes=n,
    )
    # The streaming CSR build must agree with the dict-free from_arrays
    # build arc for arc before any coloring runs.
    resident_csr = resident.to_csr()
    assert np.array_equal(resident_csr.indptr, indptr)
    assert np.array_equal(resident_csr.indices, indices)
    assert np.array_equal(resident_csr.data, data)

    mmap_graph = WeightedDiGraph.from_edgestore(store, mmap=True)
    mmap_result = run_once(
        benchmark, lambda: Rothko(mmap_graph).run(max_colors=budget)
    )
    resident_result = Rothko(resident).run(max_colors=budget)
    assert np.array_equal(
        mmap_result.coloring.labels, resident_result.coloring.labels
    )
    assert mmap_result.max_q_err == resident_result.max_q_err
    benchmark.extra_info["n"] = n
    benchmark.extra_info["arcs"] = store.n_arcs
    benchmark.extra_info["store_mb"] = round(store.array_nbytes() / 1e6, 1)


def test_outofcore_100m(benchmark, tmp_path):
    """100M-arc pipeline: ingest + color, traced peak < 25% resident.

    ``store.array_nbytes()`` is what a resident run would hold just for
    the graph arrays; the out-of-core run's traced peak (engine
    transients only — memmap pages are the kernel's, not the heap's)
    must stay under a quarter of it.
    """
    ingest_start = time.perf_counter()
    store = ingest_uniform_random(
        tmp_path / "store", SCALE_NODES, SCALE_DEGREE, seed=11
    )
    ingest_seconds = time.perf_counter() - ingest_start
    # Uniform sampling with replacement merges a few duplicate draws;
    # the store must still hold (essentially all of) the 100M arcs.
    assert store.n_arcs >= 0.99 * SCALE_NODES * SCALE_DEGREE

    graph = WeightedDiGraph.from_edgestore(store, mmap=True)
    resident_equivalent = store.array_nbytes()

    def color():
        return _traced(
            lambda: Rothko(graph).run(max_colors=SCALE_BUDGET)
        )

    result, peak, color_seconds = run_once(benchmark, color)
    assert result.n_colors == SCALE_BUDGET

    ceiling = SCALE_CEILING * resident_equivalent
    benchmark.extra_info["n"] = SCALE_NODES
    benchmark.extra_info["arcs"] = store.n_arcs
    benchmark.extra_info["ingest_seconds"] = round(ingest_seconds, 1)
    benchmark.extra_info["color_seconds"] = round(color_seconds, 1)
    benchmark.extra_info["traced_peak_mb"] = round(peak / 1e6, 1)
    benchmark.extra_info["resident_equivalent_mb"] = round(
        resident_equivalent / 1e6, 1
    )
    benchmark.extra_info["peak_fraction"] = round(
        peak / resident_equivalent, 4
    )
    assert peak <= ceiling, (
        f"traced peak {peak / 1e6:.1f} MB exceeds "
        f"{SCALE_CEILING:.0%} of the {resident_equivalent / 1e6:.1f} MB "
        f"resident-array equivalent"
    )
