"""Large-scale Rothko: million-node colorings under a flat memory budget.

The memory-flat engine keeps only the CSR/CSC snapshots, member lists,
and ``k x k`` state — the dense formulation's two ``k x n`` float64
degree matrices (2 GB at n=1M, k=128; 16 GB at k=1024) are never
allocated, which is what makes these runs possible at all.  Each case
records its tracemalloc peak (and the dense-equivalent state bytes it
avoided) in ``extra_info``, so ``run_benchmarks.py --json`` persists
peak memory alongside time in ``benchmarks/results/*.json``.

Three guards:

* the n >= 1M coloring completes with peak memory under a hard ceiling
  an order of magnitude below the dense-equivalent state;
* the colors[128]-class case (the ``bench_rothko_scaling`` workload)
  stays >= 5x below a measured dense-state reconstruction;
* ``strategy="batched"`` lands within the fidelity contract while
  beating greedy wall-clock at a large color budget.
"""

import tracemalloc

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core.kernels import color_degree_matrix_t
from repro.core.rothko import Rothko
from repro.graphs.generators import barabasi_albert, uniform_random_digraph

#: n -> (out_degree, color budget, peak ceiling in MB)
CASES = {
    250_000: (4, 64, 150.0),
    1_000_000: (4, 64, 550.0),
}


def _traced_coloring(adjacency, max_colors, **kwargs):
    """Run one coloring under tracemalloc; return (result, peak_bytes)."""
    tracemalloc.start()
    try:
        result = Rothko(adjacency, **kwargs).run(max_colors=max_colors)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _dense_state_peak(adjacency, labels, k):
    """Measured footprint of the dense formulation's maintained state.

    Reconstructs exactly what the pre-flat engine pinned for the whole
    run: its CSR snapshot and CSC view of the adjacency (the flat
    engine's measured peak includes the same pair), the two color-major
    ``capacity x n`` degree matrices, and the eight
    ``capacity x capacity`` boundary/error/witness matrices, at the
    capacity the doubling rule reaches for ``k`` colors.
    """
    n = labels.size
    capacity = 16
    while capacity < k:
        capacity *= 2
    tracemalloc.start()
    try:
        snapshot = adjacency.copy()
        csc = snapshot.tocsc()
        d_out = np.zeros((capacity, n), dtype=np.float64)
        d_in = np.zeros((capacity, n), dtype=np.float64)
        d_out[:k] = color_degree_matrix_t(
            snapshot.indptr, snapshot.indices, snapshot.data, labels, k
        )
        d_in[:k] = color_degree_matrix_t(
            csc.indptr, csc.indices, csc.data, labels, k
        )
        square = [
            np.zeros((capacity, capacity), dtype=np.float64)
            for _ in range(8)
        ]
        _, peak = tracemalloc.get_traced_memory()
        del snapshot, csc, d_out, d_in, square
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.parametrize("n", sorted(CASES))
def test_largescale_coloring(benchmark, n):
    degree, budget, ceiling_mb = CASES[n]
    n_nodes = n
    graph = uniform_random_digraph(n_nodes, degree, seed=7)
    adjacency = graph.to_csr()

    result = run_once(
        benchmark, lambda: Rothko(adjacency).run(max_colors=budget)
    )
    assert result.n_colors == budget

    traced, peak = _traced_coloring(adjacency, budget)
    assert traced.coloring == result.coloring
    dense_equivalent = 2 * budget * n_nodes * 8
    benchmark.extra_info["n"] = n_nodes
    benchmark.extra_info["arcs"] = int(adjacency.nnz)
    benchmark.extra_info["traced_peak_mb"] = round(peak / 1e6, 2)
    benchmark.extra_info["dense_equivalent_mb"] = round(
        dense_equivalent / 1e6, 2
    )
    benchmark.extra_info["reduction"] = round(dense_equivalent / peak, 2)
    # Memory ceiling: the flat engine must stay well under the dense
    # state it replaced (and under an absolute budget CI can afford).
    assert peak <= ceiling_mb * 1e6, (
        f"peak {peak / 1e6:.1f} MB exceeds the {ceiling_mb} MB ceiling"
    )
    assert 2 * peak <= dense_equivalent


def test_colors128_memory_reduction(benchmark):
    """The bench_rothko_scaling colors[128] case: >= 5x lower peak than
    the measured dense-state reconstruction."""
    graph = barabasi_albert(4000, 4, seed=2)
    adjacency = graph.to_csr()

    result = run_once(
        benchmark, lambda: Rothko(adjacency).run(max_colors=128)
    )
    flat, flat_peak = _traced_coloring(adjacency, 128)
    dense_peak = _dense_state_peak(
        adjacency, flat.coloring.labels, result.n_colors
    )
    benchmark.extra_info["traced_peak_mb"] = round(flat_peak / 1e6, 3)
    benchmark.extra_info["dense_state_peak_mb"] = round(dense_peak / 1e6, 3)
    benchmark.extra_info["reduction"] = round(dense_peak / flat_peak, 2)
    assert 5 * flat_peak <= dense_peak, (
        f"flat peak {flat_peak / 1e6:.2f} MB is not 5x below the dense "
        f"state's {dense_peak / 1e6:.2f} MB"
    )


def test_batched_strategy_largescale(benchmark):
    """Batched split rounds amortize per-split overhead at large color
    budgets: faster than greedy wall-clock, q-error within the fidelity
    factor, on a quarter-million-node graph."""
    import time

    graph = uniform_random_digraph(250_000, 4, seed=7)
    adjacency = graph.to_csr()
    budget = 256

    start = time.perf_counter()
    greedy = Rothko(adjacency).run(max_colors=budget)
    greedy_seconds = time.perf_counter() - start

    batched_engine = Rothko(adjacency, strategy="batched", batch_size=16)
    batched = run_once(
        benchmark, lambda: batched_engine.run(max_colors=budget)
    )
    assert batched.n_colors == greedy.n_colors == budget
    assert batched.max_q_err <= 2.0 * greedy.max_q_err + 1e-9
    benchmark.extra_info["greedy_seconds"] = round(greedy_seconds, 3)
    benchmark.extra_info["greedy_q_err"] = greedy.max_q_err
    benchmark.extra_info["batched_q_err"] = batched.max_q_err
    # Real margin is ~2.7x; 0.75 keeps headroom for one-shot timing
    # noise while still catching an amortization regression.
    assert benchmark.stats.stats.median <= 0.75 * greedy_seconds


def test_parallel_batched_rounds(benchmark):
    """Fanned batched rounds (``workers=cores``) vs sequential: the
    eject-mask and boundary-refresh stages of each round run across a
    worker pool, and must land on bit-identical labels.  On machines
    with >= 4 cores the fan-out is asserted >= 1.5x faster; below that
    the speedup is only reported (a 1-core box legitimately sees ~1x)."""
    import os
    import time

    graph = uniform_random_digraph(250_000, 4, seed=7)
    adjacency = graph.to_csr()
    budget = 256
    cores = os.cpu_count() or 1

    start = time.perf_counter()
    sequential = Rothko(adjacency, strategy="batched", batch_size=16).run(
        max_colors=budget
    )
    sequential_seconds = time.perf_counter() - start

    engine = Rothko(
        adjacency, strategy="batched", batch_size=16, workers=cores
    )
    parallel = run_once(benchmark, lambda: engine.run(max_colors=budget))

    # Parallel rounds are deterministic: masks are collected in
    # submission order, so the split sequence cannot drift.
    assert np.array_equal(
        parallel.coloring.labels, sequential.coloring.labels
    )
    speedup = sequential_seconds / benchmark.stats.stats.median
    benchmark.extra_info["backend"] = engine.backend.name
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["workers"] = engine.workers
    benchmark.extra_info["sequential_seconds"] = round(
        sequential_seconds, 3
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if cores >= 4:
        assert speedup >= 1.5, (
            f"parallel batched rounds only {speedup:.2f}x faster than "
            f"sequential on {cores} cores (expected >= 1.5x)"
        )
