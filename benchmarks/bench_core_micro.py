"""Micro-benchmarks of the substrate primitives.

Not a paper artifact — these keep the building blocks honest: max-flow
solver comparison, q-error evaluation, betweenness, and the LP solvers.
"""

import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.core.partition import Coloring
from repro.core.qerror import max_q_err
from repro.core.rothko import q_color
from repro.datasets.registry import load_flow
from repro.flow.network import max_flow
from repro.graphs.generators import barabasi_albert
from repro.lp.generators import planted_block_lp
from repro.lp.interior_point import interior_point_solve
from repro.lp.simplex import simplex_solve
from repro.lp.solve import solve_lp


@pytest.fixture(scope="module")
def flow_instance():
    return load_flow("tsukuba0", scale=0.002)


@pytest.mark.parametrize(
    "algorithm", ["edmonds_karp", "dinic", "push_relabel"]
)
def test_maxflow_solvers(benchmark, flow_instance, algorithm):
    result = benchmark(max_flow, flow_instance, algorithm)
    assert result.value > 0


def test_q_error_evaluation(benchmark):
    graph = barabasi_albert(3000, 4, seed=5)
    adjacency = graph.to_csr()
    coloring = Coloring(
        q_color(adjacency, n_colors=50).coloring.labels
    )
    value = benchmark(max_q_err, adjacency, coloring)
    assert value >= 0


def test_betweenness_exact(benchmark):
    graph = barabasi_albert(400, 3, seed=6)
    scores = benchmark(betweenness_centrality, graph)
    assert scores.max() > 0


@pytest.mark.parametrize("solver", ["scipy", "interior_point", "simplex"])
def test_lp_solvers(benchmark, solver):
    lp = planted_block_lp(40, 30, 4, 3, seed=7)
    solution = benchmark(solve_lp, lp, solver)
    assert solution.objective > 0
