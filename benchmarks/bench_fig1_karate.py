"""Fig. 1: stable vs quasi-stable coloring of Zachary's karate club.

Paper: the stable coloring needs 27 colors; a q = 3 quasi-stable coloring
needs only 6.  Both numbers are reproduced exactly.
"""

from repro.core.refinement import stable_coloring
from repro.core.rothko import q_color
from repro.graphs.generators import karate_club

from _bench_utils import run_once


def test_fig1_stable_karate(benchmark, report):
    graph = karate_club()
    coloring = run_once(benchmark, stable_coloring, graph.to_csr())
    assert coloring.n_colors == 27
    report(
        "fig1_karate_stable",
        [
            {
                "graph": "karate",
                "method": "stable (1-WL)",
                "colors": coloring.n_colors,
                "paper_colors": 27,
            }
        ],
        "Fig. 1(a): stable coloring of the karate club",
    )


def test_fig1_quasi_stable_karate(benchmark, report):
    graph = karate_club()
    result = run_once(benchmark, q_color, graph, 6)
    assert result.n_colors == 6
    assert result.max_q_err <= 3.0
    report(
        "fig1_karate_qstable",
        [
            {
                "graph": "karate",
                "method": "q-stable (Rothko)",
                "colors": result.n_colors,
                "max_q": result.max_q_err,
                "paper_colors": 6,
                "paper_q": 3,
            }
        ],
        "Fig. 1(b): quasi-stable coloring of the karate club",
    )
