"""Progressive multi-k sweep vs the per-k re-color loop (acceptance
benchmark of the unified pipeline).

Both strategies evaluate the max-flow approximation at a Fig. 8-style
color schedule (16 checkpoints).  The per-k loop — what the tradeoff
experiments used to run — re-colors from scratch and rebuilds the block
weights at every budget; the progressive sweep performs one Rothko run,
pausing at every checkpoint with ``W = S^T A S`` patched per split.
Rothko's determinism makes the outputs identical, so the entire
difference is wall-clock: the sweep drops the re-coloring and
triple-product work (>= 3x here; the gap widens with instance size and
schedule density).

``test_sweep`` records both strategies' medians in
``benchmarks/results/bench_pipeline_progressive.json`` (via
``run_benchmarks.py --json``); ``test_progressive_speedup_and_equality``
asserts the contract — identical values/q-errors, one engine, >= 3x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datasets.registry import load_flow
from repro.flow.approx import approx_max_flow
from repro.pipeline import ColoringCache, MaxFlowTask, progressive_sweep

from _bench_utils import run_once, scale_factor, write_report

#: Fig. 8's fine budget grid plus intermediate points — 16 checkpoints,
#: >= 8 per the acceptance bar
SCHEDULE = (4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 100, 120, 150)


def _network():
    return load_flow("tsukuba0", scale=scale_factor(0.2))


def percolor_sweep(network, schedule=SCHEDULE):
    """The naive loop: one full color-reduce-solve pipeline per budget."""
    return [
        approx_max_flow(network, n_colors=budget) for budget in schedule
    ]


def progressive(network, schedule=SCHEDULE):
    """One coloring run serving every checkpoint."""
    return progressive_sweep(
        MaxFlowTask(network), schedule, cache=ColoringCache()
    )


@pytest.mark.parametrize(
    "strategy", [progressive, percolor_sweep], ids=["progressive", "percolor"]
)
def test_sweep(benchmark, strategy):
    network = _network()
    results = run_once(benchmark, strategy, network)
    assert len(results) == len(SCHEDULE)


def _timed_best_of(fn, network, repeats=2):
    """Best-of-N wall clock (guards the ratio against scheduler noise)."""
    best_seconds, results = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        results = fn(network)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return results, best_seconds


def test_progressive_speedup_and_equality():
    network = _network()
    # Warm the allocator and caches on a tiny run before timing.
    percolor_sweep(network, schedule=(4,))
    progressive(network, schedule=(4,))

    naive, naive_seconds = _timed_best_of(percolor_sweep, network)
    swept, progressive_seconds = _timed_best_of(progressive, network)

    rows = []
    for budget, base, prog in zip(SCHEDULE, naive, swept):
        # Identical q-errors and objectives at every checkpoint.
        assert prog.coloring == base.coloring, budget
        assert np.isclose(prog.value, base.value, rtol=1e-9), budget
        rows.append(
            {
                "budget": budget,
                "colors": prog.n_colors,
                "max_q": prog.max_q_err,
                "value": prog.value,
                "percolor_s": base.total_seconds,
                "progressive_s": prog.total_seconds,
            }
        )
    speedup = naive_seconds / progressive_seconds
    rows.append(
        {
            "budget": "total",
            "colors": "",
            "max_q": "",
            "value": "",
            "percolor_s": naive_seconds,
            "progressive_s": progressive_seconds,
        }
    )
    write_report(
        "pipeline_progressive",
        rows,
        f"Progressive sweep vs per-k re-coloring "
        f"({len(SCHEDULE)} checkpoints): {speedup:.1f}x",
    )
    assert speedup >= 3.0, (
        f"progressive sweep only {speedup:.2f}x faster than the per-k loop"
    )
