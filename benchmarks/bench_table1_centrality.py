"""Table 1 (top): time to reach a target centrality correlation.

Paper: quasi-stable color pivots reach rho targets ~30x faster than the
Riondato-Kornaropoulos sampler and orders of magnitude faster than exact
Brandes.  The qualitative claim checked here: ours meets each target and
is faster than exact.
"""

import math

from repro.experiments.table1_runtime import centrality_runtime_rows

from _bench_utils import run_once, scale_factor


def test_table1_centrality(benchmark, report):
    rows = run_once(
        benchmark,
        centrality_runtime_rows,
        datasets=("astroph", "facebook", "deezer"),
        scale=scale_factor(0.015),
        color_ladder=(10, 20, 40, 80, 160),
        sample_ladder=(100, 400, 1600, 6400),
        targets=(0.90, 0.95),
    )
    report(
        "table1_centrality",
        rows,
        "Table 1 (top): seconds to reach target Spearman rho "
        "(inf = not reached, the paper's 'x')",
    )
    for row in rows:
        # Ours should hit the lenient target within the ladder and beat
        # the prior-work sampler (the paper reports ~30x; at toy scale the
        # exact baseline itself is sub-second so it is not the yardstick).
        assert row["ours_rho0.9"] < math.inf
        assert row["ours_rho0.9"] < row["prior_rho0.9"]
