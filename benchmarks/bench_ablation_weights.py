"""Ablation A-2: witness weighting exponents alpha/beta (Sec. 5.2).

The paper prescribes (0,0) for flow, (1,0) for LPs, (1,1) for centrality.
We sweep the weightings on the centrality task and report the resulting
rank correlation — the prescribed (1,1) should be competitive with the
best setting.
"""

from repro.centrality.brandes import betweenness_centrality
from repro.centrality.approx import pivot_betweenness
from repro.core.rothko import Rothko
from repro.datasets.registry import load_graph
from repro.utils.stats import spearman_rho

from _bench_utils import run_once, scale_factor

WEIGHTINGS = ((0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0))


def _weighting_rows(scale: float, budget: int = 40):
    graph = load_graph("facebook", scale=scale)
    exact = betweenness_centrality(graph)
    rows = []
    for alpha, beta in WEIGHTINGS:
        engine = Rothko(
            graph, alpha=alpha, beta=beta, split_mean="geometric"
        )
        result = engine.run(max_colors=budget)
        scores, _ = pivot_betweenness(graph, result.coloring, seed=0)
        rows.append(
            {
                "alpha": alpha,
                "beta": beta,
                "colors": result.n_colors,
                "rho": spearman_rho(exact, scores),
            }
        )
    return rows


def test_ablation_witness_weights(benchmark, report):
    rows = run_once(benchmark, _weighting_rows, scale_factor(0.01))
    report(
        "ablation_witness_weights",
        rows,
        "Ablation A-2: alpha/beta witness weighting on centrality "
        "(paper prescribes alpha=beta=1)",
    )
    by_weighting = {(row["alpha"], row["beta"]): row["rho"] for row in rows}
    best = max(by_weighting.values())
    # The prescribed weighting should be within reach of the best.
    assert by_weighting[(1.0, 1.0)] >= best - 0.15
