#!/usr/bin/env python
"""Perf-regression guard over consolidated ``BENCH_<date>.json`` files.

Compares a freshly produced consolidated results file (from
``run_benchmarks.py --json``) against the committed baseline, suite by
suite and benchmark by benchmark, and fails when any shared
benchmark's median regressed beyond the threshold (default 1.5x).

Smoke runs time one round of the smallest parametrization — far too
noisy to gate on — so the median comparison is only *enforced* when
neither side is a smoke run; otherwise the script still checks that
every baseline suite/benchmark is present in the current run (the
plumbing half of the guard) and exits 0.  Benchmarks present on only
one side are reported but never fail the run: suites grow.

Usage::

    python benchmarks/check_regressions.py \\
        --baseline BENCH_2026-08-08.json --current BENCH_2026-09-01.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 1.5

#: medians below this are timer noise, not signal — never gate on them
MIN_GATED_SECONDS = 1e-3


def _load(path: str, role: str) -> dict:
    """Read and schema-check one consolidated BENCH json.

    A corrupt, empty, or wrong-shaped file fails with a message naming
    the file and the problem — a baseline that silently parses to the
    wrong shape would otherwise crash deep inside ``compare`` (or,
    worse, gate nothing at all).
    """
    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read {role} {path}: {exc}") from exc
    if not text.strip():
        raise SystemExit(f"{role} {path} is empty")
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"{role} {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SystemExit(
            f"{role} {path}: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    suites = data.get("suites")
    if not isinstance(suites, dict):
        raise SystemExit(
            f"{role} {path}: missing or malformed 'suites' mapping "
            f"(is this a consolidated BENCH json from run_benchmarks.py?)"
        )
    for suite, body in suites.items():
        if not isinstance(body, dict) or not isinstance(
            body.get("medians", {}), dict
        ):
            raise SystemExit(
                f"{role} {path}: suite {suite!r} is malformed "
                f"(expected an object with a 'medians' mapping)"
            )
    return data


def compare(
    baseline: dict, current: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Return ``(failures, notes)`` for current vs baseline medians."""
    failures: list[str] = []
    notes: list[str] = []
    enforce = not (baseline.get("smoke") or current.get("smoke"))
    if not enforce:
        notes.append(
            "smoke-mode medians on at least one side: "
            "coverage checked, timings not enforced"
        )
    base_suites = baseline.get("suites", {})
    cur_suites = current.get("suites", {})
    for suite, base in sorted(base_suites.items()):
        cur = cur_suites.get(suite)
        if cur is None:
            failures.append(f"{suite}: suite missing from current run")
            continue
        base_medians = base.get("medians", {})
        cur_medians = cur.get("medians", {})
        for name, base_median in sorted(base_medians.items()):
            cur_median = cur_medians.get(name)
            if cur_median is None:
                # Skipped parametrizations (optional backends, core
                # gates) are legitimate — report, don't fail.
                notes.append(f"{suite}::{name}: not in current run")
                continue
            if not enforce:
                continue
            if base_median < MIN_GATED_SECONDS:
                notes.append(
                    f"{suite}::{name}: baseline {base_median * 1e3:.3f} ms "
                    f"below gating floor"
                )
                continue
            ratio = cur_median / base_median
            line = (
                f"{suite}::{name}: {base_median * 1e3:.1f} ms -> "
                f"{cur_median * 1e3:.1f} ms ({ratio:.2f}x)"
            )
            if ratio > threshold:
                failures.append(line)
            elif ratio > 1.0:
                notes.append(line)
        for name in sorted(set(cur_medians) - set(base_medians)):
            notes.append(f"{suite}::{name}: new benchmark (no baseline)")
    for suite in sorted(set(cur_suites) - set(base_suites)):
        notes.append(f"{suite}: new suite (no baseline)")
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed consolidated BENCH json")
    parser.add_argument("--current", required=True,
                        help="freshly produced consolidated BENCH json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="failure ratio for median regressions "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline, "baseline")
    current = _load(args.current, "current run")
    failures, notes = compare(baseline, current, args.threshold)
    for note in notes:
        print(f"note: {note}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        print(
            f"{len(failures)} regression(s) beyond {args.threshold}x "
            f"against {args.baseline}"
        )
        return 1
    print(
        f"no regressions beyond {args.threshold}x against {args.baseline}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
