"""Observability overhead on the acceptance workload (colors[128]).

Two guards on the same ``barabasi_albert(4000, 4)`` / 128-color run as
``bench_rothko_scaling``:

* ``test_colors128_tracing_disabled`` times the default (null-recorder)
  path — the number the PR acceptance compares against the pre-obs
  baseline — and asserts the *estimated* instrumentation share (exact
  call count x measured null-op cost) stays under 3%.
* ``test_colors128_tracing_enabled`` times the same run under a real
  recorder, reporting the absolute cost of turning tracing on via
  ``extra_info`` (informational; enabled tracing is allowed to cost).
"""

import time

import pytest

from repro.core.rothko import q_color
from repro.graphs.generators import barabasi_albert
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    recording,
    set_recorder,
    trace,
)

OVERHEAD_BUDGET = 0.03


class CallCountingRecorder(NullRecorder):
    """Null recorder that tallies how often instrumentation fires."""

    def __init__(self) -> None:
        self.calls = 0

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name)

    def count(self, name, value=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1


def _null_op_seconds(repeats: int = 50_000) -> float:
    """Per-call cost of a *disabled* instrumentation call.

    Each loop iteration exercises two calls (one span, one counter), so
    the per-call figure is the pair cost halved.  The null recorder is
    pinned explicitly: under the run_benchmarks.py wrapper a real
    recorder is active, and calibrating against it would measure the
    enabled path instead.
    """
    previous = set_recorder(NULL_RECORDER)
    try:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(repeats):
                with trace.span("x"):
                    pass
                trace._recorder._active.count("x")
            best = min(best, time.perf_counter() - start)
    finally:
        set_recorder(previous)
    return best / (2 * repeats)


@pytest.fixture(scope="module")
def colors128_adjacency():
    return barabasi_albert(4000, 4, seed=2).to_csr()


def test_colors128_tracing_disabled(benchmark, colors128_adjacency):
    counting = CallCountingRecorder()
    with recording(counting):
        q_color(colors128_adjacency, 128)

    # Pin the null recorder for the timed rounds: the benchmark driver
    # (run_benchmarks.py) installs a suite-wide recorder, and this test
    # must measure the genuinely disabled path regardless.
    previous = set_recorder(NULL_RECORDER)
    try:
        result = benchmark(q_color, colors128_adjacency, 128)
    finally:
        set_recorder(previous)
    assert result.n_colors <= 128

    estimated = counting.calls * _null_op_seconds()
    median = benchmark.stats.stats.median
    benchmark.extra_info["instrumentation_calls"] = counting.calls
    benchmark.extra_info["estimated_overhead_s"] = estimated
    assert estimated < OVERHEAD_BUDGET * median, (
        f"{counting.calls} disabled instrumentation calls cost an "
        f"estimated {estimated * 1e3:.3f} ms against a "
        f"{median * 1e3:.1f} ms median"
    )


def test_colors128_tracing_enabled(benchmark, colors128_adjacency):
    def traced():
        with recording(Recorder()) as rec:
            q_color(colors128_adjacency, 128)
        return rec

    rec = benchmark(traced)
    benchmark.extra_info["spans_recorded"] = len(rec.spans)
    assert rec.snapshot()["counters"]["rothko.splits"] == 127
