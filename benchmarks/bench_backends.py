"""Backend dispatch: numpy reference vs the best installed backend.

Every hot kernel of the coloring engine dispatches through
:mod:`repro.core.backends`, so one flag swaps the numpy reference
implementation for the numba (prange-threaded) or torch backend.  This
suite times full greedy colorings at the large-scale sizes under the
numpy backend and under whatever ``resolve_backend("auto")`` picks, and
records the pairing — backend name, device, core count, speedup — in
``extra_info`` so ``run_benchmarks.py --json`` persists the comparison
in ``benchmarks/results/bench_backends.json``.

Two invariants are asserted regardless of which backend auto-detect
finds:

* **parity** — CPU backends are bit-identical, so the accelerated
  coloring must equal the numpy coloring label-for-label;
* **dispatch overhead** — when auto-detect falls back to numpy (no
  optional backend installed), the dispatch layer itself must be free:
  the "best" run then *is* a numpy run and may not be materially slower
  than the directly-requested numpy run.

Speedup is reported, not asserted: it depends on which accelerator the
machine has.  The parallel batched-round guard (>= 1.5x on >= 4 cores)
lives in ``bench_rothko_largescale.py``.
"""

import os
import time

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core.backends import available_backends, resolve_backend
from repro.core.rothko import Rothko
from repro.graphs.generators import uniform_random_digraph

#: n -> (out_degree, color budget)
CASES = {
    250_000: (4, 64),
    1_000_000: (4, 64),
}

BEST = resolve_backend("auto")


def _graph(n):
    degree, _ = CASES[n]
    return uniform_random_digraph(n, degree, seed=7).to_csr()


@pytest.mark.parametrize("n", sorted(CASES))
def test_backend_coloring(benchmark, n):
    """Greedy coloring under the auto-detected backend, with the numpy
    reference timed alongside for the speedup column."""
    _, budget = CASES[n]
    adjacency = _graph(n)

    start = time.perf_counter()
    reference = Rothko(adjacency, backend="numpy").run(max_colors=budget)
    numpy_seconds = time.perf_counter() - start

    engine = Rothko(adjacency, backend=BEST)
    result = run_once(benchmark, lambda: engine.run(max_colors=budget))

    # CPU backends are bit-identical; a CUDA torch device is the only
    # sanctioned divergence (last-ulp atomics) and is not auto-picked
    # without hardware, so parity holds whenever this suite runs on CPU.
    if engine.backend.device == "cpu":
        assert np.array_equal(
            result.coloring.labels, reference.coloring.labels
        )
    assert result.n_colors == reference.n_colors == budget

    median = benchmark.stats.stats.median
    benchmark.extra_info["n"] = n
    benchmark.extra_info["arcs"] = int(adjacency.nnz)
    benchmark.extra_info["backend"] = engine.backend.name
    benchmark.extra_info["device"] = engine.backend.device
    benchmark.extra_info["available"] = ",".join(available_backends())
    benchmark.extra_info["cores"] = os.cpu_count() or 1
    benchmark.extra_info["numpy_seconds"] = round(numpy_seconds, 3)
    benchmark.extra_info["speedup_vs_numpy"] = round(
        numpy_seconds / median, 2
    )
    if engine.backend.name == "numpy":
        # Same kernels either way: dispatch must cost nothing.  The 1.35
        # margin absorbs one-shot timing noise between the two runs.
        assert median <= 1.35 * numpy_seconds + 0.05
