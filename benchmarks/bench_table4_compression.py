"""Table 4: compression of q-stable vs stable coloring.

Paper: stable coloring compresses real graphs only ~1.3:1; q = 16 already
buys two orders of magnitude, and mean q stays far below max q.
"""

from repro.experiments.table4_compression import compression_rows

from _bench_utils import run_once, scale_factor


def test_table4_compression(benchmark, report):
    rows = run_once(
        benchmark,
        compression_rows,
        datasets=("openflights", "epinions", "dblp"),
        scale=scale_factor(0.06),
        q_targets=(64.0, 32.0, 16.0, 8.0),
    )
    report(
        "table4_compression",
        rows,
        "Table 4: coloring size and runtime vs stable coloring",
    )
    by_dataset: dict[str, list[dict]] = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, dataset_rows in by_dataset.items():
        stable = dataset_rows[0]
        quasi = dataset_rows[1:]
        # Stable coloring barely compresses; q-stable compresses well.
        assert stable["compression"] < 3.0, dataset
        assert all(
            row["compression"] > stable["compression"] for row in quasi
        ), dataset
        # mean q <= max q everywhere (paper: mean << max).
        assert all(row["mean_q"] <= row["max_q"] + 1e-9 for row in quasi)
