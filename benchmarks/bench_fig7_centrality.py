"""Fig. 7(c): centrality speed-accuracy trade-off.

Paper: rho = 0.973 at 1% of the exact Brandes time; 50 colors give
rho > 0.948 and 100 colors rho > 0.965 on 18-75K-node graphs.
"""

from repro.experiments.fig7_tradeoff import centrality_tradeoff

from _bench_utils import run_once, scale_factor


def test_fig7c_centrality_tradeoff(benchmark, report):
    rows = run_once(
        benchmark,
        centrality_tradeoff,
        datasets=("astroph", "facebook", "deezer"),
        scale=scale_factor(0.015),
        color_budgets=(10, 25, 50, 100),
    )
    report(
        "fig7c_centrality",
        rows,
        "Fig. 7(c): Spearman rho vs end-to-end time",
        columns=[
            "dataset", "colors", "accuracy", "time_s",
            "exact_time_s", "time_fraction",
        ],
    )
    # Paper shape: decent budgets give high rank correlation, and the
    # approximation is far cheaper than exact Brandes.
    best = {}
    for row in rows:
        best[row["dataset"]] = max(
            best.get(row["dataset"], -1.0), row["accuracy"]
        )
    assert all(rho > 0.8 for rho in best.values())
    big_budget = [row for row in rows if row["colors"] >= 50]
    assert all(row["time_s"] < row["exact_time_s"] for row in big_budget)
