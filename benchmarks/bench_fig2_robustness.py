"""Fig. 2: robustness of stable vs q-stable coloring to edge noise.

Paper: the 1000-node planted graph compresses 10:1 under stable coloring,
but adding <= 1.5% random edges degrades it to ~75% of the nodes getting
unique colors, while the q = 4 coloring keeps a ~6.5:1 ratio.
"""

from repro.experiments.fig2_robustness import run_fig2

from _bench_utils import run_once


def test_fig2_robustness(benchmark, report):
    rows = run_once(
        benchmark,
        run_fig2,
        fractions=(0.0, 0.005, 0.01, 0.015),
    )
    report(
        "fig2_robustness",
        rows,
        "Fig. 2: #colors under edge perturbation (|V|=1000, |E|=21600)",
    )
    base, *perturbed = rows
    # The paper's story: stable collapses, q-stable barely moves.
    assert base["stable_colors"] == 100
    assert all(row["stable_colors"] >= 700 for row in perturbed)
    assert all(row["qstable_colors"] <= 200 for row in perturbed)
