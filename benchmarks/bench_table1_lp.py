"""Table 1 (bottom): time to reach a target LP relative error.

Paper: the reduced-LP approximation beats early-stopping an interior
point solver by ~100x on average and times out far less often.
"""

import math

from repro.experiments.table1_runtime import lp_runtime_rows

from _bench_utils import run_once, scale_factor


def test_table1_lp(benchmark, report):
    rows = run_once(
        benchmark,
        lp_runtime_rows,
        datasets=("qap15", "supportcase10", "ex10"),
        scale=scale_factor(0.04),
        color_ladder=(8, 16, 32, 64, 128),
        targets=(3.0, 2.0, 1.5),
    )
    report(
        "table1_lp",
        rows,
        "Table 1 (bottom): seconds to reach target relative error "
        "(inf = not reached, the paper's 'x')",
    )
    reached = sum(row["ours_err3.0"] < math.inf for row in rows)
    assert reached >= 2  # ours reaches the loose target on most datasets
