"""Cross-module integration tests: the three paper pipelines end to end,
sharing one coloring engine, plus determinism guarantees."""

import numpy as np
import pytest

from repro import q_color, stable_coloring
from repro.centrality.approx import approx_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.datasets.registry import load_flow, load_graph, load_lp
from repro.flow.approx import approx_max_flow
from repro.flow.network import max_flow
from repro.lp.reduction import approx_lp_opt
from repro.lp.solve import solve_lp
from repro.utils.stats import ratio_error, spearman_rho


class TestThreePipelinesEndToEnd:
    """One shared scenario per task, asserting the paper's qualitative
    guarantees all at once."""

    def test_flow_pipeline(self):
        network = load_flow("tsukuba0", scale=0.002)
        exact = max_flow(network, algorithm="push_relabel").value
        coarse = approx_max_flow(network, n_colors=6)
        fine = approx_max_flow(network, n_colors=24)
        # Upper bound at any budget; tighter with more colors.
        assert coarse.value >= exact - 1e-9
        assert fine.value >= exact - 1e-9
        assert ratio_error(exact, fine.value) <= ratio_error(
            exact, coarse.value
        ) + 1e-9

    def test_lp_pipeline(self):
        lp = load_lp("ex10", scale=0.03)
        exact = solve_lp(lp).objective
        result = approx_lp_opt(lp, n_colors=60)
        assert ratio_error(exact, result.value) < 1.5
        # Reduced LP must be dramatically smaller.
        assert result.reduction.reduced.nnz < lp.nnz / 3

    def test_centrality_pipeline(self):
        graph = load_graph("deezer", scale=0.01)
        exact = betweenness_centrality(graph)
        result = approx_betweenness(graph, n_colors=60, seed=0)
        assert spearman_rho(exact, result.scores) > 0.8


class TestColoringConsistencyAcrossTasks:
    """The engine behind all three pipelines is the same; its invariants
    must hold regardless of the weighting profile used."""

    @pytest.mark.parametrize(
        "alpha,beta", [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]
    )
    def test_profiles_produce_valid_colorings(self, alpha, beta):
        from repro.core.rothko import Rothko

        graph = load_graph("openflights", scale=0.05)
        engine = Rothko(graph, alpha=alpha, beta=beta)
        result = engine.run(max_colors=20)
        result.coloring.validate()
        assert result.coloring.n == graph.n_nodes

    def test_stable_coloring_is_rothko_fixpoint(self):
        """Running Rothko to q = 0 yields a stable coloring that refines
        the maximum stable coloring (it cannot be coarser)."""
        graph = load_graph("karate")
        adjacency = graph.to_csr()
        maximum = stable_coloring(adjacency)
        rothko = q_color(adjacency, q=0.0, n_colors=graph.n_nodes)
        assert rothko.max_q_err == 0.0
        assert rothko.coloring.refines(maximum)


class TestDeterminism:
    def test_full_pipelines_are_deterministic(self):
        lp = load_lp("qap15", scale=0.03)
        a = approx_lp_opt(lp, n_colors=24).value
        b = approx_lp_opt(lp, n_colors=24).value
        assert a == b

        network = load_flow("venus0", scale=0.001)
        x = approx_max_flow(network, n_colors=8).value
        y = approx_max_flow(network, n_colors=8).value
        assert x == y

    def test_dataset_scale_monotone(self):
        small = load_graph("astroph", scale=0.005)
        large = load_graph("astroph", scale=0.01)
        assert large.n_nodes > small.n_nodes
