"""Property sweep: arcstore vs legacy-python engines vs networkx.

The acceptance contract of the CSR-native solver core: on random
directed/undirected weighted graphs the two engines must produce
identical flow values (and networkx agrees), max-flow must equal
min-cut, lifted lower-bound flows must validate on the original
network, and betweenness must match the networkx-convention Brandes to
1e-9 for every engine.
"""

import networkx as nx
import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.flow.approx import lift_flow, reduced_network, color_flow_network
from repro.flow.mincut import min_cut
from repro.flow.network import FlowNetwork, max_flow, validate_flow
from repro.graphs.digraph import WeightedDiGraph

ALGORITHMS = ("edmonds_karp", "dinic", "push_relabel")


def random_flow_network(seed: int, n: int = 14, density: float = 0.3):
    generator = np.random.default_rng(seed)
    nx_graph = nx.gnp_random_graph(
        n, density, seed=int(generator.integers(10**6)), directed=True
    )
    graph = WeightedDiGraph(directed=True)
    for i in range(n):
        graph.add_node(i)
    for u, v in nx_graph.edges():
        capacity = float(generator.integers(1, 10))
        graph.add_edge(u, v, capacity)
        nx_graph[u][v]["capacity"] = capacity
    return FlowNetwork(graph, 0, n - 1), nx_graph


def random_weighted_graph(seed: int, n: int = 18, directed: bool = False):
    generator = np.random.default_rng(seed)
    nx_graph = nx.gnp_random_graph(n, 0.25, seed=seed, directed=directed)
    graph = WeightedDiGraph(directed=directed)
    for i in range(n):
        graph.add_node(i)
    for u, v in nx_graph.edges():
        weight = float(generator.integers(1, 7))
        graph.add_edge(u, v, weight)
        nx_graph[u][v]["weight"] = weight
    return graph, nx_graph


class TestMaxFlowCrossCheck:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(10))
    def test_engines_agree_with_networkx(self, algorithm, seed):
        network, nx_graph = random_flow_network(seed)
        expected = nx.maximum_flow_value(nx_graph, 0, network.n_nodes - 1)
        arcstore = max_flow(network, algorithm=algorithm, engine="arcstore")
        python = max_flow(network, algorithm=algorithm, engine="python")
        assert arcstore.value == pytest.approx(expected, abs=1e-9)
        assert python.value == pytest.approx(arcstore.value, abs=1e-9)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(10))
    def test_arcstore_flow_is_valid(self, algorithm, seed):
        network, _ = random_flow_network(seed)
        result = max_flow(network, algorithm=algorithm, engine="arcstore")
        validate_flow(network, result)

    @pytest.mark.parametrize("seed", range(6))
    def test_undirected_engines_agree(self, seed):
        generator = np.random.default_rng(seed)
        nx_graph = nx.gnp_random_graph(12, 0.35, seed=seed)
        graph = WeightedDiGraph(directed=False)
        for i in range(12):
            graph.add_node(i)
        for u, v in nx_graph.edges():
            graph.add_edge(u, v, float(generator.integers(1, 8)))
        network = FlowNetwork(graph, 0, 11)
        values = {
            (algorithm, engine): max_flow(
                network, algorithm=algorithm, engine=engine
            ).value
            for algorithm in ALGORITHMS
            for engine in ("arcstore", "python")
        }
        reference = values[("edmonds_karp", "python")]
        for value in values.values():
            assert value == pytest.approx(reference, abs=1e-9)


class TestMinCutDuality:
    @pytest.mark.parametrize("seed", range(8))
    def test_maxflow_equals_mincut_both_engines(self, seed):
        network, _ = random_flow_network(seed)
        flow_value = max_flow(network, engine="arcstore").value
        for engine in ("arcstore", "python"):
            cut_value, source_side, cut_arcs = min_cut(network, engine=engine)
            assert cut_value == pytest.approx(flow_value, abs=1e-9)
            assert network.source_index in source_side
            assert network.sink_index not in source_side
            # Cut arcs all leave the source side.
            for u, v in cut_arcs:
                assert u in source_side and v not in source_side

    @pytest.mark.parametrize("seed", range(8))
    def test_engines_find_same_reachable_set(self, seed):
        """Dinic is deterministic, so both residuals give one cut."""
        network, _ = random_flow_network(seed)
        _, arcstore_side, _ = min_cut(network, engine="arcstore")
        _, python_side, _ = min_cut(network, engine="python")
        assert arcstore_side == python_side


class TestLiftedFlowValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_lower_bound_lift_validates(self, seed):
        network, _ = random_flow_network(seed, n=12, density=0.4)
        coloring = color_flow_network(network, n_colors=6).coloring
        reduced = reduced_network(network, coloring, bound="lower")
        for engine in ("arcstore", "python"):
            reduced_result = max_flow(reduced, engine=engine)
            lifted = lift_flow(network, coloring, reduced_result)
            validate_flow(network, lifted)
            assert lifted.value == pytest.approx(
                reduced_result.value, abs=1e-9
            )
            # Theorem 6: the lifted lower bound cannot exceed maxFlow(G).
            exact = max_flow(network, engine=engine).value
            assert lifted.value <= exact + 1e-9


class TestBetweennessCrossCheck:
    @pytest.mark.parametrize("directed", (False, True))
    @pytest.mark.parametrize("seed", range(5))
    def test_engines_match_networkx(self, directed, seed):
        graph, nx_graph = random_weighted_graph(seed, directed=directed)
        reference = nx.betweenness_centrality(nx_graph, normalized=False)
        reference_vec = np.array([reference[i] for i in range(graph.n_nodes)])
        for engine in ("arcstore", "python"):
            scores = betweenness_centrality(graph, engine=engine)
            assert np.allclose(scores, reference_vec, atol=1e-9), engine

    @pytest.mark.parametrize("seed", range(5))
    def test_weighted_engines_match_networkx(self, seed):
        graph, nx_graph = random_weighted_graph(seed)
        reference = nx.betweenness_centrality(
            nx_graph, weight="weight", normalized=False
        )
        reference_vec = np.array([reference[i] for i in range(graph.n_nodes)])
        for engine in ("arcstore", "python"):
            scores = betweenness_centrality(
                graph, weighted=True, engine=engine
            )
            assert np.allclose(scores, reference_vec, atol=1e-9), engine

    @pytest.mark.parametrize("seed", range(3))
    def test_restricted_sources_agree(self, seed):
        """The pivot hook (sources + weights) agrees across engines."""
        graph, _ = random_weighted_graph(seed)
        sources = list(range(0, graph.n_nodes, 3))
        weights = [1.0 + 0.5 * i for i in range(len(sources))]
        arcstore = betweenness_centrality(
            graph, sources=sources, source_weights=weights,
            engine="arcstore",
        )
        python = betweenness_centrality(
            graph, sources=sources, source_weights=weights,
            engine="python",
        )
        assert np.allclose(arcstore, python, atol=1e-9)

    def test_normalized_agrees(self):
        graph, _ = random_weighted_graph(1)
        arcstore = betweenness_centrality(
            graph, normalized=True, engine="arcstore"
        )
        python = betweenness_centrality(
            graph, normalized=True, engine="python"
        )
        assert np.allclose(arcstore, python, atol=1e-9)

    def test_unknown_engine_rejected(self):
        graph, _ = random_weighted_graph(0)
        with pytest.raises(ValueError, match="engine"):
            betweenness_centrality(graph, engine="magic")

    def test_unknown_flow_engine_rejected(self):
        network, _ = random_flow_network(0)
        with pytest.raises(ValueError, match="engine"):
            max_flow(network, engine="magic")
