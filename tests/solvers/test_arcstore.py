"""Unit tests for the flat arc store and its vectorized primitives."""

import numpy as np
import pytest

from repro.flow.network import FlowNetwork
from repro.graphs.digraph import WeightedDiGraph
from repro.solvers import (
    ArcStore,
    arc_store_for,
    bfs_levels,
    bfs_parents,
    check_engine,
)
from repro.solvers.arcstore import unique_int


@pytest.fixture
def diamond_graph():
    """s -> {a, b} -> t with capacities 3/2/2/3 (indices 0..3)."""
    graph = WeightedDiGraph(directed=True)
    graph.add_edge("s", "a", 3.0)
    graph.add_edge("s", "b", 2.0)
    graph.add_edge("a", "t", 2.0)
    graph.add_edge("b", "t", 3.0)
    return graph


class TestConstruction:
    def test_paired_arcs(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        assert store.n == 4
        assert store.n_forward == 4
        # Every even arc is a forward arc; its twin reverses it.
        for arc in range(0, 2 * store.n_forward, 2):
            assert store.head[arc] == store.tail[arc ^ 1]
            assert store.tail[arc] == store.head[arc ^ 1]
            assert store.cap0[arc] > 0
            assert store.cap0[arc ^ 1] == 0.0

    def test_adjacency_groups_by_tail(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        for node in range(store.n):
            incident = store.arcs[store.indptr[node] : store.indptr[node + 1]]
            assert (store.tail[incident] == node).all()
        # Every arc id appears exactly once.
        assert sorted(store.arcs.tolist()) == list(
            range(2 * store.n_forward)
        )

    def test_total_capacity_matches_graph(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        assert store.cap0.sum() == pytest.approx(
            diamond_graph.total_weight()
        )

    def test_from_csr_drops_nonpositive(self):
        import scipy.sparse as sp

        matrix = sp.csr_matrix(
            np.array([[0.0, 2.0], [0.0, 0.0]])
        )
        store = ArcStore.from_csr(matrix)
        assert store.n_forward == 1

    def test_store_is_cached_per_csr_snapshot(self, diamond_graph):
        first = arc_store_for(diamond_graph)
        assert arc_store_for(diamond_graph) is first
        # A mutation invalidates the CSR cache and therefore the store.
        diamond_graph.add_edge("a", "b", 1.0)
        rebuilt = arc_store_for(diamond_graph)
        assert rebuilt is not first
        assert rebuilt.n_forward == first.n_forward + 1


class TestResidual:
    def test_residual_is_fresh_copy(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        cap = store.residual()
        cap[0] -= 1.0
        assert store.cap0[0] == store.residual()[0] != cap[0]

    def test_extract_flow_empty(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        assert store.extract_flow(store.residual()) == {}

    def test_extract_flow_after_push(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        cap = store.residual()
        cap[0] -= 1.0
        cap[1] += 1.0
        flow = store.extract_flow(cap)
        assert sum(flow.values()) == 1.0
        ((u, v),) = flow.keys()
        assert (store.tail[0], store.head[0]) == (u, v)


class TestTraversals:
    def test_bfs_levels(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        level = bfs_levels(store, store.residual(), 0)
        s = diamond_graph.index_of("s")
        t = diamond_graph.index_of("t")
        assert level[s] == 0
        assert level[t] == 2

    def test_bfs_levels_respects_capacity(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        cap = store.residual()
        cap[0::2] = 0.0  # saturate every forward arc
        level = bfs_levels(store, cap, 0)
        assert (level[1:] == -1).all()

    def test_bfs_parents_walks_back_to_source(self, diamond_graph):
        store = arc_store_for(diamond_graph)
        s = diamond_graph.index_of("s")
        t = diamond_graph.index_of("t")
        parent_arc = bfs_parents(store, store.residual(), s, t)
        node, hops = t, 0
        while node != s:
            node = int(store.tail[parent_arc[node]])
            hops += 1
        assert hops == 2

    def test_bfs_parents_unreachable(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "x", 5.0)
        store = arc_store_for(graph)
        assert bfs_parents(store, store.residual(), 0, 1) is None


class TestHelpers:
    @pytest.mark.parametrize("seed", range(3))
    def test_unique_int_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 50, size=300).astype(np.int64)
        assert np.array_equal(unique_int(values), np.unique(values))

    def test_unique_int_empty_and_single(self):
        assert unique_int(np.empty(0, dtype=np.int64)).size == 0
        assert unique_int(np.array([7], dtype=np.int64)).tolist() == [7]

    def test_check_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="engine"):
            check_engine("fortran")
        assert check_engine("python") == "python"
        assert check_engine("arcstore") == "arcstore"


class TestFlowNetworkIntegration:
    def test_store_shared_across_solves(self, diamond_graph):
        """max_flow and min_cut on the same graph reuse one store."""
        from repro.flow.mincut import min_cut
        from repro.flow.network import max_flow

        network = FlowNetwork(diamond_graph, "s", "t")
        first = arc_store_for(network.graph)
        max_flow(network)
        min_cut(network)
        assert arc_store_for(network.graph) is first
