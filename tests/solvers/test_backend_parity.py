"""Solver-tier backend/parallelism parity sweep.

The contract that makes ``--backend``/``--workers`` safe to flip on the
exact tier: every solver kernel backend must reproduce the numpy/serial
reference within 1e-9 — flow values for all three max-flow algorithms,
the (unique, Dinic-determined) min-cut source side and crossing arcs,
and betweenness vectors across every worker fan-out mode.  Optional
backends skip cleanly where the package is absent, so the
dependency-free CI matrix runs the numpy × serial/threads/processes
cells and the py3.12+numba job runs the full sweep.
"""

import numpy as np
import pytest

import repro.solvers.betweenness as betweenness_mod
from repro.centrality.brandes import betweenness_centrality
from repro.core.backends import numba_backend
from repro.flow.mincut import min_cut
from repro.flow.network import FlowNetwork, max_flow, validate_flow
from repro.graphs.digraph import WeightedDiGraph

ALGORITHMS = ("edmonds_karp", "dinic", "push_relabel")
BACKENDS = ("numpy", "numba")
MODES = ("serial", "threads", "processes")


def solver_backend(name):
    """The backend spec, or a clean skip when it is not installed."""
    if name == "numba" and not numba_backend.available():
        pytest.skip("numba not installed")
    return name


def random_flow_network(seed: int, n: int = 16, out_degree: int = 4):
    generator = np.random.default_rng(seed)
    graph = WeightedDiGraph(directed=True)
    for i in range(n):
        graph.add_node(i)
    for u in range(n):
        targets = generator.choice(n, size=out_degree, replace=False)
        for v in targets:
            if int(v) != u:
                graph.add_edge(u, int(v), float(generator.integers(1, 10)))
    return FlowNetwork(graph, 0, n - 1)


def random_graph(seed: int, n: int = 20, directed: bool = False):
    generator = np.random.default_rng(seed)
    graph = WeightedDiGraph(directed=directed)
    for i in range(n):
        graph.add_node(i)
    for u in range(n):
        for v in generator.choice(n, size=3, replace=False):
            if int(v) != u:
                graph.add_edge(u, int(v), float(generator.integers(1, 7)))
    return graph


class TestFlowParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(6))
    def test_flow_values_match_reference(self, backend, algorithm, seed):
        network = random_flow_network(seed)
        reference = max_flow(
            network, algorithm=algorithm, backend="numpy"
        )
        result = max_flow(
            network, algorithm=algorithm, backend=solver_backend(backend)
        )
        assert result.value == pytest.approx(reference.value, abs=1e-9)
        validate_flow(network, result)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_min_cut_sets_unique(self, backend, seed):
        """Dinic's residual is deterministic per backend contract, so
        every backend finds the *same* cut, not just the same value."""
        network = random_flow_network(seed)
        ref_value, ref_side, ref_arcs = min_cut(network, backend="numpy")
        value, side, arcs = min_cut(
            network, backend=solver_backend(backend)
        )
        assert value == pytest.approx(ref_value, abs=1e-9)
        assert side == ref_side
        assert sorted(arcs) == sorted(ref_arcs)


class TestBetweennessParity:
    @pytest.fixture(autouse=True)
    def _small_batches(self, monkeypatch):
        # Force multiple source batches on test-sized graphs so the
        # batched fan-out (and its submission-order reduce) is actually
        # exercised; batch boundaries stay worker-count independent.
        monkeypatch.setattr(betweenness_mod, "_BATCH_CELLS", 64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("directed", (False, True))
    def test_betweenness_matches_reference(self, backend, mode, directed):
        graph = random_graph(3, directed=directed)
        reference = betweenness_centrality(
            graph, backend="numpy", workers=1
        )
        scores = betweenness_centrality(
            graph,
            backend=solver_backend(backend),
            workers=1 if mode == "serial" else 3,
            parallel_mode=None if mode == "serial" else mode,
        )
        assert np.allclose(scores, reference, atol=1e-9)

    @pytest.mark.parametrize("mode", MODES)
    def test_parallel_is_bit_identical_to_serial(self, mode):
        """Same backend, any worker count: *bit*-identical results
        (submission-order reduce), which implies the 1e-9 contract."""
        graph = random_graph(7)
        serial = betweenness_centrality(graph, backend="numpy", workers=1)
        parallel = betweenness_centrality(
            graph,
            backend="numpy",
            workers=1 if mode == "serial" else 4,
            parallel_mode=None if mode == "serial" else mode,
        )
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_restricted_sources_match_reference(self, backend):
        """The pivot hook (sources + weights) under the full sweep."""
        graph = random_graph(11)
        sources = list(range(0, graph.n_nodes, 2))
        weights = [1.0 + 0.25 * i for i in range(len(sources))]
        reference = betweenness_centrality(
            graph, sources=sources, source_weights=weights,
            backend="numpy", workers=1,
        )
        scores = betweenness_centrality(
            graph, sources=sources, source_weights=weights,
            backend=solver_backend(backend), workers=2,
        )
        assert np.allclose(scores, reference, atol=1e-9)
