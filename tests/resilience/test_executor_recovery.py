"""Self-healing executor: dead, hung, and failing workers.

Worker faults are injected through ``executor.task`` — the worker-side
choke point every process-pool job routes through.  The installed plan
is fork-inherited, so each (re)spawned worker replays the same
schedule; recovery therefore has to *degrade* out of process mode to
make progress, which is exactly the contract under test: the answer
never changes, only the execution mode does.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.backends.executor as executor_mod
from repro.core.backends.executor import RoundExecutor
from repro.core.rothko import Rothko
from repro.graphs.generators import barabasi_albert
from repro.resilience import FaultPlan, injecting
from repro.resilience.fallback import ResilienceWarning


def _identity(job):
    return job


def _double(job):
    return job * 2


@pytest.fixture(autouse=True)
def _fast_recovery(monkeypatch):
    monkeypatch.setattr(executor_mod, "_BACKOFF_BASE", 0.01)


@pytest.fixture
def pool():
    ex = RoundExecutor("processes", 2, task_timeout=0.5)
    ex.attach_arrays({"dummy": np.zeros(1)})
    yield ex
    ex.release()


class TestDirectRecovery:
    def test_raising_task_recovers_without_degradation(self, pool):
        plan = FaultPlan().on("executor.task", occurrence=1)
        with injecting(plan):
            # plan was installed *after* the pool forked, so only the
            # parent would see it — rebuild so workers inherit it
            pool._stop_pool()
            pool._start_pool()
            results = pool.run_jobs(_double, [1, 2, 3, 4], _double)
        # the failed task was recomputed in the parent; the pool lives
        assert results == [2, 4, 6, 8]
        assert pool.mode == "processes"

    def test_killed_worker_degrades_to_threads(self, pool):
        plan = FaultPlan().on("executor.task", action="kill", times=None)
        with injecting(plan):
            pool._stop_pool()
            pool._start_pool()
            with pytest.warns(ResilienceWarning, match="degrading"):
                results = pool.run_jobs(_double, [1, 2, 3, 4], _double)
        assert results == [2, 4, 6, 8]
        assert pool.mode == "threads"

    def test_hung_worker_times_out_and_degrades(self, pool):
        plan = FaultPlan().on(
            "executor.task", action="sleep", seconds=30.0, times=None
        )
        with injecting(plan):
            pool._stop_pool()
            pool._start_pool()
            with pytest.warns(ResilienceWarning, match="degrading"):
                results = pool.run_jobs(_identity, list(range(6)), _identity)
        assert results == list(range(6))
        assert pool.mode == "threads"

    def test_thread_failure_degrades_to_serial(self):
        ex = RoundExecutor("threads", 2)
        ex._threads().shutdown(wait=True)  # sabotage: submit now raises
        with pytest.warns(ResilienceWarning, match="serial"):
            results = ex.run_jobs(_double, [1, 2, 3], _double)
        assert results == [2, 4, 6]
        assert ex.mode == "serial"
        ex.release()


class TestColoringSurvivesWorkerDeath:
    def test_killed_worker_never_changes_labels(self):
        graph = barabasi_albert(400, 3, seed=5)

        serial = Rothko(graph, strategy="batched")
        serial.run(max_colors=24)
        expected = serial.labels.copy()
        serial.release()

        plan = FaultPlan().on(
            "executor.task", action="kill", occurrence=2, times=None
        )
        with injecting(plan):
            engine = Rothko(
                graph,
                strategy="batched",
                workers=2,
                parallel_mode="processes",
            )
            with pytest.warns(ResilienceWarning, match="degrading"):
                engine.run(max_colors=24)
            labels = engine.labels.copy()
            engine.release()

        assert np.array_equal(labels, expected)
