"""Shared hygiene for the resilience suite."""

from __future__ import annotations

import pytest

from repro.resilience import uninstall_plan


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """A fault plan must never outlive the test that installed it."""
    uninstall_plan()
    yield
    uninstall_plan()
