"""Disabled fault injection must be free where it matters.

Same first-principles recipe as ``tests/obs/test_overhead.py``: count
how many injection points a workload actually crosses, measure the
per-call cost of a disarmed :func:`~repro.resilience.faults.inject`,
and bound the product against the workload's wall time — no noisy
A/B medians.  Two facts are guarded:

* the coloring hot path crosses **zero** injection points in serial
  mode (the sites live in ingest chunks and the process-pool choke
  point, never in per-node kernels);
* a full ingest crosses only O(runs + merge chunks) points, whose
  disarmed cost is under 1% of the ingest's own wall time.
"""

from __future__ import annotations

import time

from repro.core.rothko import q_color
from repro.graphs.edgestore import ingest_uniform_random
from repro.graphs.generators import barabasi_albert
from repro.resilience import FaultPlan, inject, injecting, uninstall_plan


def total_hits(plan: FaultPlan) -> int:
    return sum(plan._hits.values())


def null_inject_seconds(repeats: int = 20_000) -> float:
    """Per-call cost of the disarmed fast path (no plan installed)."""
    uninstall_plan()
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            inject("calibration.site")
        best = min(best, time.perf_counter() - start)
    return best / repeats


def test_serial_coloring_crosses_no_injection_points():
    graph = barabasi_albert(1000, 4, seed=2)
    adjacency = graph.to_csr()
    watcher = FaultPlan().on("never-matched")
    with injecting(watcher):
        q_color(adjacency, 64)
    assert total_hits(watcher) == 0


def test_disarmed_ingest_overhead_under_one_percent(tmp_path):
    n, degree, chunk = 2_000, 30, 8_192
    m = n * degree

    watcher = FaultPlan().on("never-matched")
    with injecting(watcher):
        ingest_uniform_random(
            tmp_path / "counted", n, degree, seed=3, chunk_arcs=chunk
        )
    crossings = total_hits(watcher)
    # spills + journal writes + merge chunks + csc chunks + one commit
    assert 0 < crossings < 10 * (m // chunk + 2)

    start = time.perf_counter()
    ingest_uniform_random(
        tmp_path / "timed", n, degree, seed=3, chunk_arcs=chunk
    )
    runtime = time.perf_counter() - start

    estimated = crossings * null_inject_seconds()
    assert estimated < 0.01 * runtime, (
        f"{crossings} disarmed inject calls cost an estimated "
        f"{estimated * 1e3:.3f} ms against a {runtime * 1e3:.1f} ms ingest"
    )
