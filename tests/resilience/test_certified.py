"""Certified-ε mode: the dial is met, bounded, or declared unreachable."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import star_graph
from repro.lp.generators import planted_block_lp
from repro.pipeline import (
    CentralityTask,
    LPTask,
    MaxFlowTask,
    run_certified,
)
from tests.conftest import random_adjacency


def random_network(seed: int, n: int = 14) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.35, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class TestEpsMet:
    def test_maxflow_meets_a_loose_dial(self):
        task = MaxFlowTask(random_network(0))
        certified = run_certified(task, eps=0.25, start_colors=4)
        assert certified.certified is True
        assert certified.achieved_error <= 0.25
        assert certified.rounds[-1].error == certified.achieved_error
        assert certified.result.n_colors == certified.n_colors

    def test_eps_zero_certifies_at_a_stable_coloring(self):
        # A stable coloring's reduced flow is exact (Corollary 9(2)), so
        # even the zero dial is reachable once the budget admits one.
        task = MaxFlowTask(random_network(1, n=10))
        certified = run_certified(task, eps=1e-9, start_colors=2)
        assert certified.certified is True
        assert certified.exact_value == pytest.approx(
            max_flow(task.problem).value
        )

    def test_lp_certifies_on_planted_blocks(self):
        lp = planted_block_lp(
            24, 18, row_groups=3, col_groups=3, noise=0.0, seed=7
        )
        certified = run_certified(
            LPTask(lp, alpha=0.0), eps=1e-6, start_colors=2
        )
        assert certified.certified is True
        # planted blocks compress: certification needs far fewer colors
        # than rows + cols
        assert certified.n_colors < lp.n_rows + lp.n_cols

    def test_budgets_grow_monotonically(self):
        task = MaxFlowTask(random_network(2))
        certified = run_certified(task, eps=0.0, start_colors=2)
        budgets = [record.n_colors for record in certified.rounds]
        assert budgets == sorted(budgets)


class TestEpsUnreachable:
    def test_color_cap_reports_not_certified(self):
        task = MaxFlowTask(random_network(7))
        certified = run_certified(
            task, eps=0.0, start_colors=2, max_colors=4
        )
        assert certified.certified is False
        assert certified.achieved_error > 0.0
        assert certified.n_colors <= 4
        assert certified.compression_ratio > 1.0

    def test_saturated_coloring_ends_the_loop(self):
        class NeverGoodEnough(CentralityTask):
            def certified_error(self, exact, result):
                return 0.5

        # a star's stable partition has ~2 classes: the budget doubles
        # but the coloring stops growing, and the loop must notice
        # rather than spin to max_colors.
        task = NeverGoodEnough(star_graph(20))
        certified = run_certified(task, eps=0.1, start_colors=4)
        assert certified.certified is False
        assert len(certified.rounds) >= 2
        assert (
            certified.rounds[-1].n_colors == certified.rounds[-2].n_colors
        )
        assert certified.rounds[-1].n_colors < 21


class TestValidation:
    def test_bad_arguments_rejected(self):
        task = MaxFlowTask(random_network(4))
        with pytest.raises(ValueError, match="eps"):
            run_certified(task, eps=-0.1)
        with pytest.raises(ValueError, match="start_colors"):
            run_certified(task, eps=0.1, start_colors=0)
        with pytest.raises(ValueError, match="growth"):
            run_certified(task, eps=0.1, growth=1.0)

    def test_default_task_has_no_oracle(self):
        task = MaxFlowTask(random_network(5))
        for method in ("exact_reference", "certified_error"):
            default = getattr(CentralityTask.__mro__[1], method)
            with pytest.raises(NotImplementedError, match="certified"):
                if method == "exact_reference":
                    default(task)
                else:
                    default(task, 1.0, None)


class TestAdapterOracles:
    def test_maxflow_oracle_and_ratio_error(self):
        network = random_network(6)
        task = MaxFlowTask(network)
        exact = task.exact_reference()
        assert exact == pytest.approx(max_flow(network).value)
        assert task.certified_error(
            exact, SimpleNamespace(value=exact)
        ) == pytest.approx(0.0)
        assert task.certified_error(
            2.0, SimpleNamespace(value=4.0)
        ) == pytest.approx(1.0)

    def test_centrality_error_is_normalized_l1(self):
        task = CentralityTask(star_graph(6))
        exact = np.array([4.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        same = SimpleNamespace(lifted=exact.copy())
        off = SimpleNamespace(lifted=exact + 1.0)
        assert task.certified_error(exact, same) == 0.0
        assert task.certified_error(exact, off) == pytest.approx(6 / 4)
        zeros = np.zeros(6)
        assert task.certified_error(
            zeros, SimpleNamespace(lifted=zeros)
        ) == 0.0
        assert task.certified_error(
            zeros, SimpleNamespace(lifted=exact)
        ) == float("inf")
