"""Fault-injection core: rules, plans, scoping, env arming."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import FaultInjected, ReproError
from repro.resilience import (
    FaultPlan,
    FaultRule,
    active_plan,
    inject,
    injecting,
    install_from_env,
    install_plan,
    uninstall_plan,
)


class TestFaultRule:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule("x", action="explode")
        with pytest.raises(ValueError, match="occurrence"):
            FaultRule("x", occurrence=0)
        with pytest.raises(ValueError, match="times"):
            FaultRule("x", times=0)
        with pytest.raises(ValueError, match="probability"):
            FaultRule("x", probability=1.5)

    def test_site_patterns_use_fnmatch(self):
        rule = FaultRule("edgestore.*")
        assert rule.matches("edgestore.merge.chunk", {})
        assert not rule.matches("executor.task", {})

    def test_context_match_filters(self):
        rule = FaultRule("site", match={"run": 2})
        assert rule.matches("site", {"run": 2})
        assert not rule.matches("site", {"run": 1})
        assert not rule.matches("site", {})


class TestFaultPlan:
    def test_fires_on_exact_occurrence(self):
        plan = FaultPlan().on("site", occurrence=3)
        for _ in range(2):
            plan.visit("site", {})
        with pytest.raises(FaultInjected, match="occurrence 3"):
            plan.visit("site", {})
        assert plan.fired == [("site", 3)]

    def test_times_one_fires_once_then_stops(self):
        plan = FaultPlan().on("site")
        with pytest.raises(FaultInjected):
            plan.visit("site", {})
        # armed rule is spent: further visits pass through
        for _ in range(5):
            plan.visit("site", {})
        assert plan.hits("site") == 6
        assert len(plan.fired) == 1

    def test_times_none_fires_every_visit(self):
        plan = FaultPlan().on("site", times=None)
        for _ in range(3):
            with pytest.raises(FaultInjected):
                plan.visit("site", {})
        assert len(plan.fired) == 3

    def test_probabilistic_schedule_is_seed_deterministic(self):
        def fire_pattern(seed):
            plan = FaultPlan(seed=seed).on(
                "site", probability=0.5, times=None
            )
            pattern = []
            for _ in range(40):
                try:
                    plan.visit("site", {})
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert any(fire_pattern(7))  # not degenerate all-miss
        assert not all(fire_pattern(7))  # nor all-fire
        assert fire_pattern(7) != fire_pattern(8)

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=3).on("site", probability=0.4, times=None)

        def run():
            pattern = []
            for _ in range(30):
                try:
                    plan.visit("site", {})
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        first = run()
        plan.reset()
        assert plan.hits("site") == 0 and plan.fired == []
        assert run() == first

    def test_callable_action_gets_context_with_site(self):
        seen = []
        plan = FaultPlan().on("site", action=seen.append)
        plan.visit("site", {"run": 4})
        assert seen == [{"run": 4, "site": "site"}]

    def test_sleep_action_blocks_for_seconds(self):
        plan = FaultPlan().on("site", action="sleep", seconds=0.05)
        start = time.perf_counter()
        plan.visit("site", {})
        assert time.perf_counter() - start >= 0.05


class TestFromSpec:
    def test_single_and_compound_specs(self):
        plan = FaultPlan.from_spec(
            "edgestore.merge.chunk@2=kill; executor.task"
        )
        assert len(plan.rules) == 2
        kill, default = plan.rules
        assert kill.site == "edgestore.merge.chunk"
        assert kill.occurrence == 2 and kill.action == "kill"
        assert default.occurrence == 1 and default.action == "raise"

    def test_bad_specs_raise_repro_error(self):
        for spec in ("", ";;", "@2=kill", "site@two", "site=explode"):
            with pytest.raises(ReproError):
                FaultPlan.from_spec(spec)


class TestInstallation:
    def test_inject_is_noop_without_plan(self):
        assert active_plan() is None
        inject("anything.at.all", run=1)  # must not raise

    def test_injecting_scopes_and_restores(self):
        outer = FaultPlan().on("never-matched")
        install_plan(outer)
        inner = FaultPlan().on("site")
        with injecting(inner) as armed:
            assert armed is inner and active_plan() is inner
            with pytest.raises(FaultInjected):
                inject("site")
        assert active_plan() is outer
        uninstall_plan()
        assert active_plan() is None

    def test_inject_routes_visits_to_installed_plan(self):
        plan = FaultPlan().on("never-matched")
        with injecting(plan):
            inject("a")
            inject("a")
            inject("b", chunk=3)
        assert plan.hits("a") == 2 and plan.hits("b") == 1

    def test_install_from_env(self):
        assert install_from_env({}) is None
        assert install_from_env({"REPRO_FAULTS": "  "}) is None
        assert active_plan() is None
        plan = install_from_env({"REPRO_FAULTS": "site@2"})
        assert active_plan() is plan
        assert plan.rules[0].occurrence == 2
        with pytest.raises(ReproError):
            install_from_env({"REPRO_FAULTS": "site@bad"})
