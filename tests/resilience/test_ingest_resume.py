"""Crash-safe ingest: kill/resume bit-identity, journal guards, verify.

The in-process half covers every injection site with the ``raise``
action (fast, runs on each fault site).  The subprocess half is the
real thing: a child ``ingest`` is ``SIGKILL``\\ ed mid-flight by the
``REPRO_FAULTS`` environment hook — no ``finally``, no ``atexit`` —
and a second child resumes it; the resulting store must be
byte-for-byte identical to an uninterrupted ingest.
"""

from __future__ import annotations

import filecmp
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import FaultInjected, StoreError
from repro.graphs.edgestore import (
    INGEST_SUFFIX,
    STAGING_SUFFIX,
    EdgeStoreWriter,
    ingest_arrays,
    verify_store,
)
from repro.resilience import FaultPlan, injecting

N_NODES = 400
N_ARCS = 5_000
CHUNK_ARCS = 1_000

#: every injection site on the ingest path, armed at an occurrence the
#: workload above actually reaches (5 runs, multi-chunk merge, commit)
KILL_SITES = [
    "edgestore.run.spill@3",
    "edgestore.run.journal@2",
    "edgestore.merge.chunk@1",
    "edgestore.csc.chunk@1",
    "edgestore.commit@1",
]


def _arcs(seed: int = 42):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, N_NODES, size=N_ARCS)
    dst = rng.integers(0, N_NODES, size=N_ARCS)
    weight = rng.integers(1, 9, size=N_ARCS).astype(np.float64)
    return src, dst, weight


def _ingest(path, resume: bool = False):
    src, dst, weight = _arcs()
    return ingest_arrays(
        path, src, dst, weight,
        n_nodes=N_NODES, chunk_arcs=CHUNK_ARCS, resume=resume,
    )


def assert_stores_identical(a: Path, b: Path) -> None:
    names = sorted(p.name for p in a.iterdir())
    assert names == sorted(p.name for p in b.iterdir())
    match, mismatch, errors = filecmp.cmpfiles(a, b, names, shallow=False)
    assert not mismatch and not errors, (mismatch, errors)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("baseline") / "store"
    _ingest(path)
    return path


class TestInProcessFaults:
    @pytest.mark.parametrize("site", KILL_SITES)
    def test_raise_then_resume_is_bit_identical(
        self, site, tmp_path, baseline
    ):
        path = tmp_path / "store"
        with injecting(FaultPlan.from_spec(site)):
            with pytest.raises(FaultInjected):
                _ingest(path)
        # the interrupted attempt left work state, never a final store
        assert not path.exists()
        assert path.with_name(path.name + INGEST_SUFFIX).exists()
        store = _ingest(path, resume=True)
        assert store.n_arcs > 0
        assert_stores_identical(path, baseline)
        # resume cleaned its scratch space behind it
        assert not path.with_name(path.name + INGEST_SUFFIX).exists()
        assert not path.with_name(path.name + STAGING_SUFFIX).exists()

    def test_two_consecutive_faults_then_resume(self, tmp_path, baseline):
        path = tmp_path / "store"
        for spec in ("edgestore.run.spill@2", "edgestore.merge.chunk@1"):
            with injecting(FaultPlan.from_spec(spec)):
                with pytest.raises(FaultInjected):
                    _ingest(path, resume=path.with_name(
                        path.name + INGEST_SUFFIX).exists())
        assert_stores_identical(
            _ingest(path, resume=True).path, baseline
        )


class TestJournalGuards:
    def test_resume_without_journal_is_an_error(self, tmp_path):
        with pytest.raises(StoreError, match="nothing to resume"):
            _ingest(tmp_path / "fresh", resume=True)

    def test_resume_with_mismatched_parameters(self, tmp_path):
        path = tmp_path / "store"
        with injecting(FaultPlan.from_spec("edgestore.run.spill@2")):
            with pytest.raises(FaultInjected):
                _ingest(path)
        src, dst, weight = _arcs()
        with pytest.raises(StoreError, match="journal"):
            ingest_arrays(
                path, src, dst, weight,
                n_nodes=N_NODES, chunk_arcs=CHUNK_ARCS // 2, resume=True,
            )

    def test_replay_chunk_straddling_frontier(self, tmp_path):
        path = tmp_path / "store"
        src, dst, weight = _arcs()
        writer = EdgeStoreWriter(
            path, n_nodes=N_NODES, chunk_arcs=500
        )
        writer.append(src[:500], dst[:500], weight[:500])
        writer.append(src[500:1000], dst[500:1000], weight[500:1000])
        # abandon the writer: 1000 arcs are journaled
        resumed = EdgeStoreWriter(
            path, n_nodes=N_NODES, chunk_arcs=500, resume=True
        )
        resumed.append(src[:700], dst[:700], weight[:700])
        with pytest.raises(StoreError, match="straddles"):
            resumed.append(src[700:1400], dst[700:1400], weight[700:1400])

    def test_finalize_with_replay_incomplete(self, tmp_path):
        path = tmp_path / "store"
        with injecting(FaultPlan.from_spec("edgestore.merge.chunk@1")):
            with pytest.raises(FaultInjected):
                _ingest(path)
        resumed = EdgeStoreWriter(
            path, n_nodes=N_NODES, chunk_arcs=CHUNK_ARCS, resume=True
        )
        with pytest.raises(StoreError, match="replay incomplete"):
            resumed.finalize()


class TestVerifyStore:
    def test_intact_store_report(self, baseline):
        report = verify_store(baseline)
        assert report["n_nodes"] == N_NODES
        assert report["checksums_verified"] is True
        assert len(report["checked"]) == 7

    def test_missing_store_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            verify_store(tmp_path / "nope")

    def test_bitflip_detected_by_checksum(self, tmp_path):
        path = tmp_path / "store"
        _ingest(path)
        target = path / "weight.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF  # flip data bits, leave the npy header alone
        target.write_bytes(bytes(blob))
        with pytest.raises(StoreError, match="checksum mismatch"):
            verify_store(path)

    def test_truncation_detected_structurally(self, tmp_path):
        path = tmp_path / "store"
        _ingest(path)
        src, dst, weight = _arcs()
        np.save(path / "dst.npy", np.asarray([0, 1], dtype=np.int32))
        with pytest.raises(StoreError, match="entries"):
            verify_store(path)


# ----------------------------------------------------------------------
# the real thing: SIGKILL a child ingest, resume in a second child
# ----------------------------------------------------------------------
CHILD_SCRIPT = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro.resilience import install_from_env
    install_from_env()

    from repro.graphs.edgestore import ingest_arrays

    path, resume = sys.argv[1], sys.argv[2] == "resume"
    rng = np.random.default_rng(42)
    src = rng.integers(0, {n}, size={m})
    dst = rng.integers(0, {n}, size={m})
    weight = rng.integers(1, 9, size={m}).astype(np.float64)
    ingest_arrays(
        path, src, dst, weight,
        n_nodes={n}, chunk_arcs={chunk}, resume=resume,
    )
    """
).format(n=N_NODES, m=N_ARCS, chunk=CHUNK_ARCS)


def _run_child(path: Path, *, faults: str = "", resume: bool = False):
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src"), env.get("PYTHONPATH", "")]
    )
    if faults:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(path), "resume" if resume else "fresh"],
        env=env, capture_output=True, text=True, timeout=120,
    )


@pytest.mark.parametrize(
    "site",
    ["edgestore.run.spill@3", "edgestore.merge.chunk@1",
     "edgestore.commit@1"],
)
def test_sigkill_then_resume_is_bit_identical(site, tmp_path, baseline):
    path = tmp_path / "store"
    killed = _run_child(path, faults=f"{site}=kill")
    assert killed.returncode == -signal.SIGKILL, killed.stderr
    assert not path.exists()

    resumed = _run_child(path, resume=True)
    assert resumed.returncode == 0, resumed.stderr

    assert_stores_identical(path, baseline)
    verify_store(path)
