"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    geometric_mean,
    log_mean_threshold,
    ratio_error,
    spearman_rho,
    top_k_overlap,
)


class TestRatioError:
    def test_perfect(self):
        assert ratio_error(5.0, 5.0) == 1.0

    def test_symmetric(self):
        assert ratio_error(2.0, 4.0) == ratio_error(4.0, 2.0) == 2.0

    def test_both_zero(self):
        assert ratio_error(0.0, 0.0) == 1.0

    def test_one_zero(self):
        assert ratio_error(0.0, 3.0) == math.inf
        assert ratio_error(3.0, 0.0) == math.inf

    def test_sign_mismatch(self):
        assert ratio_error(-2.0, 2.0) == math.inf

    def test_negative_pair(self):
        assert ratio_error(-2.0, -4.0) == 2.0

    @given(
        st.floats(0.01, 1e6),
        st.floats(0.01, 1e6),
    )
    def test_always_at_least_one(self, a, b):
        assert ratio_error(a, b) >= 1.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestLogMeanThreshold:
    def test_constant(self):
        assert log_mean_threshold(np.array([3.0, 3.0])) == pytest.approx(3.0)

    def test_strictly_between_for_nonconstant(self):
        values = np.array([0.0, 0.0, 8.0])
        threshold = log_mean_threshold(values)
        assert 0.0 < threshold < 8.0

    def test_zero_safe(self):
        assert log_mean_threshold(np.array([0.0, 0.0])) == pytest.approx(0.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            log_mean_threshold(np.array([-1.0, 2.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            log_mean_threshold(np.array([]))


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman_rho([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    @pytest.mark.filterwarnings("ignore::scipy.stats.ConstantInputWarning")
    def test_matches_scipy_with_ties(self, rng):
        for _ in range(20):
            x = rng.integers(0, 5, size=30).astype(float)
            y = rng.integers(0, 5, size=30).astype(float)
            expected = scipy.stats.spearmanr(x, y).statistic
            if np.isnan(expected):
                continue
            assert spearman_rho(x, y) == pytest.approx(expected, abs=1e-12)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=3, max_size=40
        )
    )
    @pytest.mark.filterwarnings("ignore::scipy.stats.ConstantInputWarning")
    def test_matches_scipy_random(self, x):
        y = list(reversed(x))
        expected = scipy.stats.spearmanr(x, y).statistic
        ours = spearman_rho(x, y)
        if np.isnan(expected):
            return
        assert ours == pytest.approx(expected, abs=1e-9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            spearman_rho([1], [2])

    def test_constant_vectors(self):
        assert spearman_rho([1, 1, 1], [1, 1, 1]) == 1.0
        assert spearman_rho([1, 1, 1], [1, 2, 3]) == 0.0


class TestTopKOverlap:
    def test_identical(self):
        assert top_k_overlap([3, 1, 2], [30, 10, 20], 2) == 1.0

    def test_disjoint(self):
        assert top_k_overlap([1, 0, 0, 0], [0, 0, 0, 1], 1) == 0.0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            top_k_overlap([1, 2], [1, 2], 3)
        with pytest.raises(ValueError):
            top_k_overlap([1, 2], [1, 2], 0)
