"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = spawn_rngs(7, 3)[2].integers(0, 10**9, size=4)
        b = spawn_rngs(7, 3)[2].integers(0, 10**9, size=4)
        assert np.array_equal(a, b)

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
