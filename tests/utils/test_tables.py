"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table, render_rows


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "33" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123456]])
        assert "0.000123" in text

    def test_inf_and_nan(self):
        text = format_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in text
        assert "nan" in text

    def test_bool_rendering(self):
        text = format_table(["v"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestRenderRows:
    def test_dict_rows(self):
        text = render_rows([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert "x" in text and "4" in text

    def test_column_selection(self):
        text = render_rows([{"x": 1, "y": 2}], columns=["y"])
        assert "x" not in text.splitlines()[0]

    def test_empty(self):
        assert render_rows([], title="t") == "t"
