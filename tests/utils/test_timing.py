"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Stopwatch, Timings, time_call


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch().start()
        first = watch.lap()
        second = watch.lap()
        assert second >= first >= 0.0
        assert watch.laps == [first, second]

    def test_elapsed_monotone(self):
        watch = Stopwatch().start()
        assert watch.elapsed() <= watch.elapsed() + 1e-9

    def test_lap_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().lap()

    def test_restart_clears_laps(self):
        watch = Stopwatch().start()
        watch.lap()
        watch.start()
        assert watch.laps == []


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, seconds = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert seconds >= 0.0


class TestTimings:
    def test_add_and_total(self):
        timings = Timings()
        timings.add("color", 1.0)
        timings.add("solve", 2.0)
        timings.add("color", 0.5)
        assert timings.entries["color"] == pytest.approx(1.5)
        assert timings.total() == pytest.approx(3.5)
