"""Tests for the dataset registry and the stand-in loaders."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    get_dataset,
    load_flow,
    load_graph,
    load_lp,
    table2_rows,
    table3_rows,
)
from repro.exceptions import DatasetError
from repro.flow.network import FlowNetwork
from repro.graphs.digraph import WeightedDiGraph
from repro.lp.model import LinearProgram


class TestRegistry:
    def test_twenty_datasets(self):
        """The paper evaluates on 20 datasets (Tables 2 and 3)."""
        assert len(DATASETS) == 20

    def test_kinds_partition(self):
        kinds = {d.kind for d in DATASETS.values()}
        assert kinds == {"graph", "flow", "lp"}
        assert sum(d.kind == "lp" for d in DATASETS.values()) == 4
        assert sum(d.kind == "flow" for d in DATASETS.values()) == 8

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("imaginary")

    def test_kind_mismatch(self):
        with pytest.raises(DatasetError):
            load_lp("karate")
        with pytest.raises(DatasetError):
            load_graph("qap15")


class TestLoaders:
    @pytest.mark.parametrize(
        "name",
        [d.name for d in DATASETS.values() if d.kind == "graph"],
    )
    def test_graphs_load_tiny(self, name):
        graph = load_graph(name, scale=0.002)
        assert isinstance(graph, WeightedDiGraph)
        assert graph.n_nodes >= 30

    @pytest.mark.parametrize(
        "name",
        [d.name for d in DATASETS.values() if d.kind == "flow"],
    )
    def test_flows_load_tiny(self, name):
        network = load_flow(name, scale=0.002)
        assert isinstance(network, FlowNetwork)
        assert network.graph.n_nodes > 10

    @pytest.mark.parametrize(
        "name",
        [d.name for d in DATASETS.values() if d.kind == "lp"],
    )
    def test_lps_load_tiny(self, name):
        lp = load_lp(name, scale=0.02)
        assert isinstance(lp, LinearProgram)
        assert lp.nnz > 0

    def test_karate_is_exact(self):
        graph = load_graph("karate")
        assert graph.n_nodes == 34
        assert graph.n_edges == 78

    def test_loaders_deterministic(self):
        a = load_graph("deezer", scale=0.005)
        b = load_graph("deezer", scale=0.005)
        assert set(a.edges()) == set(b.edges())


class TestFlowInstanceStructure:
    def test_vision_grid_has_terminals(self):
        network = load_flow("tsukuba0", scale=0.002)
        graph = network.graph
        assert graph.out_degree(network.source) > 0
        assert graph.in_degree(network.sink) > 0

    def test_positive_flow_exists(self):
        from repro.flow.network import max_flow

        network = load_flow("venus0", scale=0.001)
        assert max_flow(network, algorithm="dinic").value > 0


class TestTables:
    def test_table2_row_count(self):
        assert len(table2_rows()) == 16

    def test_table3_row_count(self):
        rows = table3_rows()
        assert len(rows) == 4
        assert {row["name"] for row in rows} == {
            "qap15", "nug08-3rd", "supportcase10", "ex10",
        }

    def test_table2_paper_sizes(self):
        by_name = {row["name"]: row for row in table2_rows()}
        assert by_name["karate"]["vertices"] == 34
        assert by_name["epinions"]["edges"] == 508_837
