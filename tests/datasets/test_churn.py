"""Tests for the churn-scenario generators."""

import numpy as np
import pytest

from repro.datasets.churn import (
    CHURN_SCENARIOS,
    churn_scenario,
    hub_churn,
    random_churn,
    weight_jitter,
)
from repro.exceptions import DatasetError, GraphError
from repro.graphs.generators import barabasi_albert, karate_club


def _replay(graph, updates):
    """Apply a trace; raises if any delete misses (invalid trace)."""
    for update in updates:
        if update.kind == "delete":
            assert graph.has_edge(update.u, update.v), update
            graph.remove_edge(update.u, update.v)
        else:
            graph.add_edge(update.u, update.v, update.weight)


class TestRegistry:
    def test_scenario_names(self):
        assert set(CHURN_SCENARIOS) == {"random", "hub", "jitter"}

    def test_unknown_scenario(self, karate):
        with pytest.raises(DatasetError):
            churn_scenario("tsunami", karate, 5)

    @pytest.mark.parametrize("name", sorted(CHURN_SCENARIOS))
    def test_deterministic(self, name, karate):
        first = churn_scenario(name, karate, 20, seed=3)
        second = churn_scenario(name, karate, 20, seed=3)
        assert first == second
        assert len(first) == 20

    @pytest.mark.parametrize("name", sorted(CHURN_SCENARIOS))
    def test_trace_replays_cleanly(self, name):
        graph = karate_club()
        updates = churn_scenario(name, graph, 30, seed=7)
        _replay(graph, updates)

    @pytest.mark.parametrize("name", sorted(CHURN_SCENARIOS))
    def test_generator_does_not_mutate_graph(self, name, karate):
        edges_before = sorted(karate.edges())
        churn_scenario(name, karate, 15, seed=1)
        assert sorted(karate.edges()) == edges_before


class TestRandomChurn:
    def test_mix_of_kinds(self, karate):
        updates = random_churn(karate, 50, seed=0, insert_fraction=0.5)
        kinds = {u.kind for u in updates}
        assert kinds == {"insert", "delete"}

    def test_insert_only(self, karate):
        updates = random_churn(karate, 20, seed=0, insert_fraction=1.0)
        assert all(u.kind == "insert" for u in updates)

    def test_too_small_graph(self):
        from repro.graphs.digraph import WeightedDiGraph

        graph = WeightedDiGraph()
        graph.add_node(0)
        with pytest.raises(GraphError):
            random_churn(graph, 5, seed=0)


class TestHubChurn:
    def test_touches_hubs(self):
        graph = barabasi_albert(100, 3, seed=2)
        updates = hub_churn(graph, 40, seed=2, hub_fraction=0.05)
        degrees = np.zeros(graph.n_nodes)
        for u, v, _ in graph.edges():
            degrees[graph.index_of(u)] += 1
            degrees[graph.index_of(v)] += 1
        hubs = set(
            np.argsort(degrees)[::-1][: max(1, graph.n_nodes // 20)].tolist()
        )
        touching = sum(
            1
            for u in updates
            if graph.index_of(u.u) in hubs or graph.index_of(u.v) in hubs
        )
        # Every insert involves a hub; deletes pick hub-incident edges.
        assert touching == len(updates)


class TestWeightJitter:
    def test_only_reweights(self, karate):
        updates = weight_jitter(karate, 25, seed=4)
        assert all(u.kind == "reweight" for u in updates)
        assert all(u.weight > 0 for u in updates)

    def test_targets_existing_edges(self, karate):
        updates = weight_jitter(karate, 25, seed=4)
        for update in updates:
            assert karate.has_edge(update.u, update.v)

    def test_empty_graph_rejected(self):
        from repro.graphs.digraph import WeightedDiGraph

        graph = WeightedDiGraph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(GraphError):
            weight_jitter(graph, 5, seed=0)
