"""The perf-regression guard must fail loudly on bad inputs."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "check_regressions.py"
)
_spec = importlib.util.spec_from_file_location("check_regressions", _SCRIPT)
check_regressions = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regressions)


def _results(medians: dict, smoke: bool = False) -> dict:
    return {"smoke": smoke, "suites": {"suite": {"medians": medians}}}


def _write(tmp_path, name: str, payload) -> str:
    path = tmp_path / name
    text = payload if isinstance(payload, str) else json.dumps(payload)
    path.write_text(text)
    return str(path)


class TestBadInputs:
    @pytest.mark.parametrize(
        "payload, message",
        [
            ("{truncated", "not valid JSON"),
            ("", "is empty"),
            ("   \n", "is empty"),
            ("[1, 2]", "expected a JSON object"),
            ("{}", "'suites' mapping"),
            ('{"suites": "oops"}', "'suites' mapping"),
            ('{"suites": {"a": []}}', "malformed"),
            ('{"suites": {"a": {"medians": 7}}}', "malformed"),
        ],
    )
    def test_malformed_baseline_fails_clearly(
        self, tmp_path, payload, message
    ):
        baseline = _write(tmp_path, "base.json", payload)
        current = _write(tmp_path, "cur.json", _results({"x": 1.0}))
        with pytest.raises(SystemExit, match=message) as excinfo:
            check_regressions.main(
                ["--baseline", baseline, "--current", current]
            )
        assert "base.json" in str(excinfo.value)

    def test_malformed_current_names_the_current_file(self, tmp_path):
        baseline = _write(tmp_path, "base.json", _results({"x": 1.0}))
        current = _write(tmp_path, "cur.json", "{bad")
        with pytest.raises(SystemExit, match="cur.json"):
            check_regressions.main(
                ["--baseline", baseline, "--current", current]
            )

    def test_missing_file_fails_clearly(self, tmp_path):
        current = _write(tmp_path, "cur.json", _results({"x": 1.0}))
        with pytest.raises(SystemExit, match="cannot read"):
            check_regressions.main(
                ["--baseline", str(tmp_path / "nope.json"),
                 "--current", current]
            )


class TestCompare:
    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _results({"x": 0.5}))
        current = _write(tmp_path, "cur.json", _results({"x": 1.0}))
        code = check_regressions.main(
            ["--baseline", baseline, "--current", current]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_current_only_benchmark_is_an_informational_note(
        self, tmp_path, capsys
    ):
        baseline = _write(tmp_path, "base.json", _results({"x": 0.5}))
        current = _write(
            tmp_path, "cur.json", _results({"x": 0.5, "y": 9.0})
        )
        code = check_regressions.main(
            ["--baseline", baseline, "--current", current]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suite::y: new benchmark (no baseline)" in out

    def test_baseline_only_benchmark_is_a_note_not_a_failure(
        self, tmp_path, capsys
    ):
        baseline = _write(
            tmp_path, "base.json", _results({"x": 0.5, "gone": 0.5})
        )
        current = _write(tmp_path, "cur.json", _results({"x": 0.5}))
        code = check_regressions.main(
            ["--baseline", baseline, "--current", current]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suite::gone: not in current run" in out

    def test_missing_suite_fails(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _results({"x": 0.5}))
        current = _write(
            tmp_path, "cur.json", {"suites": {"other": {"medians": {}}}}
        )
        code = check_regressions.main(
            ["--baseline", baseline, "--current", current]
        )
        assert code == 1
        assert "suite missing" in capsys.readouterr().out

    def test_smoke_runs_check_coverage_only(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _results({"x": 0.5}))
        current = _write(
            tmp_path, "cur.json", _results({"x": 50.0}, smoke=True)
        )
        code = check_regressions.main(
            ["--baseline", baseline, "--current", current]
        )
        assert code == 0
        assert "not enforced" in capsys.readouterr().out
