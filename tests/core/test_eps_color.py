"""Tests for the eps-relative Rothko mode (Sec. 3.1's second variant)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.qerror import is_quasi_stable
from repro.core.rothko import Rothko, eps_color
from repro.core.similarity import EpsRelative
from repro.exceptions import ColoringError
from repro.graphs.generators import barabasi_albert, karate_club
from tests.conftest import random_adjacency


class TestEpsColorValidity:
    @pytest.mark.parametrize("eps", [0.3, 0.7, 1.5])
    def test_achieved_eps_is_valid(self, eps):
        graph = karate_club()
        result = eps_color(graph, eps=eps)
        achieved = result.max_q_err
        assert achieved <= eps or not np.isfinite(achieved)
        assert is_quasi_stable(
            graph.to_csr(),
            result.coloring,
            EpsRelative(max(achieved, 0.0) + 1e-12),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_eps_zero_reaches_relative_stability(self, seed):
        adjacency = random_adjacency(10, 0.4, seed)
        result = eps_color(adjacency, eps=0.0, n_colors=10)
        # eps = 0 relative stability == equal block sums == stable coloring
        assert is_quasi_stable(
            adjacency, result.coloring, EpsRelative(1e-12)
        )

    def test_budget_capped_run_may_stay_infinite(self):
        """Stopping by color budget can leave mixed zero/nonzero blocks;
        the achieved relative error is then reported as inf (zero is
        similar only to itself, Sec. 3.1)."""
        graph = barabasi_albert(300, 3, seed=0)
        result = eps_color(graph, n_colors=10)
        assert result.n_colors <= 10
        # Either a finite eps was reached or it is honestly infinite.
        assert result.max_q_err >= 0


class TestRelativeModeGuards:
    def test_negative_weights_rejected(self):
        dense = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(ColoringError):
            Rothko(sp.csr_matrix(dense), error_mode="relative")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Rothko(np.zeros((2, 2)), error_mode="logarithmic")

    def test_needs_stopping_rule(self):
        with pytest.raises(ValueError):
            eps_color(np.zeros((3, 3)))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            eps_color(np.zeros((3, 3)), n_colors=0)
        with pytest.raises(ValueError):
            eps_color(np.zeros((3, 3)), eps=-0.5)

    def test_relative_forces_geometric_split(self):
        engine = Rothko(
            np.zeros((3, 3)), split_mean="arithmetic", error_mode="relative"
        )
        assert engine.split_mean == "geometric"


class TestZeroSeparation:
    def test_isolated_nodes_get_own_color(self):
        """Sec. 3.1: under ~eps, isolated nodes are separated from
        connected ones because 0 ~ v implies v = 0."""
        dense = np.zeros((5, 5))
        dense[0, 1] = dense[1, 2] = dense[2, 0] = 1.0  # triangle 0-1-2
        result = eps_color(sp.csr_matrix(dense), eps=10.0, n_colors=5)
        labels = result.coloring.labels
        assert labels[3] == labels[4]  # both isolated
        assert labels[3] != labels[0]  # separated from the triangle

    def test_weight_scale_invariance(self):
        """Relative error is scale-free: multiplying all weights by a
        constant must not change the coloring trajectory."""
        adjacency = random_adjacency(12, 0.4, 7)
        a = eps_color(adjacency, n_colors=6)
        b = eps_color(adjacency * 1000.0, n_colors=6)
        assert a.coloring == b.coloring
