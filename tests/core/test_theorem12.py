"""Property tests for Theorem 12(1): congruence joins stay quasi-stable.

The theorem's key lemma: when ``~`` is a congruence w.r.t. addition, the
join ``P ∨ Q`` of two ``~``quasi-stable colorings is ``~``quasi-stable —
hence a unique maximum exists.  For non-congruences (q-absolute) the
lemma fails, which is exactly why Fig. 6's graph has two incomparable
maximal colorings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import join
from repro.core.partition import Coloring
from repro.core.qerror import is_quasi_stable, max_q_err
from repro.core.refinement import congruence_coloring, stable_coloring
from repro.core.similarity import Bisimulation, CappedCongruence, Equality
from repro.graphs.generators import two_maximal_colorings_graph
from tests.conftest import random_adjacency

CONGRUENCES = [Equality(), Bisimulation(), CappedCongruence(2.0)]


def _random_quasi_stable(adjacency, relation, seed):
    """A (generally non-maximum) ~-stable coloring: refine a random
    initial partition to the relation's fixpoint."""
    generator = np.random.default_rng(seed)
    n = adjacency.shape[0]
    initial = Coloring(generator.integers(0, 3, size=n))
    return congruence_coloring(adjacency, relation, initial=initial)


class TestJoinPreservesStability:
    @pytest.mark.parametrize("relation", CONGRUENCES, ids=repr)
    @pytest.mark.parametrize("seed", range(6))
    def test_join_of_stable_colorings_is_stable(self, relation, seed):
        adjacency = random_adjacency(10, 0.4, seed)
        p = _random_quasi_stable(adjacency, relation, seed)
        q = _random_quasi_stable(adjacency, relation, seed + 100)
        assert is_quasi_stable(adjacency, p, relation)
        assert is_quasi_stable(adjacency, q, relation)
        joined = join(p, q)
        assert is_quasi_stable(adjacency, joined, relation)

    @pytest.mark.parametrize("seed", range(6))
    def test_everything_refines_the_maximum(self, seed):
        """The fixpoint from the trivial partition is the unique maximum:
        every other stable coloring refines it."""
        adjacency = random_adjacency(10, 0.4, seed)
        maximum = stable_coloring(adjacency)
        other = _random_quasi_stable(adjacency, Equality(), seed + 7)
        assert other.refines(maximum)

    def test_q_stable_join_can_break(self):
        """Theorem 12(2)'s flip side on Fig. 6: joining the two maximal
        1-stable colorings merges all three bottom nodes, whose degree
        spread is 2 > 1 — the join is NOT 1-stable."""
        graph, bottoms = two_maximal_colorings_graph(3)
        adjacency = graph.to_csr()
        n = graph.n_nodes
        b_idx = [graph.index_of(b) for b in bottoms]

        def coloring_with(groups):
            labels = np.zeros(n, dtype=np.int64)
            for color, group in enumerate(groups, start=1):
                for member in group:
                    labels[b_idx[member]] = color
            return Coloring(labels)

        first = coloring_with([[0, 1], [2]])
        second = coloring_with([[0], [1, 2]])
        assert max_q_err(adjacency, first) <= 1.0
        assert max_q_err(adjacency, second) <= 1.0
        joined = join(first, second)
        assert max_q_err(adjacency, joined) > 1.0


class TestMaximumViaHypothesis:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bisim_fixpoint_dominates_random_bisimulations(self, seed):
        adjacency = random_adjacency(8, 0.4, seed % 1000)
        maximum = congruence_coloring(adjacency, Bisimulation())
        other = _random_quasi_stable(adjacency, Bisimulation(), seed)
        assert other.refines(maximum)
