"""Tests for repro.core.partition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import Coloring, canonicalize_labels
from repro.exceptions import ColoringError

labels_strategy = st.lists(
    st.integers(0, 6), min_size=1, max_size=40
).map(np.array)


class TestCanonicalization:
    def test_first_occurrence_order(self):
        assert canonicalize_labels(np.array([5, 2, 5, 7])).tolist() == [
            0, 1, 0, 2,
        ]

    def test_idempotent(self):
        labels = np.array([3, 1, 3, 0, 1])
        once = canonicalize_labels(labels)
        assert np.array_equal(once, canonicalize_labels(once))

    @given(labels_strategy)
    def test_same_partition(self, labels):
        canonical = canonicalize_labels(labels)
        # Two nodes share a color before iff they share one after.
        for i in range(len(labels)):
            for j in range(i + 1, len(labels)):
                assert (labels[i] == labels[j]) == (
                    canonical[i] == canonical[j]
                )


class TestConstruction:
    def test_trivial(self):
        coloring = Coloring.trivial(5)
        assert coloring.n_colors == 1
        assert coloring.is_trivial()

    def test_discrete(self):
        coloring = Coloring.discrete(4)
        assert coloring.n_colors == 4
        assert coloring.is_discrete()

    def test_from_classes(self):
        coloring = Coloring.from_classes([[0, 2], [1, 3]])
        assert coloring.labels.tolist() == [0, 1, 0, 1]

    def test_from_classes_overlap(self):
        with pytest.raises(ColoringError):
            Coloring.from_classes([[0, 1], [1, 2]])

    def test_from_classes_missing_node(self):
        with pytest.raises(ColoringError):
            Coloring.from_classes([[0, 2]], n=3)

    def test_from_classes_out_of_range(self):
        with pytest.raises(ColoringError):
            Coloring.from_classes([[0, 5]], n=3)

    def test_2d_labels_rejected(self):
        with pytest.raises(ColoringError):
            Coloring(np.zeros((2, 2)))

    def test_labels_readonly(self):
        coloring = Coloring([0, 0, 1])
        with pytest.raises(ValueError):
            coloring.labels[0] = 5


class TestQueries:
    def test_sizes_and_classes(self):
        coloring = Coloring([0, 1, 0, 2, 1])
        assert coloring.sizes.tolist() == [2, 2, 1]
        assert [c.tolist() for c in coloring.classes()] == [
            [0, 2], [1, 4], [3],
        ]

    def test_members(self):
        coloring = Coloring([0, 1, 0])
        assert coloring.members(0).tolist() == [0, 2]
        with pytest.raises(ColoringError):
            coloring.members(5)

    def test_color_of(self):
        coloring = Coloring([0, 1, 0])
        assert coloring.color_of(1) == 1

    def test_compression_ratio(self):
        assert Coloring([0, 0, 0, 1]).compression_ratio() == 2.0

    def test_indicator(self):
        coloring = Coloring([0, 1, 0])
        indicator = coloring.indicator().toarray()
        assert indicator.tolist() == [[1, 0], [0, 1], [1, 0]]


class TestRefinement:
    def test_discrete_refines_everything(self):
        fine = Coloring.discrete(6)
        coarse = Coloring([0, 0, 0, 1, 1, 1])
        assert fine.refines(coarse)
        assert not coarse.refines(fine)

    def test_refines_self(self):
        coloring = Coloring([0, 1, 1, 2])
        assert coloring.refines(coloring)

    def test_size_mismatch(self):
        with pytest.raises(ColoringError):
            Coloring([0]).refines(Coloring([0, 1]))

    @given(labels_strategy)
    def test_everything_refines_trivial(self, labels):
        coloring = Coloring(labels)
        assert coloring.refines(Coloring.trivial(coloring.n))
        assert Coloring.discrete(coloring.n).refines(coloring)


class TestSplit:
    def test_split_moves_nodes(self):
        coloring = Coloring([0, 0, 0, 1])
        split = coloring.split(0, [1, 2])
        # Canonical labels renumber by first occurrence.
        assert split == Coloring([0, 1, 1, 2])
        assert split.n_colors == 3
        assert split.refines(coloring)

    def test_split_empty_raises(self):
        with pytest.raises(ColoringError):
            Coloring([0, 0]).split(0, [])

    def test_split_all_raises(self):
        with pytest.raises(ColoringError):
            Coloring([0, 0]).split(0, [0, 1])

    def test_split_wrong_color_raises(self):
        with pytest.raises(ColoringError):
            Coloring([0, 1]).split(0, [1])


class TestDunder:
    def test_equality_and_hash(self):
        a = Coloring([5, 5, 7])
        b = Coloring([0, 0, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Coloring([0, 0, 1]) != Coloring([0, 1, 1])

    def test_len_is_color_count(self):
        assert len(Coloring([0, 1, 1])) == 2

    def test_restrict(self):
        coloring = Coloring([0, 1, 0, 2])
        restricted = coloring.restrict([1, 3])
        assert restricted.labels.tolist() == [0, 1]

    def test_validate_passes(self):
        Coloring([0, 1, 0]).validate()
