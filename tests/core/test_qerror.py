"""Tests for repro.core.qerror — cross-checked against the reference."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import Coloring
from repro.core.qerror import (
    color_degree_matrices,
    error_matrices,
    grouped_minmax,
    is_q_stable,
    is_quasi_stable,
    max_q_err,
    mean_q_err,
    q_error_report,
)
from repro.core.reference import max_q_err_reference
from repro.core.similarity import QAbsolute
from tests.conftest import random_adjacency


def random_case(seed):
    generator = np.random.default_rng(seed)
    n = int(generator.integers(3, 15))
    adjacency = random_adjacency(n, 0.4, seed)
    labels = generator.integers(0, max(1, n // 2), size=n)
    return adjacency, Coloring(labels)


class TestDegreeMatrices:
    def test_row_sums(self, small_directed):
        coloring = Coloring([0, 0, 1, 1, 2, 2])
        d_out, d_in = color_degree_matrices(
            small_directed.to_csr(), coloring
        )
        # node 0 -> {1: 2.0 (color 0), 2: 1.0 (color 1)}
        assert d_out[0].tolist() == [2.0, 1.0, 0.0]
        # node 3 <- {1: 1.0 (color 0), 2: 2.0 (color 1)}
        assert d_in[3].tolist() == [1.0, 2.0, 0.0]

    def test_grouped_minmax_shapes(self):
        values = np.arange(12, dtype=float).reshape(6, 2)
        coloring = Coloring([0, 0, 1, 1, 1, 2])
        upper, lower = grouped_minmax(values, coloring)
        assert upper.shape == (3, 2)
        assert upper[1, 0] == 8.0 and lower[1, 0] == 4.0

    def test_grouped_minmax_row_mismatch(self):
        with pytest.raises(ValueError):
            grouped_minmax(np.zeros((3, 2)), Coloring([0, 1]))


class TestMaxQErr:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_reference(self, seed):
        adjacency, coloring = random_case(seed)
        fast = max_q_err(adjacency, coloring)
        slow = max_q_err_reference(adjacency.toarray(), coloring)
        assert fast == pytest.approx(slow)

    def test_discrete_coloring_has_zero_error(self):
        adjacency = random_adjacency(8, 0.5, 0)
        assert max_q_err(adjacency, Coloring.discrete(8)) == 0.0

    def test_trivial_coloring_error_is_degree_spread(self):
        # Star: center has out-degree n-1, leaves 0 -> spread n-1.
        n = 5
        dense = np.zeros((n, n))
        dense[0, 1:] = 1.0
        err = max_q_err(sp.csr_matrix(dense), Coloring.trivial(n))
        assert err == n - 1

    def test_directed_asymmetry_detected(self):
        # 0 -> 1, 1 -> nothing; in-degrees differ within the color.
        dense = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert max_q_err(sp.csr_matrix(dense), Coloring.trivial(2)) == 1.0

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            max_q_err(np.zeros((2, 3)), Coloring.trivial(2))


class TestErrorMatrices:
    def test_undirected_symmetry(self, karate):
        """Symmetric adjacency: the incoming spread into P_j from P_i is
        the outgoing spread from P_j into P_i, i.e. in_err = out_err.T."""
        coloring = Coloring.trivial(34).split(0, list(range(10)))
        out_err, in_err = error_matrices(karate.to_csr(), coloring)
        assert np.allclose(in_err, out_err.T)

    def test_orientation(self):
        # Color 0 = {0, 1} with differing out-weights into color 1 = {2}.
        dense = np.array(
            [[0.0, 0.0, 3.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]]
        )
        coloring = Coloring([0, 0, 1])
        out_err, in_err = error_matrices(sp.csr_matrix(dense), coloring)
        assert out_err[0, 1] == 2.0  # spread of out-weights 3 vs 1
        assert in_err[0, 1] == 0.0  # single node in target color


class TestMeanAndReport:
    def test_mean_leq_max(self):
        for seed in range(6):
            adjacency, coloring = random_case(seed)
            assert mean_q_err(adjacency, coloring) <= max_q_err(
                adjacency, coloring
            ) + 1e-12

    def test_report_fields(self, karate):
        coloring = Coloring.trivial(34)
        report = q_error_report(karate.to_csr(), coloring)
        assert report.n_colors == 1
        assert report.compression_ratio == 34.0
        assert report.max_q > 0
        row = report.as_row()
        assert "compression" in row

    def test_empty_graph_mean(self):
        adjacency = sp.csr_matrix((3, 3))
        assert mean_q_err(adjacency, Coloring.trivial(3)) == 0.0


class TestStability:
    def test_is_q_stable(self, karate):
        adjacency = karate.to_csr()
        coloring = Coloring.trivial(34)
        q = max_q_err(adjacency, coloring)
        assert is_q_stable(adjacency, coloring, q)
        assert not is_q_stable(adjacency, coloring, q - 0.5)

    @pytest.mark.parametrize("seed", range(5))
    def test_is_quasi_stable_consistent(self, seed):
        adjacency, coloring = random_case(seed)
        q = max_q_err(adjacency, coloring)
        assert is_quasi_stable(adjacency, coloring, QAbsolute(q))
        if q > 0:
            assert not is_quasi_stable(
                adjacency, coloring, QAbsolute(q * 0.99)
            )
