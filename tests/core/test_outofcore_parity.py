"""Memmapped edge-store colorings are bit-identical to resident runs.

The out-of-core path swaps the engine's CSR/CSC snapshots for read-only
file-backed memmaps — an I/O strategy, not an approximation — so every
strategy and executor mode must produce exactly the labels the resident
graph produces.  Integer-valued weights keep the float sums exact, so
"bit-identical" is a plain array comparison, no tolerance.
"""

import numpy as np
import pytest

from repro.core.rothko import Rothko
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.edgestore import ingest_arrays, memmap_descriptor


@pytest.fixture(scope="module")
def store_and_resident(tmp_path_factory):
    rng = np.random.default_rng(42)
    n, m = 600, 6_000
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    weight = rng.integers(1, 8, size=m).astype(np.float64)
    store = ingest_arrays(
        tmp_path_factory.mktemp("outofcore") / "store",
        src, dst, weight, n_nodes=n,
    )
    resident = WeightedDiGraph.from_arrays(src, dst, weight, n_nodes=n)
    return store, resident


@pytest.mark.parametrize("strategy", ["greedy", "batched"])
@pytest.mark.parametrize("mode", ["serial", "processes"])
def test_mmap_matches_resident(store_and_resident, strategy, mode):
    store, resident = store_and_resident
    kwargs = {"strategy": strategy}
    if strategy == "batched":
        kwargs["batch_size"] = 4
    if mode == "processes":
        kwargs.update(parallel_mode="processes", workers=2)

    mmap_graph = WeightedDiGraph.from_edgestore(store, mmap=True)
    expected = Rothko(resident, **kwargs).run(max_colors=24)
    got = Rothko(mmap_graph, **kwargs).run(max_colors=24)

    assert np.array_equal(
        got.coloring.labels, expected.coloring.labels
    )
    assert got.n_colors == expected.n_colors
    assert got.max_q_err == expected.max_q_err


def test_engine_snapshots_stay_memmapped(store_and_resident):
    """The engine must color straight off the store's files: its CSR
    and CSC snapshots keep their file descriptors (no resident copy)."""
    store, _ = store_and_resident
    graph = WeightedDiGraph.from_edgestore(store, mmap=True)
    engine = Rothko(graph)
    for array in (
        engine._csr.indptr, engine._csr.indices, engine._csr.data,
        engine._csc.indptr, engine._csc.indices, engine._csc.data,
    ):
        assert memmap_descriptor(array) is not None
    result = engine.run(max_colors=16)
    assert result.n_colors == 16
