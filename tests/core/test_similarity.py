"""Tests for repro.core.similarity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import (
    Bisimulation,
    CappedCongruence,
    EpsRelative,
    Equality,
    QAbsolute,
)

finite_floats = st.floats(-1e6, 1e6, allow_nan=False)
ALL_RELATIONS = [
    Equality(),
    QAbsolute(2.0),
    EpsRelative(0.5),
    Bisimulation(),
    CappedCongruence(3.0),
]


class TestReflexivitySymmetry:
    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=repr)
    @given(u=finite_floats)
    def test_reflexive(self, relation, u):
        assert relation.similar(u, u)

    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=repr)
    @given(u=finite_floats, v=finite_floats)
    def test_symmetric(self, relation, u, v):
        assert relation.similar(u, v) == relation.similar(v, u)

    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=repr)
    @given(st.lists(finite_floats, min_size=0, max_size=8))
    def test_all_similar_matches_pairwise(self, relation, values):
        array = np.array(values)
        expected = all(
            relation.similar(a, b) for a in values for b in values
        )
        assert relation.all_similar(array) == expected


class TestEquality:
    def test_is_congruence(self):
        assert Equality().is_congruence
        assert Equality().canonical(3.5) == 3.5

    def test_similar(self):
        assert Equality().similar(1.0, 1.0)
        assert not Equality().similar(1.0, 1.0001)


class TestQAbsolute:
    def test_threshold(self):
        relation = QAbsolute(2.0)
        assert relation.similar(1.0, 3.0)
        assert not relation.similar(1.0, 3.1)

    def test_not_transitive(self):
        relation = QAbsolute(1.0)
        assert relation.similar(0.0, 1.0) and relation.similar(1.0, 2.0)
        assert not relation.similar(0.0, 2.0)

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError):
            QAbsolute(-1.0)

    def test_no_canonical(self):
        with pytest.raises(NotImplementedError):
            QAbsolute(1.0).canonical(2.0)

    def test_q_zero_is_equality(self):
        relation = QAbsolute(0.0)
        assert relation.similar(2.0, 2.0)
        assert not relation.similar(2.0, 2.0000001)


class TestEpsRelative:
    def test_bounds(self):
        relation = EpsRelative(np.log(2.0))  # factor-of-2 tolerance
        assert relation.similar(1.0, 2.0)
        assert relation.similar(2.0, 1.0)
        assert not relation.similar(1.0, 2.1)

    def test_zero_only_similar_to_zero(self):
        relation = EpsRelative(10.0)
        assert relation.similar(0.0, 0.0)
        assert not relation.similar(0.0, 1e-9)

    def test_sign_mismatch(self):
        assert not EpsRelative(5.0).similar(-1.0, 1.0)

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            EpsRelative(-0.1)

    def test_all_similar_with_zero(self):
        relation = EpsRelative(1.0)
        assert relation.all_similar(np.array([0.0, 0.0]))
        assert not relation.all_similar(np.array([0.0, 1.0]))


class TestBisimulation:
    def test_zero_nonzero(self):
        relation = Bisimulation()
        assert relation.similar(0.0, 0.0)
        assert relation.similar(1.0, -5.0)
        assert not relation.similar(0.0, 2.0)

    def test_canonical(self):
        assert Bisimulation().canonical(7.0) == 1.0
        assert Bisimulation().canonical(0.0) == 0.0

    def test_is_congruence(self):
        assert Bisimulation().is_congruence


class TestCappedCongruence:
    def test_cap_behavior(self):
        relation = CappedCongruence(3.0)
        assert relation.similar(4.0, 100.0)  # both above the cap
        assert not relation.similar(2.0, 3.0)

    def test_canonical(self):
        relation = CappedCongruence(3.0)
        assert relation.canonical(10.0) == 3.0
        assert relation.canonical(1.5) == 1.5

    def test_congruence_property(self):
        """x ~ y implies x + z ~ y + z (on non-negative weights)."""
        relation = CappedCongruence(3.0)
        for x, y, z in [(4.0, 5.0, 1.0), (1.0, 1.0, 2.5), (3.0, 3.0, 0.5)]:
            if relation.similar(x, y):
                assert relation.similar(x + z, y + z)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            CappedCongruence(-2.0)
