"""The incremental-maintenance invariant of the Rothko engine.

The memory-flat engine keeps the U/L boundary matrices and error
matrices as persistent ``k x k`` state, patched after every split from
on-demand degree slices (no dense degree matrices exist).  These tests
certify that after *every* split — across directed/undirected,
weighted/unweighted, frozen, and relative-mode graphs — the maintained
state is exactly what a from-scratch recompute
(:func:`repro.core.qerror.error_matrices`) produces.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.qerror import color_degree_matrices, error_matrices
from repro.core.rothko import Rothko
from repro.graphs.generators import barabasi_albert
from tests.conftest import random_adjacency


def _random_weighted(n, density, seed, negative=False):
    generator = np.random.default_rng(seed)
    dense = generator.random((n, n)) * (generator.random((n, n)) < density)
    if negative:
        dense *= np.sign(generator.standard_normal((n, n)))
    np.fill_diagonal(dense, 0.0)
    return sp.csr_matrix(dense)


def _canonical_permutation(engine):
    """Map engine color ids onto the canonical ids of ``Coloring(labels)``."""
    canonical = Coloring(engine.labels)
    return np.array(
        [canonical.color_of(int(members[0])) for members in engine._members],
        dtype=np.int64,
    )


def _assert_matches_scratch(engine, adjacency):
    """Maintained error state == qerror recomputed from scratch."""
    out_err, in_err = engine.error_matrices()
    coloring = Coloring(engine.labels)
    if engine.error_mode == "absolute":
        scratch_out, scratch_in = error_matrices(adjacency, coloring)
    else:
        # qerror's error_matrices is absolute-mode; derive the relative
        # spread from the same scratch degree matrices instead.
        from repro.core.kernels import grouped_minmax_by_labels, relative_spread

        d_out, d_in = color_degree_matrices(adjacency, coloring)
        upper, lower = grouped_minmax_by_labels(
            d_out, coloring.labels, coloring.n_colors
        )
        scratch_out = relative_spread(upper, lower)
        upper, lower = grouped_minmax_by_labels(
            d_in, coloring.labels, coloring.n_colors
        )
        scratch_in = relative_spread(upper, lower).T
    # Engine labels and canonical labels may permute color ids.
    perm = _canonical_permutation(engine)
    _assert_allclose_scaled(out_err, scratch_out[np.ix_(perm, perm)])
    _assert_allclose_scaled(in_err, scratch_in[np.ix_(perm, perm)])


def _assert_allclose_scaled(actual, desired):
    """allclose with atol scaled by magnitude: subtraction residues on
    exact-zero entries are relative to the weight scale, and rtol
    contributes nothing where the reference is zero."""
    finite = desired[np.isfinite(desired)]
    scale = max(1.0, float(np.abs(finite).max())) if finite.size else 1.0
    np.testing.assert_allclose(
        actual, desired, atol=1e-8 * scale, rtol=1e-9
    )


def _drive_and_check(engine, adjacency, max_colors):
    splits = 0
    for _ in engine.steps(max_colors=max_colors):
        engine.verify_state()
        _assert_matches_scratch(engine, adjacency)
        splits += 1
    assert splits > 0, "case never split; invariant untested"


class TestIncrementalMatchesScratch:
    """After every split, U/L/Err state == scratch recompute."""

    @pytest.mark.parametrize("seed", range(5))
    def test_directed_unweighted(self, seed):
        adjacency = random_adjacency(30, 0.25, seed)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=12)

    @pytest.mark.parametrize("seed", range(5))
    def test_directed_weighted(self, seed):
        adjacency = _random_weighted(28, 0.3, seed)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=12)

    @pytest.mark.parametrize("seed", range(3))
    def test_negative_weights(self, seed):
        adjacency = _random_weighted(24, 0.3, seed, negative=True)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=10)

    @pytest.mark.parametrize("seed", range(3))
    def test_undirected_scale_free(self, seed):
        adjacency = barabasi_albert(60, 3, seed=seed).to_csr()
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=14)

    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_witness_exponents(self, seed):
        adjacency = _random_weighted(26, 0.35, seed + 10)
        engine = Rothko(adjacency, alpha=1.0, beta=0.5)
        _drive_and_check(engine, adjacency, max_colors=10)

    @pytest.mark.parametrize("seed", range(3))
    def test_geometric_split(self, seed):
        adjacency = barabasi_albert(50, 3, seed=seed + 5).to_csr()
        engine = Rothko(adjacency, split_mean="geometric")
        _drive_and_check(engine, adjacency, max_colors=12)

    @pytest.mark.parametrize("seed", range(3))
    def test_large_weights(self, seed):
        """Weights spanning 1e6-1e9: verify_state's tolerance must scale
        with magnitude (subtraction residues are relative, not absolute)."""
        generator = np.random.default_rng(seed + 50)
        dense = generator.uniform(1e6, 1e9, (40, 40)) * (
            generator.random((40, 40)) < 0.15
        )
        np.fill_diagonal(dense, 0.0)
        adjacency = sp.csr_matrix(dense)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=15)

    @pytest.mark.parametrize("seed", range(5))
    def test_geometric_split_weighted_sparse(self, seed):
        """Float weights on a sparse graph: the geometric threshold needs
        exactly-zero maintained degrees (no subtraction residues)."""
        adjacency = _random_weighted(120, 0.05, seed + 40)
        engine = Rothko(adjacency, split_mean="geometric")
        _drive_and_check(engine, adjacency, max_colors=30)

    @pytest.mark.parametrize("seed", range(4))
    def test_frozen_colors(self, seed):
        adjacency = _random_weighted(30, 0.3, seed + 20)
        generator = np.random.default_rng(seed)
        initial = Coloring(generator.integers(0, 3, size=30))
        engine = Rothko(adjacency, initial=initial, frozen=(0,))
        _drive_and_check(engine, adjacency, max_colors=12)
        # The frozen class must have survived intact.
        frozen_members = initial.members(0)
        assert np.unique(engine.labels[frozen_members]).size == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_relative_mode(self, seed):
        adjacency = _random_weighted(26, 0.35, seed + 30)
        engine = Rothko(adjacency, error_mode="relative")
        _drive_and_check(engine, adjacency, max_colors=10)

    @pytest.mark.parametrize("seed", range(2))
    def test_relative_mode_with_initial(self, seed):
        adjacency = barabasi_albert(40, 2, seed=seed).to_csr()
        generator = np.random.default_rng(seed + 7)
        initial = Coloring(generator.integers(0, 2, size=40))
        engine = Rothko(adjacency, initial=initial, error_mode="relative")
        _drive_and_check(engine, adjacency, max_colors=10)


class TestMaintainedDegreeColumns:
    """The maintained U/L state stays numerically tight even across
    long split chains (accumulated drift would show up here first)."""

    def test_long_split_chain_weighted(self):
        adjacency = _random_weighted(120, 0.2, 99)
        engine = Rothko(adjacency)
        for _ in engine.steps(max_colors=60):
            pass
        engine.verify_state()

    def test_long_split_chain_relative(self):
        adjacency = barabasi_albert(150, 4, seed=3).to_csr()
        engine = Rothko(adjacency, error_mode="relative")
        for _ in engine.steps(max_colors=40):
            pass
        engine.verify_state()


class TestLazySnapshots:
    """RothkoStep.coloring is materialized on demand yet remains a
    faithful, immutable snapshot even after the loop advances."""

    def test_snapshots_reconstructed_after_run(self):
        adjacency = random_adjacency(30, 0.3, 1)
        engine = Rothko(adjacency)
        steps = list(engine.steps(max_colors=10))
        # Replay against a second engine driven step by step.
        shadow = Rothko(adjacency)
        expected = []
        for step in shadow.steps(max_colors=10):
            expected.append(step.coloring)  # materialized while current
        for step, want in zip(steps, expected):
            assert step.coloring == want

    def test_snapshot_cached(self, karate):
        engine = Rothko(karate)
        step = next(engine.steps(max_colors=5))
        assert step.coloring is step.coloring

    def test_snapshot_immutable(self, karate):
        engine = Rothko(karate)
        for step in engine.steps(max_colors=5):
            assert not step.coloring.labels.flags.writeable


class TestChunkedRefreshPaths:
    """Certify the multi-chunk refresh machinery, not just the common
    single-chunk fast path.

    The production chunk budgets (`_EDGE_CHUNK`, `_SLICE_CELLS`,
    `_COLUMN_ACCUM_CELLS`) are far larger than any test graph, so the
    plain invariant sweep above only ever exercises single-chunk splits.
    These cases shrink the budgets so every split runs the chunked
    row-group reduction, the chunked degree gather, and both column
    scatter strategies (dense per-chunk accumulation and collected-key
    buffers), then re-run `verify_state` after every split.
    """

    def _shrink(self, monkeypatch, column_accum_cells):
        from repro.core import rothko as rothko_module

        monkeypatch.setattr(rothko_module, "_EDGE_CHUNK", 16)
        monkeypatch.setattr(rothko_module, "_SLICE_CELLS", 64)
        monkeypatch.setattr(
            rothko_module, "_COLUMN_ACCUM_CELLS", column_accum_cells
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_accumulate_path(self, monkeypatch, seed):
        """Multi-chunk splits with dense per-chunk column accumulation."""
        self._shrink(monkeypatch, column_accum_cells=1 << 30)
        adjacency = _random_weighted(60, 0.2, seed)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=16)

    @pytest.mark.parametrize("seed", range(3))
    def test_collect_path(self, monkeypatch, seed):
        """Multi-chunk splits with preallocated collected-key buffers."""
        self._shrink(monkeypatch, column_accum_cells=0)
        adjacency = _random_weighted(60, 0.2, seed + 5)
        _drive_and_check(Rothko(adjacency), adjacency, max_colors=16)

    @pytest.mark.parametrize("seed", range(2))
    def test_collect_path_geometric(self, monkeypatch, seed):
        """Exact-zero degree entries must survive the chunked paths
        (the geometric threshold crashes on residues)."""
        self._shrink(monkeypatch, column_accum_cells=0)
        adjacency = _random_weighted(80, 0.08, seed + 20)
        engine = Rothko(adjacency, split_mean="geometric")
        _drive_and_check(engine, adjacency, max_colors=20)

    @pytest.mark.parametrize("seed", range(2))
    def test_relative_mode_chunked(self, monkeypatch, seed):
        self._shrink(monkeypatch, column_accum_cells=0)
        adjacency = _random_weighted(50, 0.25, seed + 9)
        engine = Rothko(adjacency, error_mode="relative")
        _drive_and_check(engine, adjacency, max_colors=14)

    @pytest.mark.parametrize("seed", range(2))
    def test_batched_chunked(self, monkeypatch, seed):
        """The batched scheduler's generic chunked row-group refresh."""
        self._shrink(monkeypatch, column_accum_cells=0)
        adjacency = _random_weighted(50, 0.25, seed + 13)
        engine = Rothko(adjacency, strategy="batched", batch_size=4)
        for _ in engine.steps(max_colors=14):
            engine.verify_state()
            _assert_matches_scratch(engine, adjacency)
