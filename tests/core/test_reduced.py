"""Tests for reduced-graph construction and lifting matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.reduced import (
    averaging_matrix,
    block_weights,
    broadcast_matrix,
    lifting_matrices,
    reduced_adjacency,
    reduced_graph,
)
from tests.conftest import random_adjacency


@pytest.fixture
def case():
    adjacency = random_adjacency(8, 0.5, 0)
    coloring = Coloring([0, 0, 1, 1, 1, 2, 2, 2])
    return adjacency, coloring


class TestBlockWeights:
    def test_totals(self, case):
        adjacency, coloring = case
        weights = block_weights(adjacency, coloring).toarray()
        dense = adjacency.toarray()
        for i, members_i in enumerate(coloring.classes()):
            for j, members_j in enumerate(coloring.classes()):
                expected = dense[np.ix_(members_i, members_j)].sum()
                assert weights[i, j] == pytest.approx(expected)

    def test_total_weight_preserved(self, case):
        adjacency, coloring = case
        weights = block_weights(adjacency, coloring)
        assert weights.sum() == pytest.approx(adjacency.sum())


class TestReducedAdjacency:
    def test_sum_mode_is_block_weights(self, case):
        adjacency, coloring = case
        assert np.allclose(
            reduced_adjacency(adjacency, coloring, "sum").toarray(),
            block_weights(adjacency, coloring).toarray(),
        )

    def test_normalized_mode(self, case):
        adjacency, coloring = case
        weights = block_weights(adjacency, coloring).toarray()
        sizes = coloring.sizes
        expected = weights / np.sqrt(np.outer(sizes, sizes))
        assert np.allclose(
            reduced_adjacency(adjacency, coloring, "normalized").toarray(),
            expected,
        )

    def test_grohe_mode(self, case):
        adjacency, coloring = case
        weights = block_weights(adjacency, coloring).toarray()
        expected = weights / coloring.sizes[None, :]
        assert np.allclose(
            reduced_adjacency(adjacency, coloring, "grohe").toarray(),
            expected,
        )

    def test_mean_mode(self, case):
        adjacency, coloring = case
        weights = block_weights(adjacency, coloring).toarray()
        sizes = coloring.sizes
        expected = weights / np.outer(sizes, sizes)
        assert np.allclose(
            reduced_adjacency(adjacency, coloring, "mean").toarray(),
            expected,
        )

    def test_bad_mode(self, case):
        adjacency, coloring = case
        with pytest.raises(ValueError):
            reduced_adjacency(adjacency, coloring, "bogus")


class TestReducedGraph:
    def test_nodes_are_colors(self, karate):
        coloring = Coloring.trivial(34).split(0, list(range(17)))
        reduced = reduced_graph(karate, coloring)
        assert reduced.n_nodes == 2
        assert reduced.directed


class TestLiftingMatrices:
    def test_eq10_values(self, case):
        _, coloring = case
        lift_u, lift_v = lifting_matrices(coloring)
        assert lift_u.shape == (3, 8)
        dense = lift_u.toarray()
        for r in range(3):
            members = coloring.members(r)
            expected = 1.0 / np.sqrt(len(members))
            for i in range(8):
                if i in members:
                    assert dense[r, i] == pytest.approx(expected)
                else:
                    assert dense[r, i] == 0.0

    def test_uut_is_identity(self, case):
        """U U^T = I_k for the Eq. 10 lifting (orthonormal rows)."""
        _, coloring = case
        lift_u, _ = lifting_matrices(coloring)
        product = (lift_u @ lift_u.T).toarray()
        assert np.allclose(product, np.eye(coloring.n_colors))

    def test_averaging_is_row_stochastic(self, case):
        _, coloring = case
        averaging = averaging_matrix(coloring)
        assert np.allclose(
            np.asarray(averaging.sum(axis=1)).ravel(), 1.0
        )

    def test_broadcast_then_average_is_identity(self, case):
        _, coloring = case
        averaging = averaging_matrix(coloring)
        broadcast = broadcast_matrix(coloring)
        product = (averaging @ broadcast).toarray()
        assert np.allclose(product, np.eye(coloring.n_colors))

    def test_fractional_isomorphism_on_stable_coloring(self):
        """Eq. (7) holds exactly when the coloring is stable: the planted
        groups of a lifted biregular graph are equitable, so
        U A = A_hat V with the Eq. 4/10 choices."""
        from repro.core.refinement import stable_coloring
        from repro.graphs.generators import lifted_biregular

        graph, membership = lifted_biregular(
            n_groups=8, group_size=5, template_edges=12, seed=2
        )
        adjacency = graph.to_csr()
        coloring = Coloring(membership)
        # Sanity: planted partition must be equitable.
        from repro.core.qerror import max_q_err

        assert max_q_err(adjacency, coloring) == 0.0
        lift_u, lift_v = lifting_matrices(coloring)
        a_hat = reduced_adjacency(adjacency, coloring, "normalized")
        left = (lift_u @ adjacency).toarray()
        right = (a_hat @ lift_v).toarray()
        assert np.allclose(left, right)
