"""Tests for exact color refinement (stable and congruence colorings)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.qerror import is_quasi_stable, max_q_err
from repro.core.refinement import congruence_coloring, stable_coloring
from repro.core.similarity import Bisimulation, CappedCongruence, QAbsolute
from repro.exceptions import ColoringError
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    karate_club,
    star_graph,
)
from tests.conftest import random_adjacency


def independent_wl(adjacency: np.ndarray) -> int:
    """Multiset-signature 1-WL color count, written independently."""
    n = adjacency.shape[0]
    colors = [0] * n
    while True:
        signatures = {}
        new = [0] * n
        for v in range(n):
            out_sig = tuple(
                sorted(
                    (colors[u], adjacency[v, u])
                    for u in range(n)
                    if adjacency[v, u] != 0
                )
            )
            in_sig = tuple(
                sorted(
                    (colors[u], adjacency[u, v])
                    for u in range(n)
                    if adjacency[u, v] != 0
                )
            )
            key = (colors[v], out_sig, in_sig)
            if key not in signatures:
                signatures[key] = len(signatures)
            new[v] = signatures[key]
        if len(set(new)) == len(set(colors)):
            return len(set(colors))
        colors = new


class TestStableColoring:
    def test_karate_has_27_colors(self):
        """The paper's Fig. 1(a): 27 stable colors on the karate club."""
        coloring = stable_coloring(karate_club().to_csr())
        assert coloring.n_colors == 27

    def test_result_is_stable(self):
        for seed in range(8):
            adjacency = random_adjacency(12, 0.3, seed)
            coloring = stable_coloring(adjacency)
            assert max_q_err(adjacency, coloring) == 0.0

    def test_cycle_is_single_color(self):
        coloring = stable_coloring(cycle_graph(7).to_csr())
        assert coloring.n_colors == 1

    def test_star_two_colors(self):
        coloring = stable_coloring(star_graph(5).to_csr())
        assert coloring.n_colors == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_color_count_matches_independent_wl(self, seed):
        """Sum-based refinement equals multiset 1-WL on 0/1 weights."""
        graph = erdos_renyi(18, 0.25, seed=seed)
        dense = graph.to_dense()
        ours = stable_coloring(sp.csr_matrix(dense)).n_colors
        assert ours == independent_wl(dense)

    def test_weighted_distinctions(self):
        # Two nodes, same neighbor counts, different weights.
        dense = np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 2.0],
                [0.0, 0.0, 0.0],
            ]
        )
        coloring = stable_coloring(sp.csr_matrix(dense))
        assert coloring.labels[0] != coloring.labels[1]

    def test_respects_initial_partition(self):
        # Cycle normally collapses to one color; a forced split persists.
        adjacency = cycle_graph(6).to_csr()
        initial = Coloring([0, 1, 1, 1, 1, 1])
        coloring = stable_coloring(adjacency, initial=initial)
        assert coloring.refines(initial)
        assert coloring.n_colors > 1

    def test_coarsest_property_vs_planted(self):
        """Stable coloring must be coarser than (refined by no more than)
        any stable partition we know — the planted groups of the lifted
        graph are equitable, so stable colors <= planted groups."""
        from repro.graphs.generators import lifted_biregular

        graph, membership = lifted_biregular(
            n_groups=10, group_size=4, template_edges=18, seed=5
        )
        stable = stable_coloring(graph.to_csr())
        planted = Coloring(membership)
        assert planted.refines(stable) or stable.n_colors <= planted.n_colors

    def test_initial_size_mismatch(self):
        with pytest.raises(ColoringError):
            stable_coloring(np.zeros((3, 3)), initial=Coloring([0, 1]))

    def test_nonsquare_rejected(self):
        with pytest.raises(ColoringError):
            stable_coloring(np.zeros((2, 3)))


class TestCongruenceColoring:
    def test_non_congruence_rejected(self):
        with pytest.raises(ColoringError):
            congruence_coloring(np.zeros((2, 2)), QAbsolute(1.0))

    def test_bisimulation_fixpoint_is_quasi_stable(self):
        for seed in range(5):
            adjacency = random_adjacency(10, 0.3, seed)
            coloring = congruence_coloring(adjacency, Bisimulation())
            assert is_quasi_stable(adjacency, coloring, Bisimulation())

    def test_bisimulation_coarser_than_stable(self):
        """Bisimulation ignores weights/multiplicities, so its maximum
        coloring is coarser (fewer colors) than the stable coloring."""
        for seed in range(5):
            adjacency = random_adjacency(12, 0.3, seed)
            bisim = congruence_coloring(adjacency, Bisimulation())
            stable = stable_coloring(adjacency)
            assert bisim.n_colors <= stable.n_colors
            assert stable.refines(bisim)

    def test_capped_interpolates(self):
        """cap = infinity reproduces the stable coloring exactly."""
        adjacency = random_adjacency(12, 0.4, 3)
        capped = congruence_coloring(
            adjacency, CappedCongruence(float("inf"))
        )
        stable = stable_coloring(adjacency)
        assert capped == stable

    def test_capped_maximum_is_unique(self):
        """Theorem 12(1): the congruence fixpoint from the trivial
        partition is the unique maximum — any other quasi-stable coloring
        refines it.  We check against the discrete partition (always
        quasi-stable) and the fixpoint itself."""
        adjacency = random_adjacency(9, 0.4, 4)
        relation = CappedCongruence(2.0)
        maximum = congruence_coloring(adjacency, relation)
        assert is_quasi_stable(adjacency, maximum, relation)
        assert Coloring.discrete(9).refines(maximum)


class TestDegenerateInputs:
    def test_empty_adjacency(self):
        """The bulk row-grouping must handle the 0-node graph."""
        import scipy.sparse as sp

        coloring = stable_coloring(sp.csr_matrix((0, 0)))
        assert coloring.n == 0
        assert coloring.n_colors == 0

    def test_single_node(self):
        coloring = stable_coloring(np.zeros((1, 1)))
        assert coloring.n_colors == 1
