"""The batched split scheduler (``strategy="batched"``).

Two contracts are enforced.  **State**: after every yielded step the
maintained flat state equals a from-scratch recompute, exactly as for
greedy (the invariant sweep re-runs `verify_state` plus the qerror
cross-check across directed/weighted/frozen/relative graphs).
**Fidelity**: at an equal color count, the batched coloring's max
q-error stays within a constant factor of greedy's — batched trades the
paper-exact split sequence for fused refresh rounds, not for quality.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.rothko import Rothko, q_color
from tests.conftest import random_adjacency
from tests.core.test_incremental_invariant import (
    _assert_matches_scratch,
    _random_weighted,
)

#: fidelity contract: batched max q-error <= this factor of greedy's at
#: equal k (plus an absolute epsilon for near-zero errors)
FIDELITY_FACTOR = 2.0
FIDELITY_EPS = 1e-9


def _drive_batched_and_check(engine, adjacency, max_colors):
    splits = 0
    for _ in engine.steps(max_colors=max_colors):
        engine.verify_state()
        _assert_matches_scratch(engine, adjacency)
        splits += 1
    assert splits > 0, "case never split; invariant untested"


def _fidelity_case(adjacency, max_colors, **kwargs):
    greedy = Rothko(adjacency, **kwargs)
    greedy.run(max_colors=max_colors)
    batched = Rothko(adjacency, strategy="batched", batch_size=4, **kwargs)
    batched.run(max_colors=max_colors)
    assert batched.k == greedy.k
    greedy_err = greedy.max_q_err()
    batched_err = batched.max_q_err()
    if np.isinf(greedy_err):
        # Relative-mode colorings can sit at an inf witness (mixed
        # zero/nonzero block) at equal k for both strategies.
        assert np.isinf(batched_err) or batched_err >= 0
        return
    assert batched_err <= FIDELITY_FACTOR * greedy_err + FIDELITY_EPS


class TestBatchedInvariant:
    """Maintained state == scratch recompute after every batched step."""

    @pytest.mark.parametrize("seed", range(4))
    def test_directed_unweighted(self, seed):
        adjacency = random_adjacency(30, 0.25, seed)
        engine = Rothko(adjacency, strategy="batched", batch_size=4)
        _drive_batched_and_check(engine, adjacency, max_colors=13)

    @pytest.mark.parametrize("seed", range(4))
    def test_directed_weighted(self, seed):
        adjacency = _random_weighted(28, 0.3, seed)
        engine = Rothko(
            adjacency, strategy="batched", batch_size=3, alpha=1.0, beta=0.5
        )
        _drive_batched_and_check(engine, adjacency, max_colors=12)

    @pytest.mark.parametrize("seed", range(3))
    def test_negative_weights(self, seed):
        adjacency = _random_weighted(24, 0.3, seed, negative=True)
        engine = Rothko(adjacency, strategy="batched", batch_size=4)
        _drive_batched_and_check(engine, adjacency, max_colors=10)

    @pytest.mark.parametrize("seed", range(3))
    def test_geometric_split(self, seed):
        adjacency = _random_weighted(30, 0.3, seed + 10)
        engine = Rothko(
            adjacency, strategy="batched", batch_size=4,
            split_mean="geometric",
        )
        _drive_batched_and_check(engine, adjacency, max_colors=12)

    @pytest.mark.parametrize("seed", range(3))
    def test_relative_mode(self, seed):
        adjacency = _random_weighted(26, 0.35, seed + 30)
        engine = Rothko(
            adjacency, strategy="batched", batch_size=4,
            error_mode="relative",
        )
        _drive_batched_and_check(engine, adjacency, max_colors=10)

    @pytest.mark.parametrize("seed", range(3))
    def test_frozen_colors(self, seed):
        adjacency = _random_weighted(30, 0.3, seed + 20)
        generator = np.random.default_rng(seed)
        initial = Coloring(generator.integers(0, 3, size=30))
        engine = Rothko(
            adjacency, initial=initial, frozen=(0,),
            strategy="batched", batch_size=4,
        )
        _drive_batched_and_check(engine, adjacency, max_colors=12)
        frozen_members = initial.members(0)
        assert np.unique(engine.labels[frozen_members]).size == 1


class TestBatchedFidelity:
    """Batched reaches a q-error comparable to greedy at equal k."""

    @pytest.mark.parametrize("seed", range(5))
    def test_directed(self, seed):
        _fidelity_case(random_adjacency(32, 0.25, seed), max_colors=14)

    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_exponents(self, seed):
        _fidelity_case(
            _random_weighted(30, 0.3, seed), max_colors=12,
            alpha=1.0, beta=0.5,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_geometric(self, seed):
        _fidelity_case(
            _random_weighted(30, 0.3, seed + 5), max_colors=12,
            split_mean="geometric",
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_relative(self, seed):
        _fidelity_case(
            _random_weighted(28, 0.35, seed + 8), max_colors=12,
            error_mode="relative",
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_frozen(self, seed):
        generator = np.random.default_rng(seed + 40)
        adjacency = _random_weighted(30, 0.3, seed + 40)
        initial = Coloring(generator.integers(0, 3, size=30))
        _fidelity_case(
            adjacency, max_colors=12, initial=initial, frozen=(0,)
        )


class TestBatchedSemantics:
    def test_rejects_bad_strategy(self):
        with pytest.raises(ValueError):
            Rothko(np.zeros((3, 3)), strategy="eager")

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            Rothko(np.zeros((3, 3)), strategy="batched", batch_size=0)

    def test_color_budget_respected(self):
        adjacency = random_adjacency(40, 0.3, 0)
        result = q_color(adjacency, n_colors=11, strategy="batched")
        assert result.n_colors == 11

    def test_q_tolerance_respected(self):
        adjacency = random_adjacency(25, 0.3, 2)
        result = q_color(adjacency, q=2.0, strategy="batched")
        assert result.max_q_err <= 2.0 + 1e-9

    def test_steps_yield_one_per_split(self):
        adjacency = random_adjacency(30, 0.3, 3)
        engine = Rothko(adjacency, strategy="batched", batch_size=4)
        steps = list(engine.steps(max_colors=12))
        assert [s.iteration for s in steps] == list(range(1, len(steps) + 1))
        assert [s.n_colors for s in steps] == list(range(2, engine.k + 1))

    def test_snapshots_replay(self):
        """Lazy coloring snapshots reconstruct mid-round states."""
        adjacency = random_adjacency(28, 0.35, 4)
        engine = Rothko(adjacency, strategy="batched", batch_size=4)
        steps = list(engine.steps(max_colors=10))
        previous = Coloring.trivial(28)
        for step in steps:
            assert step.coloring.n_colors == step.n_colors
            assert step.coloring.refines(previous)
            previous = step.coloring

    def test_max_iterations_respected(self):
        adjacency = random_adjacency(30, 0.4, 5)
        result = q_color(
            adjacency, n_colors=20, max_iterations=5, strategy="batched"
        )
        assert result.n_iterations <= 5
        assert result.n_colors <= 6

    def test_run_matches_steps(self):
        adjacency = random_adjacency(26, 0.3, 6)
        stepped = Rothko(adjacency, strategy="batched")
        for _ in stepped.steps(max_colors=9):
            pass
        ran = Rothko(adjacency, strategy="batched").run(max_colors=9)
        assert stepped.coloring() == ran.coloring


class TestBatchedTolerance:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_overshoot_past_tolerance(self, seed):
        """A round never includes pairs already within tolerance, so a
        q-target run does not burn batch_size-1 needless colors."""
        adjacency = random_adjacency(36, 0.3, seed)
        greedy = Rothko(adjacency).run(q_tolerance=2.0, max_colors=36)
        batched = Rothko(adjacency, strategy="batched", batch_size=8).run(
            q_tolerance=2.0, max_colors=36
        )
        assert batched.max_q_err <= 2.0 + 1e-9
        # At most one round of color overshoot relative to greedy: every
        # committed split addressed a pair above tolerance.
        assert batched.n_colors <= greedy.n_colors + 7


def test_batch_size_passthrough():
    """q_color/eps_color expose the documented batch_size knob."""
    adjacency = random_adjacency(30, 0.3, 0)
    result = q_color(
        adjacency, n_colors=9, strategy="batched", batch_size=2
    )
    assert result.n_colors == 9
    from repro.core.rothko import eps_color

    weighted = sp.csr_matrix(np.abs(adjacency.toarray()))
    relative = eps_color(
        weighted, n_colors=6, strategy="batched", batch_size=2
    )
    assert relative.n_colors == 6
