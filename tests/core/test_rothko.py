"""Tests for the Rothko algorithm (Algorithm 1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.qerror import max_q_err
from repro.core.reference import rothko_step_reference
from repro.core.rothko import Rothko, coerce_adjacency, q_color
from repro.exceptions import ColoringError
from repro.graphs.generators import barabasi_albert, karate_club
from tests.conftest import random_adjacency


class TestCoerceAdjacency:
    def test_weighted_digraph(self, small_directed):
        matrix = coerce_adjacency(small_directed)
        assert matrix.shape == (6, 6)

    def test_scipy_passthrough(self):
        matrix = sp.csr_matrix(np.eye(3))
        assert coerce_adjacency(matrix).shape == (3, 3)

    def test_numpy(self):
        assert coerce_adjacency(np.zeros((2, 2))).shape == (2, 2)

    def test_networkx(self, karate):
        matrix = coerce_adjacency(karate.to_networkx())
        assert matrix.shape == (34, 34)

    def test_nonsquare_rejected(self):
        with pytest.raises(ColoringError):
            coerce_adjacency(np.zeros((2, 3)))

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            coerce_adjacency("not a graph")


class TestQColorKarate:
    """The paper's headline example (Fig. 1)."""

    def test_six_colors_reach_q3(self, karate):
        result = q_color(karate, n_colors=6)
        assert result.n_colors == 6
        assert result.max_q_err <= 3.0

    def test_q3_needs_few_colors(self, karate):
        result = q_color(karate, q=3.0)
        assert result.n_colors <= 6
        assert max_q_err(karate.to_csr(), result.coloring) <= 3.0


class TestStoppingConditions:
    def test_color_budget_respected(self):
        adjacency = random_adjacency(30, 0.3, 1)
        result = q_color(adjacency, n_colors=7)
        assert result.n_colors <= 7

    def test_q_tolerance_respected(self):
        adjacency = random_adjacency(25, 0.3, 2)
        result = q_color(adjacency, q=2.0)
        assert max_q_err(adjacency, result.coloring) <= 2.0

    def test_q_zero_reaches_stability(self):
        """Running Rothko to q = 0 yields a stable (not necessarily
        maximum) coloring."""
        adjacency = random_adjacency(12, 0.4, 3)
        result = q_color(adjacency, q=0.0, n_colors=12)
        assert max_q_err(adjacency, result.coloring) == 0.0

    def test_needs_some_stopping_rule(self):
        with pytest.raises(ValueError):
            q_color(np.zeros((3, 3)))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            q_color(np.zeros((3, 3)), n_colors=0)
        with pytest.raises(ValueError):
            q_color(np.zeros((3, 3)), q=-1.0)
        with pytest.raises(ValueError):
            Rothko(np.zeros((3, 3)), split_mean="median")

    def test_max_iterations(self):
        adjacency = random_adjacency(20, 0.4, 4)
        result = q_color(adjacency, n_colors=20, max_iterations=3)
        assert result.n_iterations <= 3


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_a_valid_partition(self, seed):
        adjacency = random_adjacency(20, 0.35, seed)
        result = q_color(adjacency, n_colors=8)
        result.coloring.validate()
        assert result.coloring.n == 20

    @pytest.mark.parametrize("seed", range(6))
    def test_reported_q_err_is_exact(self, seed):
        adjacency = random_adjacency(18, 0.35, seed)
        result = q_color(adjacency, n_colors=6)
        assert result.max_q_err == pytest.approx(
            max_q_err(adjacency, result.coloring)
        )

    def test_monotone_refinement(self):
        """Each step refines the previous coloring by exactly one split."""
        adjacency = random_adjacency(15, 0.4, 7)
        engine = Rothko(adjacency)
        previous = engine.coloring()
        for step in engine.steps(max_colors=8):
            assert step.coloring.refines(previous) is False or True
            assert step.coloring.n_colors == previous.n_colors + 1
            assert step.coloring.refines(previous)
            previous = step.coloring


class TestWitnessAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_first_witness_error_matches(self, seed):
        """The engine's first weighted witness error equals the
        brute-force reference's (tie-free inputs give identical pairs)."""
        generator = np.random.default_rng(seed)
        n = int(generator.integers(4, 10))
        adjacency = random_adjacency(n, 0.5, seed)
        initial = Coloring(generator.integers(0, 3, size=n))
        engine = Rothko(adjacency, initial=initial, alpha=1.0, beta=0.5)
        raw, weighted, i, j, direction = engine._find_witness()
        expected_weighted, _ = rothko_step_reference(
            adjacency.toarray(), engine.coloring(), alpha=1.0, beta=0.5
        )
        assert weighted == pytest.approx(expected_weighted)


class TestInitialAndFrozen:
    def test_initial_partition_respected(self):
        adjacency = random_adjacency(10, 0.5, 0)
        initial = Coloring([0] * 5 + [1] * 5)
        result = Rothko(adjacency, initial=initial).run(max_colors=4)
        assert result.coloring.refines(initial)

    def test_frozen_color_never_split(self):
        adjacency = random_adjacency(12, 0.5, 1)
        initial = Coloring([0] * 6 + [1] * 6)
        engine = Rothko(adjacency, initial=initial, frozen=(0,))
        engine.run(max_colors=8)
        # Color 0's members must still share one color.
        final_labels = engine.labels[:6]
        assert len(set(final_labels.tolist())) == 1

    def test_frozen_out_of_range(self):
        with pytest.raises(ColoringError):
            Rothko(np.zeros((3, 3)), frozen=(5,))

    def test_initial_size_mismatch(self):
        with pytest.raises(ColoringError):
            Rothko(np.zeros((3, 3)), initial=Coloring([0, 1]))


class TestSplitMeans:
    def test_geometric_on_scale_free(self):
        graph = barabasi_albert(200, 3, seed=0)
        arithmetic = q_color(graph, n_colors=10, split_mean="arithmetic")
        geometric = q_color(graph, n_colors=10, split_mean="geometric")
        # Geometric splits should be less unbalanced: its largest color
        # should not dominate as much (Sec. 5.2 discussion).  Just check
        # both produce valid 10-colorings and geometric's error is finite.
        assert arithmetic.n_colors == geometric.n_colors == 10
        assert geometric.max_q_err < np.inf

    def test_geometric_rejects_negative_weights(self):
        dense = np.array([[0.0, -1.0, 2.0]] * 3)
        np.fill_diagonal(dense, 0.0)
        engine = Rothko(sp.csr_matrix(dense), split_mean="geometric")
        with pytest.raises(ValueError):
            engine.run(max_colors=3)


class TestAnytimeInterface:
    def test_steps_yield_snapshots(self, karate):
        engine = Rothko(karate)
        steps = list(engine.steps(max_colors=5))
        assert len(steps) == 4  # 1 -> 5 colors
        assert [s.n_colors for s in steps] == [2, 3, 4, 5]
        assert all(s.elapsed >= 0 for s in steps)
        # q error before each split is non-increasing overall trend is not
        # guaranteed, but it must be positive (otherwise no split).
        assert all(s.q_err_before > 0 for s in steps)

    def test_interruptible(self, karate):
        engine = Rothko(karate)
        iterator = engine.steps(max_colors=30)
        first = next(iterator)
        assert first.n_colors == 2
        # Abandoning the generator leaves a valid coloring behind.
        engine.coloring().validate()

    def test_singleton_graph(self):
        result = q_color(np.zeros((1, 1)), n_colors=5)
        assert result.n_colors == 1
        assert result.max_q_err == 0.0

    def test_empty_adjacency(self):
        result = q_color(np.zeros((4, 4)), n_colors=3)
        assert result.n_colors == 1  # nothing to split on


class TestAnytimeGenerator:
    """The Table-6 contract of ``Rothko.steps()``: intermediate colorings
    monotonically refine, the loop is resumable after interruption, and
    the final snapshot equals a one-shot run."""

    @pytest.mark.parametrize("seed", range(4))
    def test_monotone_refinement_chain(self, seed):
        adjacency = random_adjacency(24, 0.3, seed)
        engine = Rothko(adjacency)
        snapshots = [engine.coloring()]
        for step in engine.steps(max_colors=10):
            snapshots.append(step.coloring)
        # Every snapshot refines every earlier one (total refinement
        # chain), not just its immediate predecessor.
        for later_index in range(1, len(snapshots)):
            for earlier_index in range(later_index):
                assert snapshots[later_index].refines(snapshots[earlier_index])

    @pytest.mark.parametrize("seed", range(4))
    def test_snapshots_are_independent(self, seed):
        """Yielded colorings are immutable value objects: driving the
        loop further must not mutate snapshots already handed out."""
        adjacency = random_adjacency(20, 0.35, seed)
        engine = Rothko(adjacency)
        steps = list(engine.steps(max_colors=8))
        labels_seen = [step.coloring.labels.copy() for step in steps]
        for step, expected in zip(steps, labels_seen):
            assert np.array_equal(step.coloring.labels, expected)
            assert not step.coloring.labels.flags.writeable

    @pytest.mark.parametrize("seed", range(4))
    def test_resume_equals_one_shot(self, seed):
        """Interrupting the generator and re-entering continues exactly
        where it stopped: the final coloring matches an uninterrupted
        run on an identical engine."""
        adjacency = random_adjacency(26, 0.3, seed)
        resumed = Rothko(adjacency)
        iterator = resumed.steps(max_colors=12)
        for _ in range(3):  # consume a prefix, then abandon the iterator
            next(iterator)
        assert resumed.k == 4
        for _ in resumed.steps(max_colors=12):  # fresh generator resumes
            pass
        one_shot = Rothko(adjacency).run(max_colors=12)
        assert resumed.coloring() == one_shot.coloring

    @pytest.mark.parametrize("seed", range(4))
    def test_steps_final_equals_run(self, seed):
        """Consuming steps() to exhaustion reproduces run() exactly,
        including the reported q-error."""
        adjacency = random_adjacency(22, 0.35, seed)
        stepped = Rothko(adjacency)
        last = None
        for step in stepped.steps(max_colors=9, q_tolerance=1.0):
            last = step
        result = Rothko(adjacency).run(max_colors=9, q_tolerance=1.0)
        assert last is not None
        assert last.coloring == result.coloring
        assert max_q_err(adjacency, last.coloring) == pytest.approx(
            result.max_q_err
        )

    def test_iteration_counter_contiguous(self, karate):
        engine = Rothko(karate)
        iterations = [step.iteration for step in engine.steps(max_colors=7)]
        assert iterations == list(range(1, len(iterations) + 1))


class TestCapacityGrowth:
    def test_generous_budget_early_stop_stays_small(self):
        """Capacity tracks realized k under the budget cap: a huge
        max_colors with an early q-tolerance stop must not preallocate
        budget-sized k x k state."""
        adjacency = random_adjacency(50, 0.3, 1)
        engine = Rothko(adjacency)
        engine.run(max_colors=40000, q_tolerance=5.0)
        assert engine._u_out.shape[0] <= 2 * engine.k + 16

    def test_budget_caps_doubling_exactly(self):
        """A run that exhausts its budget lands on capacity == budget,
        not the next power of two."""
        adjacency = random_adjacency(80, 0.4, 2)
        engine = Rothko(adjacency)
        engine.run(max_colors=48)
        assert engine.k == 48
        assert engine._u_out.shape[0] == 48

    def test_stale_hint_resumes_doubling(self):
        """A follow-up run past an earlier budget must not degrade to
        one capacity reallocation per split."""
        adjacency = random_adjacency(200, 0.2, 3)
        engine = Rothko(adjacency)
        engine.run(max_colors=20)
        grows = []
        original = engine._grow_to

        def counting(new_capacity):
            grows.append(new_capacity)
            return original(new_capacity)

        engine._grow_to = counting
        engine.run(q_tolerance=0.5, max_colors=None, max_iterations=160)
        # Doubling from 20: a handful of growths, not one per split.
        assert len(grows) <= 5, grows
        engine.verify_state()
