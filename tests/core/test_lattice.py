"""Tests for the partition lattice (meet/join)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import join, meet
from repro.core.partition import Coloring
from repro.exceptions import ColoringError


def pair_of_colorings(max_n=20, max_colors=5):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.integers(0, max_colors - 1), min_size=n, max_size=n
            ).map(Coloring),
            st.lists(
                st.integers(0, max_colors - 1), min_size=n, max_size=n
            ).map(Coloring),
        )
    )


class TestMeet:
    def test_example(self):
        p = Coloring([0, 0, 1, 1])
        q = Coloring([0, 1, 0, 1])
        assert meet(p, q).n_colors == 4

    def test_size_mismatch(self):
        with pytest.raises(ColoringError):
            meet(Coloring([0]), Coloring([0, 1]))

    @given(pair_of_colorings())
    def test_meet_refines_both(self, pair):
        p, q = pair
        both = meet(p, q)
        assert both.refines(p)
        assert both.refines(q)

    @given(pair_of_colorings())
    def test_meet_is_greatest(self, pair):
        """Anything refining both p and q refines the meet; the discrete
        partition is such a lower bound."""
        p, q = pair
        discrete = Coloring.discrete(p.n)
        assert discrete.refines(meet(p, q))

    @given(pair_of_colorings())
    def test_meet_idempotent_commutative(self, pair):
        p, q = pair
        assert meet(p, p) == p
        assert meet(p, q) == meet(q, p)


class TestJoin:
    def test_example(self):
        p = Coloring([0, 0, 1, 2])
        q = Coloring([0, 1, 1, 2])
        # 0~1 via p, 1~2 via q -> {0,1,2}, {3}
        assert join(p, q).labels.tolist() == [0, 0, 0, 1]

    def test_size_mismatch(self):
        with pytest.raises(ColoringError):
            join(Coloring([0]), Coloring([0, 1]))

    @given(pair_of_colorings())
    def test_both_refine_join(self, pair):
        p, q = pair
        joined = join(p, q)
        assert p.refines(joined)
        assert q.refines(joined)

    @given(pair_of_colorings())
    def test_join_is_least(self, pair):
        """The trivial partition is an upper bound; the join refines it."""
        p, q = pair
        assert join(p, q).refines(Coloring.trivial(p.n))

    @given(pair_of_colorings())
    def test_join_idempotent_commutative(self, pair):
        p, q = pair
        assert join(p, p) == p
        assert join(p, q) == join(q, p)

    @given(pair_of_colorings())
    def test_absorption(self, pair):
        """Lattice absorption laws: p ∨ (p ∧ q) = p = p ∧ (p ∨ q)."""
        p, q = pair
        assert join(p, meet(p, q)) == p
        assert meet(p, join(p, q)) == p
