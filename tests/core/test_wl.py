"""Tests for 1-WL / 2-WL colorings and Theorem 11."""

import itertools

import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.core.refinement import stable_coloring
from repro.core.wl import wl1_coloring, wl2_node_coloring, wl2_pair_coloring
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import (
    centrality_counterexample,
    cycle_graph,
    erdos_renyi,
    karate_club,
    path_graph,
)


class TestWL1:
    def test_alias_of_stable(self):
        graph = karate_club()
        assert wl1_coloring(graph) == stable_coloring(graph.to_csr())


class TestWL2Pairs:
    def test_shape(self):
        colors = wl2_pair_coloring(path_graph(4))
        assert colors.shape == (4, 4)

    def test_diagonal_distinct_from_offdiagonal(self):
        colors = wl2_pair_coloring(cycle_graph(4))
        assert colors[0, 0] != colors[0, 1]

    def test_symmetric_graph_collapses(self):
        """All nodes of a cycle are 2-WL equivalent."""
        coloring = wl2_node_coloring(cycle_graph(6))
        assert coloring.n_colors == 1

    def test_path_endpoints_vs_middle(self):
        coloring = wl2_node_coloring(path_graph(3))
        assert coloring.labels[0] == coloring.labels[2]
        assert coloring.labels[0] != coloring.labels[1]


class TestWL2RefinesWL1:
    @pytest.mark.parametrize("seed", range(4))
    def test_refinement(self, seed):
        graph = erdos_renyi(10, 0.35, seed=seed)
        node_2wl = wl2_node_coloring(graph)
        node_1wl = wl1_coloring(graph)
        assert node_2wl.refines(node_1wl)


class TestTheorem11:
    """Nodes with the same 2-WL color have the same betweenness."""

    def _check(self, graph):
        coloring = wl2_node_coloring(graph)
        scores = betweenness_centrality(graph)
        for members in coloring.classes():
            values = scores[members]
            assert np.allclose(values, values[0]), (
                f"2-WL-equivalent nodes with different centrality: {values}"
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_on_random_graphs(self, seed):
        self._check(erdos_renyi(9, 0.4, seed=seed))

    def test_on_counterexample_graph(self):
        """On Fig. 5's graph 1-WL merges u and v but 2-WL must separate
        them (otherwise Theorem 11 would be violated)."""
        graph, u, v = centrality_counterexample()
        self._check(graph)
        coloring = wl2_node_coloring(graph)
        assert coloring.labels[u] != coloring.labels[v]

    def test_on_small_trees(self):
        graph = WeightedDiGraph(directed=False)
        for u, v in [(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]:
            graph.add_edge(u, v)
        self._check(graph)
