"""Unit tests for the shared vectorized kernels."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import kernels
from repro.core.partition import Coloring


def _random_csr(n, density, seed):
    generator = np.random.default_rng(seed)
    dense = generator.random((n, n)) * (generator.random((n, n)) < density)
    np.fill_diagonal(dense, 0.0)
    return sp.csr_matrix(dense)


class TestTakeRanges:
    def test_basic(self):
        starts = np.array([0, 10, 5])
        counts = np.array([3, 2, 1])
        np.testing.assert_array_equal(
            kernels.take_ranges(starts, counts), [0, 1, 2, 10, 11, 5]
        )

    def test_empty_ranges_skipped(self):
        starts = np.array([4, 7, 2])
        counts = np.array([2, 0, 3])
        np.testing.assert_array_equal(
            kernels.take_ranges(starts, counts), [4, 5, 2, 3, 4]
        )

    def test_all_empty(self):
        result = kernels.take_ranges(np.array([3, 9]), np.array([0, 0]))
        assert result.size == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive(self, seed):
        generator = np.random.default_rng(seed)
        starts = generator.integers(0, 50, size=12)
        counts = generator.integers(0, 6, size=12)
        naive = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
            + [np.empty(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(
            kernels.take_ranges(starts, counts), naive
        )


class TestScatterSelectSums:
    @pytest.mark.parametrize("seed", range(4))
    def test_csc_columns_equal_dense_sum(self, seed):
        matrix = _random_csr(20, 0.3, seed)
        csc = matrix.tocsc()
        members = np.array([1, 4, 7, 15])
        column = kernels.scatter_select_sums(
            csc.indptr, csc.indices, csc.data, members, 20
        )
        np.testing.assert_allclose(
            column, matrix.toarray()[:, members].sum(axis=1)
        )

    def test_empty_selection(self):
        matrix = _random_csr(10, 0.3, 0)
        column = kernels.scatter_select_sums(
            matrix.indptr,
            matrix.indices,
            matrix.data,
            np.empty(0, dtype=np.int64),
            10,
        )
        np.testing.assert_array_equal(column, np.zeros(10))


class TestColorDegreeMatrix:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_indicator_product(self, seed):
        matrix = _random_csr(25, 0.25, seed)
        generator = np.random.default_rng(seed)
        coloring = Coloring(generator.integers(0, 5, size=25))
        k = coloring.n_colors
        expected = matrix.toarray() @ coloring.indicator().toarray()
        d_out = kernels.color_degree_matrix(
            matrix.indptr, matrix.indices, matrix.data, coloring.labels, k
        )
        np.testing.assert_allclose(d_out, expected)
        transposed = kernels.color_degree_matrix_t(
            matrix.indptr, matrix.indices, matrix.data, coloring.labels, k
        )
        np.testing.assert_allclose(transposed, expected.T)

    def test_zero_colors(self):
        matrix = _random_csr(5, 0.4, 1)
        result = kernels.color_degree_matrix(
            matrix.indptr, matrix.indices, matrix.data, np.zeros(5, int), 0
        )
        assert result.shape == (5, 0)


class TestGroupedMinmax:
    def test_zero_colors(self):
        upper, lower = kernels.grouped_minmax_by_labels(
            np.empty((0, 0)), np.empty(0, dtype=np.int64), 0
        )
        assert upper.shape == lower.shape == (0, 0)
        upper, lower = kernels.grouped_minmax_by_members(np.empty((3, 0)), [])
        assert upper.shape == lower.shape == (3, 0)

    def test_empty_graph_max_q_err(self):
        from repro.core.qerror import max_q_err

        empty = sp.csr_matrix((0, 0))
        assert max_q_err(empty, Coloring(np.empty(0, dtype=np.int64))) == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_members_variant_matches_labels_variant(self, seed):
        generator = np.random.default_rng(seed)
        n, k, r = 30, 4, 3
        labels = generator.integers(0, k, size=n)
        labels[:k] = np.arange(k)  # every class non-empty
        values = generator.standard_normal((r, n))
        members = [np.flatnonzero(labels == c) for c in range(k)]
        upper_m, lower_m = kernels.grouped_minmax_by_members(values, members)
        upper_l, lower_l = kernels.grouped_minmax_by_labels(values.T, labels, k)
        np.testing.assert_allclose(upper_m, upper_l.T)
        np.testing.assert_allclose(lower_m, lower_l.T)


class TestScatterSelectColorSums:
    """The block-weight row/column kernel behind the pipeline's
    incremental ``W = S^T A S`` tracker."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_block_weights_row(self, seed):
        from repro.core.reduced import block_weights
        from tests.conftest import random_adjacency

        matrix = random_adjacency(25, 0.3, seed)
        generator = np.random.default_rng(seed)
        k = 5
        labels = generator.integers(0, k, size=25)
        labels[:k] = np.arange(k)
        coloring = Coloring(labels)
        expected = block_weights(matrix, coloring).toarray()
        csc = matrix.tocsc()
        for color in range(coloring.n_colors):
            members = coloring.members(color)
            row = kernels.scatter_select_color_sums(
                matrix.indptr, matrix.indices, matrix.data,
                members, coloring.labels, coloring.n_colors,
            )
            np.testing.assert_allclose(row, expected[color], rtol=1e-12)
            col = kernels.scatter_select_color_sums(
                csc.indptr, csc.indices, csc.data,
                members, coloring.labels, coloring.n_colors,
            )
            np.testing.assert_allclose(col, expected[:, color], rtol=1e-12)

    def test_empty_selection(self):
        matrix = sp.csr_matrix(np.eye(3))
        out = kernels.scatter_select_color_sums(
            matrix.indptr, matrix.indices, matrix.data,
            np.empty(0, dtype=np.int64), np.zeros(3, dtype=np.int64), 1,
        )
        np.testing.assert_array_equal(out, [0.0])


class TestScatterAdd:
    def test_accumulates(self):
        out = kernels.scatter_add(
            np.array([0, 2, 2, 4]), np.array([1.0, 2.0, 3.0, 4.0]), 6
        )
        np.testing.assert_allclose(out, [1.0, 0.0, 5.0, 0.0, 4.0, 0.0])

    def test_empty(self):
        np.testing.assert_array_equal(
            kernels.scatter_add(np.empty(0, int), np.empty(0), 3), np.zeros(3)
        )


class TestAsCsrSquare:
    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            kernels.as_csr_square(np.zeros((2, 3)))

    def test_dense_roundtrip(self):
        dense = np.arange(9.0).reshape(3, 3)
        assert kernels.as_csr_square(dense).toarray().tolist() == dense.tolist()


class TestColorDegreeSlice:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dense_degree_matrix(self, seed):
        matrix = _random_csr(22, 0.3, seed)
        generator = np.random.default_rng(seed)
        k = 4
        labels = generator.integers(0, k, size=22)
        rows = np.array([0, 3, 9, 17, 21])
        slice_out = kernels.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data, rows, labels, k
        )
        dense = kernels.color_degree_matrix(
            matrix.indptr, matrix.indices, matrix.data, labels, k
        )
        np.testing.assert_allclose(slice_out, dense[rows].T)

    def test_exact_zeros(self):
        """Entries with no contributing edge are exactly 0.0 (the
        geometric/relative thresholds depend on it)."""
        matrix = sp.csr_matrix(
            np.array([[0.0, 0.3], [0.0, 0.0]])
        )
        labels = np.array([0, 1])
        block = kernels.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data,
            np.array([0, 1]), labels, 2,
        )
        assert block[0, 0] == 0.0 and block[0, 1] == 0.0
        assert block[1, 0] == 0.3 and block[1, 1] == 0.0

    def test_empty_rows(self):
        matrix = _random_csr(10, 0.3, 1)
        block = kernels.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data,
            np.empty(0, dtype=np.int64), np.zeros(10, dtype=np.int64), 1,
        )
        assert block.shape == (1, 0)

    @pytest.mark.parametrize("seed", range(3))
    def test_pair_stacks_both_directions(self, seed):
        matrix = _random_csr(18, 0.3, seed + 7)
        csc = matrix.tocsc()
        generator = np.random.default_rng(seed)
        k = 3
        labels = generator.integers(0, k, size=18)
        rows = np.array([2, 5, 11])
        pair = kernels.color_degree_slice_pair(
            (matrix.indptr, matrix.indices, matrix.data),
            (csc.indptr, csc.indices, csc.data),
            rows, labels, k,
        )
        out_slice = kernels.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data, rows, labels, k
        )
        in_slice = kernels.color_degree_slice(
            csc.indptr, csc.indices, csc.data, rows, labels, k
        )
        np.testing.assert_allclose(pair[0], out_slice)
        np.testing.assert_allclose(pair[1], in_slice)


class TestSelectDegreesToward:
    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_target_matches_dense(self, seed):
        matrix = _random_csr(20, 0.35, seed)
        generator = np.random.default_rng(seed)
        labels = generator.integers(0, 3, size=20)
        rows = np.array([1, 6, 13, 19])
        degrees = kernels.select_degrees_toward(
            matrix.indptr, matrix.indices, matrix.data, rows, labels, 2
        )
        dense = matrix.toarray()
        expected = dense[np.ix_(rows, np.flatnonzero(labels == 2))].sum(axis=1)
        np.testing.assert_allclose(degrees, expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_per_row_targets(self, seed):
        matrix = _random_csr(16, 0.4, seed + 3)
        generator = np.random.default_rng(seed)
        labels = generator.integers(0, 3, size=16)
        rows = np.array([0, 4, 9, 15])
        targets = np.array([2, 0, 1, 2])
        degrees = kernels.select_degrees_toward(
            matrix.indptr, matrix.indices, matrix.data, rows, labels, targets
        )
        dense = matrix.toarray()
        for row, target, got in zip(rows, targets, degrees):
            expected = dense[row, labels == target].sum()
            assert got == pytest.approx(expected)

    def test_no_matching_edges_exact_zero(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.5], [0.0, 0.0]]))
        labels = np.array([0, 0])
        degrees = kernels.select_degrees_toward(
            matrix.indptr, matrix.indices, matrix.data,
            np.array([0, 1]), labels, 1,
        )
        assert degrees[0] == 0.0 and degrees[1] == 0.0

    def test_empty_rows(self):
        matrix = _random_csr(8, 0.3, 0)
        degrees = kernels.select_degrees_toward(
            matrix.indptr, matrix.indices, matrix.data,
            np.empty(0, dtype=np.int64), np.zeros(8, dtype=np.int64), 0,
        )
        assert degrees.size == 0


class TestMembersOrder:
    @pytest.mark.parametrize("seed", range(3))
    def test_ordered_reduce_matches_by_members(self, seed):
        generator = np.random.default_rng(seed)
        n, k = 30, 5
        labels = np.concatenate([np.arange(k), generator.integers(0, k, n - k)])
        members = [np.flatnonzero(labels == c) for c in range(k)]
        values = generator.random((3, n))
        order, starts = kernels.members_order(members)
        upper, lower = kernels.grouped_minmax_ordered(values, order, starts)
        upper2, lower2 = kernels.grouped_minmax_by_members(values, members)
        np.testing.assert_array_equal(upper, upper2)
        np.testing.assert_array_equal(lower, lower2)

    def test_empty_members(self):
        order, starts = kernels.members_order([])
        assert order.size == 0 and starts.size == 0
        upper, lower = kernels.grouped_minmax_ordered(
            np.zeros((2, 0)), order, starts
        )
        assert upper.shape == (2, 0) and lower.shape == (2, 0)
