"""Backend dispatch, parity, and parallel-round determinism tests.

The parity sweep is the contract that makes ``--backend`` safe to flip:
every registered backend must produce **bit-identical** results to the
numpy reference, kernel by kernel and coloring by coloring.  Optional
backends (numba, torch) skip cleanly where the package is absent — the
dependency-free CI matrix runs only the numpy/resolution/determinism
parts, the py3.12+numba job runs the full sweep.
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    KERNEL_NAMES,
    Backend,
    RoundExecutor,
    available_backends,
    default_backend,
    resolve_backend,
    resolve_workers,
    set_default_backend,
)
from repro.core.backends import numba_backend, torch_backend
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.partition import Coloring
from repro.core.rothko import Rothko, q_color

REFERENCE = NumpyBackend()


def optional_backend(name):
    """Instantiate an optional backend or skip the test."""
    module = {"numba": numba_backend, "torch": torch_backend}[name]
    if not module.available():
        pytest.skip(f"{name} not installed")
    return resolve_backend(name)


def backend_params():
    return [
        pytest.param("numba"),
        pytest.param("torch"),
    ]


def _random_csr(n, density, seed, negative=False):
    generator = np.random.default_rng(seed)
    matrix = sp.random(
        n, n, density=density, random_state=generator, format="csr"
    )
    if negative:
        matrix.data -= 0.5
    return matrix


@pytest.fixture(autouse=True)
def _reset_default_backend():
    yield
    set_default_backend(None)


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_default_is_backend_instance(self):
        assert isinstance(default_backend(), Backend)

    def test_explicit_name(self):
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passthrough(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance

    def test_instances_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_auto_resolves(self):
        resolved = resolve_backend("auto")
        assert resolved.name in ("numpy", "numba", "torch")

    def test_missing_optional_backend_errors_clearly(self):
        for name, module in (
            ("numba", numba_backend), ("torch", torch_backend)
        ):
            if module.available():
                continue
            with pytest.raises(ImportError, match=name):
                resolve_backend(name)

    def test_set_default_backend(self):
        assert set_default_backend("numpy").name == "numpy"
        assert default_backend().name == "numpy"
        set_default_backend(None)  # back to lazy env/auto resolution
        assert default_backend().name in ("numpy", "numba", "torch")

    def test_protocol_surface(self):
        for name in KERNEL_NAMES:
            assert callable(getattr(REFERENCE, name))

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(4) == 4
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        with pytest.raises(ValueError):
            resolve_workers(0)


# ----------------------------------------------------------------------
# kernel-level parity (bit-identical to the numpy reference)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", backend_params())
class TestKernelParity:
    def _fixture(self, seed, n=60, k=7, negative=False):
        matrix = _random_csr(n, 0.15, seed, negative=negative)
        csc = matrix.tocsc()
        generator = np.random.default_rng(seed + 100)
        labels = generator.integers(0, k, size=n)
        labels[:k] = np.arange(k)  # no empty colors
        return matrix, csc, labels, k

    def test_scatter_add(self, name):
        backend = optional_backend(name)
        generator = np.random.default_rng(0)
        indices = generator.integers(0, 40, size=300)
        weights = generator.random(300) - 0.25
        expected = REFERENCE.scatter_add(indices, weights, 40)
        np.testing.assert_array_equal(
            backend.scatter_add(indices, weights, 40), expected
        )

    def test_take_ranges(self, name):
        backend = optional_backend(name)
        starts = np.array([0, 10, 5, 9])
        counts = np.array([3, 0, 2, 1])
        np.testing.assert_array_equal(
            backend.take_ranges(starts, counts),
            REFERENCE.take_ranges(starts, counts),
        )

    def test_bincount(self, name):
        backend = optional_backend(name)
        generator = np.random.default_rng(1)
        keys = generator.integers(0, 64, size=500)
        weights = generator.random(500)
        np.testing.assert_array_equal(
            backend.bincount(keys, weights, 64),
            REFERENCE.bincount(keys, weights, 64),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_scatter_select_sums(self, name, seed):
        backend = optional_backend(name)
        matrix, csc, labels, k = self._fixture(seed)
        select = np.flatnonzero(labels == seed % k)
        for compressed in (matrix, csc):
            expected = REFERENCE.scatter_select_sums(
                compressed.indptr, compressed.indices, compressed.data,
                select, matrix.shape[0],
            )
            np.testing.assert_array_equal(
                backend.scatter_select_sums(
                    compressed.indptr, compressed.indices, compressed.data,
                    select, matrix.shape[0],
                ),
                expected,
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_scatter_select_color_sums(self, name, seed):
        backend = optional_backend(name)
        matrix, _, labels, k = self._fixture(seed)
        select = np.flatnonzero(labels == (seed + 1) % k)
        expected = REFERENCE.scatter_select_color_sums(
            matrix.indptr, matrix.indices, matrix.data, select, labels, k
        )
        np.testing.assert_array_equal(
            backend.scatter_select_color_sums(
                matrix.indptr, matrix.indices, matrix.data, select, labels, k
            ),
            expected,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_color_degree_slice(self, name, seed):
        backend = optional_backend(name)
        matrix, _, labels, k = self._fixture(seed, negative=seed == 2)
        rows = np.flatnonzero(labels == seed % k)
        expected = REFERENCE.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data, rows, labels, k
        )
        np.testing.assert_array_equal(
            backend.color_degree_slice(
                matrix.indptr, matrix.indices, matrix.data, rows, labels, k
            ),
            expected,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_color_degree_slice_pair(self, name, seed):
        backend = optional_backend(name)
        matrix, csc, labels, k = self._fixture(seed)
        csr_arrays = (matrix.indptr, matrix.indices, matrix.data)
        csc_arrays = (csc.indptr, csc.indices, csc.data)
        rows = np.flatnonzero(labels == seed % k)
        expected = REFERENCE.color_degree_slice_pair(
            csr_arrays, csc_arrays, rows, labels, k
        )
        np.testing.assert_array_equal(
            backend.color_degree_slice_pair(
                csr_arrays, csc_arrays, rows, labels, k
            ),
            expected,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_select_degrees_toward(self, name, seed):
        backend = optional_backend(name)
        matrix, _, labels, k = self._fixture(seed)
        rows = np.flatnonzero(labels == seed % k)
        generator = np.random.default_rng(seed)
        targets = generator.integers(0, k, size=rows.size)
        for target in (int((seed + 2) % k), targets):
            expected = REFERENCE.select_degrees_toward(
                matrix.indptr, matrix.indices, matrix.data,
                rows, labels, target,
            )
            np.testing.assert_array_equal(
                backend.select_degrees_toward(
                    matrix.indptr, matrix.indices, matrix.data,
                    rows, labels, target,
                ),
                expected,
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_grouped_minmax(self, name, seed):
        backend = optional_backend(name)
        generator = np.random.default_rng(seed)
        n, k, r = 80, 6, 4
        labels = generator.integers(0, k, size=n)
        labels[:k] = np.arange(k)
        values = generator.random((n, r)) - 0.5
        expected = REFERENCE.grouped_minmax_by_labels(values, labels, k)
        got = backend.grouped_minmax_by_labels(values, labels, k)
        np.testing.assert_array_equal(got[0], expected[0])
        np.testing.assert_array_equal(got[1], expected[1])
        members = [np.flatnonzero(labels == c) for c in range(k)]
        order = np.concatenate(members)
        starts = np.cumsum([0] + [m.size for m in members[:-1]])
        feature_major = values.T.copy()
        expected = REFERENCE.grouped_minmax_ordered(
            feature_major, order, starts
        )
        got = backend.grouped_minmax_ordered(feature_major, order, starts)
        np.testing.assert_array_equal(got[0], expected[0])
        np.testing.assert_array_equal(got[1], expected[1])

    def test_empty_inputs(self, name):
        backend = optional_backend(name)
        empty = np.empty(0, dtype=np.int64)
        assert backend.scatter_add(empty, empty.astype(float), 5).shape == (5,)
        assert backend.take_ranges(empty, empty).size == 0
        matrix = _random_csr(10, 0.2, 0)
        assert backend.color_degree_slice(
            matrix.indptr, matrix.indices, matrix.data,
            empty, np.zeros(10, dtype=np.int64), 3,
        ).shape == (3, 0)


# ----------------------------------------------------------------------
# coloring-level parity: identical splits and q-error trajectories
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", backend_params())
class TestColoringParity:
    CASES = {
        "directed": dict(),
        "weighted": dict(alpha=1.0, beta=1.0, split_mean="geometric"),
        "frozen": dict(frozen=(0,)),
        "relative": dict(error_mode="relative"),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("strategy", ["greedy", "batched"])
    def test_trajectory_bit_identical(self, name, case, strategy):
        backend = optional_backend(name)
        options = dict(self.CASES[case])
        matrix = _random_csr(150, 0.08, 11)
        if case == "frozen":
            generator = np.random.default_rng(5)
            options["initial"] = Coloring(
                generator.integers(0, 2, size=150)
            )
        engines = [
            Rothko(
                matrix, strategy=strategy, batch_size=4,
                backend=spec, **options,
            )
            for spec in ("numpy", backend)
        ]
        runs = [
            list(engine.steps(max_colors=16)) for engine in engines
        ]
        assert len(runs[0]) == len(runs[1])
        for reference_step, step in zip(*runs):
            assert reference_step.witness == step.witness
            assert reference_step.q_err_before == step.q_err_before
        np.testing.assert_array_equal(
            engines[0].labels, engines[1].labels
        )
        assert engines[0].max_q_err() == engines[1].max_q_err()

    def test_default_backend_drives_kernel_wrappers(self, name):
        optional_backend(name)
        set_default_backend(name)
        matrix = _random_csr(100, 0.1, 3)
        accelerated = q_color(matrix, n_colors=12)
        set_default_backend("numpy")
        reference = q_color(matrix, n_colors=12)
        np.testing.assert_array_equal(
            accelerated.coloring.labels, reference.coloring.labels
        )
        assert accelerated.max_q_err == reference.max_q_err


# ----------------------------------------------------------------------
# parallel batched rounds: bit-for-bit equal to sequential
# ----------------------------------------------------------------------
class TestParallelDeterminism:
    @pytest.mark.parametrize("mode", ["threads", "processes"])
    def test_parallel_round_matches_serial(self, mode):
        matrix = _random_csr(400, 0.03, 17)
        serial = Rothko(matrix, strategy="batched", batch_size=6)
        parallel = Rothko(
            matrix, strategy="batched", batch_size=6,
            workers=2, parallel_mode=mode,
        )
        serial_result = serial.run(max_colors=32)
        parallel_result = parallel.run(max_colors=32)
        np.testing.assert_array_equal(
            serial_result.coloring.labels, parallel_result.coloring.labels
        )
        assert serial_result.max_q_err == parallel_result.max_q_err
        assert serial_result.n_iterations == parallel_result.n_iterations

    def test_parallel_round_relative_mode(self):
        matrix = _random_csr(300, 0.04, 23)
        serial = Rothko(matrix, strategy="batched", error_mode="relative")
        parallel = Rothko(
            matrix, strategy="batched", error_mode="relative",
            workers=2, parallel_mode="processes",
        )
        np.testing.assert_array_equal(
            serial.run(max_colors=24).coloring.labels,
            parallel.run(max_colors=24).coloring.labels,
        )

    def test_invariants_hold_after_parallel_rounds(self):
        matrix = _random_csr(200, 0.05, 29)
        engine = Rothko(
            matrix, strategy="batched", batch_size=4,
            workers=2, parallel_mode="threads",
        )
        for _ in engine.steps(max_colors=20):
            pass
        engine.verify_state()

    def test_executor_released_after_run(self):
        matrix = _random_csr(120, 0.05, 31)
        engine = Rothko(
            matrix, strategy="batched", workers=2,
            parallel_mode="processes",
        )
        engine.run(max_colors=10)
        assert engine._executor is None  # release() ran in the finally
        # a follow-up run recreates the pool transparently
        engine.run(max_colors=14)
        assert engine.k == 14

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        matrix = _random_csr(150, 0.05, 37)
        engine = Rothko(matrix, strategy="batched")
        assert engine._workers == 2
        reference = Rothko(matrix, strategy="batched", workers=1)
        np.testing.assert_array_equal(
            engine.run(max_colors=12).coloring.labels,
            reference.run(max_colors=12).coloring.labels,
        )

    def test_round_executor_modes(self):
        serial = RoundExecutor("threads", 1)
        assert serial.mode == "serial"  # one worker degrades to serial
        with pytest.raises(ValueError):
            RoundExecutor("fibers", 2)
        executor = RoundExecutor.resolve(2, None, parallel_kernels=True)
        assert executor.mode == "threads"
        executor.release()
        executor = RoundExecutor.resolve(2, None, parallel_kernels=False)
        assert executor.mode == "processes"
        executor.release()

    def test_executor_map_order(self):
        executor = RoundExecutor("threads", 3)
        try:
            items = list(range(20))
            assert executor.map(lambda x: x * x, items) == [
                x * x for x in items
            ]
        finally:
            executor.release()


# ----------------------------------------------------------------------
# cache-key isolation
# ----------------------------------------------------------------------
class TestSpecBackendKey:
    def test_backends_do_not_collide_in_cache(self):
        from repro.pipeline.task import ColoringSpec

        matrix = _random_csr(40, 0.2, 2)
        numpy_spec = ColoringSpec(matrix, backend="numpy")
        assert numpy_spec.cache_key()[-1] == ("numpy", "cpu")
        for name in available_backends():
            if name == "numpy":
                continue
            other = ColoringSpec(matrix, backend=name)
            assert other.cache_key() != numpy_spec.cache_key()

    def test_auto_and_resolved_name_alias(self):
        from repro.pipeline.task import ColoringSpec

        matrix = _random_csr(40, 0.2, 2)
        auto = ColoringSpec(matrix, backend="auto")
        explicit = ColoringSpec(matrix, backend=resolve_backend("auto").name)
        # auto resolves before keying, so equal resolutions share a key
        # (one cached coloring) while different backends never alias.
        assert auto.cache_key() == explicit.cache_key()

    def test_build_engine_uses_spec_backend(self):
        from repro.pipeline.task import ColoringSpec

        matrix = _random_csr(40, 0.2, 2)
        engine = ColoringSpec(matrix, backend="numpy").build_engine()
        assert engine._backend.name == "numpy"
