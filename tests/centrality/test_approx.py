"""Tests for the color-pivot betweenness approximation."""

import numpy as np
import pytest

from repro.centrality.approx import approx_betweenness, pivot_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.core.partition import Coloring
from repro.graphs.generators import barabasi_albert, erdos_renyi
from repro.utils.stats import spearman_rho


class TestPivotBetweenness:
    def test_discrete_coloring_is_exact(self):
        """One pivot per singleton color = plain Brandes."""
        graph = erdos_renyi(20, 0.3, seed=0)
        exact = betweenness_centrality(graph)
        scores, reps = pivot_betweenness(
            graph, Coloring.discrete(20), seed=1
        )
        assert np.allclose(scores, exact)
        assert sorted(reps.tolist()) == list(range(20))

    def test_stable_like_coloring_weights_by_size(self):
        """With k colors, exactly k dependency passes are performed and
        scaled by class size — scores stay in the exact scale."""
        graph = barabasi_albert(60, 2, seed=1)
        coloring = Coloring(np.arange(60) % 5)
        scores, reps = pivot_betweenness(graph, coloring, seed=2)
        assert len(reps) == 5
        assert scores.shape == (60,)
        assert np.all(scores >= 0)

    def test_multiple_pivots(self):
        graph = barabasi_albert(40, 2, seed=2)
        coloring = Coloring(np.arange(40) % 4)
        _, reps = pivot_betweenness(
            graph, coloring, seed=3, pivots_per_color=3
        )
        assert len(reps) == 12


class TestApproxBetweenness:
    def test_correlation_improves_with_colors(self):
        graph = barabasi_albert(300, 3, seed=4)
        exact = betweenness_centrality(graph)
        rho_small = spearman_rho(
            exact, approx_betweenness(graph, n_colors=5, seed=0).scores
        )
        rho_large = spearman_rho(
            exact, approx_betweenness(graph, n_colors=80, seed=0).scores
        )
        assert rho_large > rho_small
        assert rho_large > 0.9

    def test_result_fields(self):
        graph = barabasi_albert(100, 2, seed=5)
        result = approx_betweenness(graph, n_colors=10, seed=0)
        assert result.n_colors <= 10
        assert result.total_seconds > 0
        assert result.scores.shape == (100,)

    def test_needs_stopping_rule(self):
        graph = barabasi_albert(30, 2, seed=6)
        with pytest.raises(ValueError):
            approx_betweenness(graph)

    def test_deterministic_given_seed(self):
        graph = barabasi_albert(80, 2, seed=7)
        a = approx_betweenness(graph, n_colors=8, seed=42).scores
        b = approx_betweenness(graph, n_colors=8, seed=42).scores
        assert np.allclose(a, b)
