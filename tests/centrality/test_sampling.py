"""Tests for the Riondato–Kornaropoulos sampling baseline."""

import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.centrality.sampling import (
    riondato_kornaropoulos_betweenness,
    rk_sample_size,
    vertex_diameter_estimate,
)
from repro.graphs.generators import barabasi_albert, path_graph
from repro.utils.stats import spearman_rho


class TestSampleSize:
    def test_formula_monotone_in_eps(self):
        assert rk_sample_size(10, 0.01) > rk_sample_size(10, 0.1)

    def test_formula_monotone_in_diameter(self):
        assert rk_sample_size(1000, 0.05) >= rk_sample_size(4, 0.05)

    def test_bad_eps(self):
        with pytest.raises(ValueError):
            rk_sample_size(10, 0.0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            rk_sample_size(10, 0.1, delta=1.5)


class TestVertexDiameter:
    def test_path_graph(self):
        # The 6-node path has vertex diameter 6; BFS from any node sees
        # at least half of it.
        estimate = vertex_diameter_estimate(path_graph(6), samples=6, seed=0)
        assert 4 <= estimate <= 6

    def test_at_least_one(self):
        graph = barabasi_albert(20, 2, seed=0)
        assert vertex_diameter_estimate(graph, seed=1) >= 2


class TestSampledScores:
    def test_converges_in_rank(self):
        graph = barabasi_albert(150, 3, seed=1)
        exact = betweenness_centrality(graph)
        scores = riondato_kornaropoulos_betweenness(
            graph, n_samples=4000, seed=2
        )
        assert spearman_rho(exact, scores) > 0.7

    def test_scale_comparable_to_exact(self):
        """Sampled estimates approximate the unnormalized scores."""
        graph = barabasi_albert(100, 3, seed=3)
        exact = betweenness_centrality(graph)
        scores = riondato_kornaropoulos_betweenness(
            graph, n_samples=6000, seed=4
        )
        top = np.argsort(-exact)[:5]
        ratio = scores[top].sum() / exact[top].sum()
        assert 0.5 < ratio < 2.0

    def test_uses_vc_bound_when_unspecified(self):
        graph = barabasi_albert(30, 2, seed=5)
        scores = riondato_kornaropoulos_betweenness(graph, eps=0.2, seed=6)
        assert scores.shape == (30,)

    def test_deterministic(self):
        graph = barabasi_albert(50, 2, seed=7)
        a = riondato_kornaropoulos_betweenness(graph, n_samples=500, seed=8)
        b = riondato_kornaropoulos_betweenness(graph, n_samples=500, seed=8)
        assert np.allclose(a, b)
