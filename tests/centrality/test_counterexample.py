"""The Sec. 4.3 story end-to-end: 1-WL does not preserve centrality
(Fig. 5), 2-WL does (Theorem 11)."""

import numpy as np

from repro.centrality.brandes import betweenness_centrality
from repro.centrality.metrics import centrality_accuracy
from repro.core.refinement import stable_coloring
from repro.core.wl import wl2_node_coloring
from repro.graphs.generators import centrality_counterexample


class TestFig5Story:
    def test_stable_color_collapses_u_v(self):
        graph, u, v = centrality_counterexample()
        coloring = stable_coloring(graph.to_csr())
        assert coloring.n_colors == 1
        assert coloring.labels[u] == coloring.labels[v]

    def test_centralities_differ(self):
        graph, u, v = centrality_counterexample()
        scores = betweenness_centrality(graph)
        assert scores[u] > 0.0
        assert scores[v] == 0.0

    def test_2wl_separates_them(self):
        graph, u, v = centrality_counterexample()
        coloring = wl2_node_coloring(graph)
        assert coloring.labels[u] != coloring.labels[v]

    def test_2wl_classes_have_equal_centrality(self):
        graph, _, _ = centrality_counterexample()
        coloring = wl2_node_coloring(graph)
        scores = betweenness_centrality(graph)
        for members in coloring.classes():
            assert np.ptp(scores[members]) == 0.0


class TestMetrics:
    def test_accuracy_bundle(self):
        exact = np.array([3.0, 2.0, 1.0, 0.5] * 5)
        noisy = exact + 0.01
        accuracy = centrality_accuracy(exact, noisy)
        assert accuracy.spearman == 1.0
        assert accuracy.top_10_overlap == 1.0
