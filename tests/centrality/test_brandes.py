"""Tests for Brandes betweenness against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.centrality.brandes import (
    betweenness_centrality,
    single_source_dependencies,
    _adjacency_lists,
)
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    karate_club,
    path_graph,
    star_graph,
)


def nx_scores(graph: WeightedDiGraph, normalized=False) -> np.ndarray:
    scores = nx.betweenness_centrality(
        graph.to_networkx(), normalized=normalized
    )
    return np.array(
        [scores[graph.label_of(i)] for i in range(graph.n_nodes)]
    )


class TestAgainstNetworkx:
    def test_karate(self):
        graph = karate_club()
        assert np.allclose(betweenness_centrality(graph), nx_scores(graph))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_undirected(self, seed):
        graph = erdos_renyi(25, 0.2, seed=seed)
        assert np.allclose(betweenness_centrality(graph), nx_scores(graph))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_directed(self, seed):
        generator = np.random.default_rng(seed)
        nx_graph = nx.gnp_random_graph(
            20, 0.2, seed=int(generator.integers(10**6)), directed=True
        )
        graph = WeightedDiGraph.from_networkx(nx_graph)
        assert np.allclose(betweenness_centrality(graph), nx_scores(graph))

    def test_normalized(self):
        graph = karate_club()
        assert np.allclose(
            betweenness_centrality(graph, normalized=True),
            nx_scores(graph, normalized=True),
        )


class TestKnownValues:
    def test_path_middle_node(self):
        # Path 0-1-2: node 1 lies on the single 0-2 shortest path.
        scores = betweenness_centrality(path_graph(3))
        assert scores.tolist() == [0.0, 1.0, 0.0]

    def test_star_hub(self):
        # Hub lies on every leaf-to-leaf path: C(5, 2) = 10 pairs.
        scores = betweenness_centrality(star_graph(5))
        assert scores[0] == 10.0
        assert np.all(scores[1:] == 0.0)

    def test_disconnected_components(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        scores = betweenness_centrality(graph)
        assert scores[1] == 1.0
        assert scores[3] == scores[4] == 0.0


class TestSourceRestriction:
    def test_all_sources_equals_default(self):
        graph = erdos_renyi(15, 0.3, seed=1)
        full = betweenness_centrality(graph)
        explicit = betweenness_centrality(graph, sources=range(15))
        assert np.allclose(full, explicit)

    def test_weighted_sources(self):
        """Doubling every source weight doubles the scores."""
        graph = erdos_renyi(12, 0.3, seed=2)
        single = betweenness_centrality(graph)
        doubled = betweenness_centrality(
            graph, sources=range(12), source_weights=[2.0] * 12
        )
        assert np.allclose(doubled, 2.0 * single)

    def test_weight_length_mismatch(self):
        graph = path_graph(4)
        with pytest.raises(ValueError):
            betweenness_centrality(
                graph, sources=[0, 1], source_weights=[1.0]
            )


class TestDependencies:
    def test_sum_over_sources_is_centrality(self):
        graph = barabasi_albert(30, 2, seed=3)
        adjacency = _adjacency_lists(graph)
        total = np.zeros(30)
        for source in range(30):
            total += single_source_dependencies(adjacency, source, 30)
        assert np.allclose(total / 2.0, betweenness_centrality(graph))


class TestWeightedBetweenness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_weighted(self, seed):
        generator = np.random.default_rng(seed)
        nx_graph = nx.gnp_random_graph(16, 0.3, seed=seed)
        graph = WeightedDiGraph(directed=False)
        for i in range(16):
            graph.add_node(i)
        for u, v in nx_graph.edges():
            weight = float(generator.integers(1, 7))
            graph.add_edge(u, v, weight)
            nx_graph[u][v]["weight"] = weight
        ours = betweenness_centrality(graph, weighted=True)
        theirs = nx.betweenness_centrality(
            nx_graph, weight="weight", normalized=False
        )
        theirs_vec = np.array([theirs[i] for i in range(16)])
        assert np.allclose(ours, theirs_vec)

    def test_unit_weights_match_bfs_variant(self):
        graph = erdos_renyi(20, 0.25, seed=9)
        assert np.allclose(
            betweenness_centrality(graph, weighted=True),
            betweenness_centrality(graph, weighted=False),
        )

    def test_nonpositive_weight_rejected(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            betweenness_centrality(graph, weighted=True)

    def test_weights_change_routing(self):
        # Square with one heavy edge: paths avoid it, shifting centrality.
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 3, 1.0)
        graph.add_edge(3, 0, 10.0)
        scores = betweenness_centrality(graph, weighted=True)
        # All 0-3 traffic now routes through 1 and 2.
        assert scores[1] > 0 and scores[2] > 0
        unweighted = betweenness_centrality(graph, weighted=False)
        assert not np.allclose(scores, unweighted)
