"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import karate_club


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def karate() -> WeightedDiGraph:
    return karate_club()


@pytest.fixture
def small_directed() -> WeightedDiGraph:
    """A fixed 6-node weighted digraph used across unit tests."""
    graph = WeightedDiGraph(directed=True)
    edges = [
        (0, 1, 2.0),
        (0, 2, 1.0),
        (1, 2, 3.0),
        (1, 3, 1.0),
        (2, 3, 2.0),
        (3, 4, 4.0),
        (4, 5, 1.0),
        (2, 5, 0.5),
    ]
    graph.add_weighted_edges(edges)
    return graph


def random_adjacency(
    n: int, density: float, seed: int, weighted: bool = True
) -> sp.csr_matrix:
    """Random square sparse adjacency with integer-ish weights."""
    generator = np.random.default_rng(seed)
    mask = generator.random((n, n)) < density
    np.fill_diagonal(mask, False)
    weights = (
        generator.integers(1, 5, size=(n, n)).astype(float)
        if weighted
        else np.ones((n, n))
    )
    return sp.csr_matrix(np.where(mask, weights, 0.0))
