"""Stable-coloring exactness through the unified pipeline.

At q = 0 the coloring is stable, and each application's reduction is
exact: the lifted LP optimum matches the full LP (Theorem 2 /
Grohe et al.), the reduced max-flow value matches the true max-flow
(Corollary 9(2)), and pivot betweenness matches full Brandes (a stable
coloring of these instances is discrete, so every node is its own
pivot).  All three run through :func:`repro.pipeline.run_task`.
"""

import numpy as np
import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.digraph import WeightedDiGraph
from repro.lp.generators import planted_block_lp
from repro.lp.solve import solve_lp
from repro.pipeline import (
    CentralityTask,
    LPTask,
    MaxFlowTask,
    run_task,
)
from tests.conftest import random_adjacency


def random_network(seed: int, n: int = 14) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.35, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class TestMaxFlowExactness:
    @pytest.mark.parametrize("seed", range(4))
    def test_stable_coloring_reduced_flow_is_exact(self, seed):
        network = random_network(seed)
        exact = max_flow(network).value
        result = run_task(MaxFlowTask(network), q=0.0)
        assert result.max_q_err == pytest.approx(0.0, abs=1e-9)
        assert result.value == pytest.approx(exact, rel=1e-9)

    def test_lower_bound_lift_is_valid_flow(self):
        from repro.flow.network import validate_flow

        network = random_network(2, n=10)
        result = run_task(
            MaxFlowTask(network, bound="lower", lift_solution=True), q=0.0
        )
        # The lift of the uniform-capacity reduced flow is a valid flow
        # on the original network with the reduced value (Theorem 6).
        validate_flow(network, result.lifted)
        assert result.lifted.value == pytest.approx(result.value)


class TestLPExactness:
    @pytest.mark.parametrize("mode", ["sqrt", "grohe"])
    def test_lifted_optimum_matches_full_lp(self, mode):
        lp = planted_block_lp(
            36, 27, row_groups=3, col_groups=3, noise=0.0, seed=5
        )
        exact = solve_lp(lp).objective
        result = run_task(LPTask(lp, mode=mode), q=0.0)
        assert result.max_q_err == pytest.approx(0.0, abs=1e-9)
        assert result.value == pytest.approx(exact, rel=1e-6)
        lifted = result.lifted
        assert lp.is_feasible(lifted, tol=1e-6)
        assert lp.objective(lifted) == pytest.approx(exact, rel=1e-6)


class TestCentralityExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_stable_coloring_pivot_scores_are_exact(self, seed):
        adjacency = random_adjacency(16, 0.3, seed)
        graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
        result = run_task(CentralityTask(graph, seed=seed), q=0.0)
        assert result.max_q_err == pytest.approx(0.0, abs=1e-9)
        # Random weights make the stable coloring discrete, so every
        # node is its own pivot and the estimate is exact Brandes.
        assert result.n_colors == graph.n_nodes
        exact = betweenness_centrality(graph)
        np.testing.assert_allclose(result.lifted, exact, rtol=1e-9)
