"""The progressive multi-k runner: equivalence, W invariant, caching.

The acceptance contract of the pipeline subsystem:

* a progressive sweep over a schedule of color budgets produces results
  *identical* to re-coloring from scratch at every budget, while
  constructing exactly one Rothko engine;
* the incrementally maintained block-weight matrix ``W = S^T A S``
  equals a from-scratch ``block_weights`` after every checkpoint;
* one coloring run is shared across tasks, weight modes, and
  checkpoints through the keyed cache.
"""

import numpy as np
import pytest

from repro.core.partition import Coloring
from repro.core.reduced import block_weights
from repro.centrality.approx import approx_betweenness
from repro.flow.approx import approx_max_flow
from repro.flow.network import FlowNetwork
from repro.graphs.digraph import WeightedDiGraph
from repro.lp.generators import planted_block_lp
from repro.lp.reduction import approx_lp_opt
from repro.pipeline import (
    BlockWeightTracker,
    CentralityTask,
    ColoringCache,
    ColoringSpec,
    LPTask,
    MaxFlowTask,
    progressive_sweep,
    run_task,
)
from tests.conftest import random_adjacency

SCHEDULE = (4, 5, 6, 8, 10, 12, 14, 16)  # >= 8 checkpoints (Fig. 7 style)


def flow_network(seed: int = 3, n: int = 40) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.2, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class TestProgressiveEqualsPerColor:
    def test_maxflow_sweep_matches_percolor_loop(self):
        network = flow_network()
        cache = ColoringCache()
        results = progressive_sweep(
            MaxFlowTask(network), SCHEDULE, cache=cache
        )
        assert len(cache) == 1  # at most one full Rothko run
        for budget, result in zip(SCHEDULE, results):
            fresh = approx_max_flow(network, n_colors=budget)
            assert result.coloring == fresh.coloring
            assert result.value == pytest.approx(fresh.value, rel=1e-9)

    def test_lp_sweep_matches_percolor_loop(self):
        lp = planted_block_lp(
            40, 30, row_groups=5, col_groups=4, noise=0.2, seed=7
        )
        cache = ColoringCache()
        schedule = (6, 8, 10, 12, 14, 16, 20, 24)
        results = progressive_sweep(LPTask(lp), schedule, cache=cache)
        assert len(cache) == 1
        for budget, result in zip(schedule, results):
            fresh = approx_lp_opt(lp, n_colors=budget)
            assert result.value == pytest.approx(fresh.value, rel=1e-7)
            assert result.max_q_err == pytest.approx(
                fresh.reduction.max_q_err, rel=1e-9, abs=1e-12
            )

    def test_centrality_sweep_matches_percolor_loop(self):
        adjacency = random_adjacency(40, 0.15, 11)
        graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
        cache = ColoringCache()
        results = progressive_sweep(
            CentralityTask(graph, seed=0), SCHEDULE, cache=cache
        )
        assert len(cache) == 1
        for budget, result in zip(SCHEDULE, results):
            fresh = approx_betweenness(graph, n_colors=budget, seed=0)
            assert result.coloring == fresh.coloring
            np.testing.assert_allclose(result.lifted, fresh.scores)

    def test_q_target_on_advanced_run_matches_fresh(self):
        """A q-target served from a run already refined further must
        stop exactly where a fresh q-target run stops."""
        network = flow_network(seed=5)
        cache = ColoringCache()
        progressive_sweep(MaxFlowTask(network), SCHEDULE, cache=cache)
        served = run_task(MaxFlowTask(network), q=4.0, cache=cache)
        fresh = approx_max_flow(network, q=4.0)
        assert len(cache) == 1
        assert served.coloring == fresh.coloring
        assert served.value == pytest.approx(fresh.value, rel=1e-9)

    def test_descending_schedule_served_from_history(self):
        network = flow_network(seed=6)
        cache = ColoringCache()
        ascending = progressive_sweep(
            MaxFlowTask(network), SCHEDULE, cache=cache
        )
        descending = progressive_sweep(
            MaxFlowTask(network), tuple(reversed(SCHEDULE)), cache=cache
        )
        assert len(cache) == 1
        for up, down in zip(ascending, reversed(descending)):
            assert up.coloring == down.coloring
            assert up.value == pytest.approx(down.value, rel=1e-9)


class TestBlockWeightInvariant:
    """Maintained W == block_weights from scratch after every checkpoint."""

    @pytest.mark.parametrize("seed", range(3))
    def test_flow_sweep_weights(self, seed):
        network = flow_network(seed=seed)
        cache = ColoringCache()
        task = MaxFlowTask(network)
        results = progressive_sweep(task, SCHEDULE, cache=cache)
        run = cache.run_for(task.coloring_spec())
        adjacency = network.graph.to_csr()
        for result in results:
            maintained = run.weights(result.n_colors)
            scratch = block_weights(adjacency, result.coloring).toarray()
            np.testing.assert_allclose(
                maintained, scratch, rtol=1e-9, atol=1e-12
            )

    def test_lp_bipartite_sweep_weights(self):
        lp = planted_block_lp(
            30, 24, row_groups=4, col_groups=3, noise=0.3, seed=9
        )
        cache = ColoringCache()
        task = LPTask(lp)
        results = progressive_sweep(
            task, (6, 8, 10, 12, 14, 16), cache=cache
        )
        run = cache.run_for(task.coloring_spec())
        adjacency = lp.bipartite_adjacency()
        for result in results:
            # The LP task colors the bipartite extended matrix; the
            # runner's W must match the scratch product on that graph.
            coloring = Coloring(
                np.concatenate(
                    [
                        result.reduced.row_coloring.labels,
                        result.reduced.col_coloring.labels
                        + result.reduced.row_coloring.n_colors,
                    ]
                )
            )
            maintained = run.weights(coloring.n_colors)
            scratch = block_weights(adjacency, coloring).toarray()
            np.testing.assert_allclose(
                maintained, scratch, rtol=1e-9, atol=1e-12
            )

    def test_tracker_direct_splits(self):
        """Drive a bare tracker alongside an engine split by split."""
        adjacency = random_adjacency(30, 0.25, 17)
        spec = ColoringSpec(adjacency, alpha=1.0, beta=1.0)
        engine = spec.build_engine()
        tracker = BlockWeightTracker(adjacency, engine.labels, engine.k)
        for step in engine.steps(max_colors=12):
            tracker.apply_split(
                step.parent_color,
                step.new_color,
                engine.members(step.parent_color),
                engine.members(step.new_color),
                engine.labels,
            )
            scratch = block_weights(
                adjacency, Coloring(engine.labels)
            ).toarray()
            np.testing.assert_allclose(
                tracker.weights(engine.labels), scratch,
                rtol=1e-9, atol=1e-12,
            )

    def test_tracker_rejects_out_of_order_split(self):
        adjacency = random_adjacency(10, 0.4, 1)
        spec = ColoringSpec(adjacency)
        engine = spec.build_engine()
        tracker = BlockWeightTracker(adjacency, engine.labels, engine.k)
        with pytest.raises(ValueError, match="out of order"):
            tracker.apply_split(
                0, 5, np.array([0]), np.array([1]), engine.labels
            )


class TestColoringCache:
    def test_shared_across_weight_modes(self):
        lp = planted_block_lp(
            24, 18, row_groups=3, col_groups=3, noise=0.2, seed=3
        )
        cache = ColoringCache()
        sqrt_result = run_task(LPTask(lp, mode="sqrt"), n_colors=10,
                               cache=cache)
        grohe_result = run_task(LPTask(lp, mode="grohe"), n_colors=10,
                                cache=cache)
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert sqrt_result.coloring == grohe_result.coloring

    def test_shared_across_flow_bounds(self):
        network = flow_network(seed=8, n=20)
        cache = ColoringCache()
        upper = run_task(MaxFlowTask(network, bound="upper"), n_colors=6,
                         cache=cache)
        lower = run_task(MaxFlowTask(network, bound="lower"), n_colors=6,
                         cache=cache)
        assert len(cache) == 1
        assert upper.coloring == lower.coloring
        assert lower.value <= upper.value + 1e-9

    def test_distinct_specs_do_not_collide(self):
        cache = ColoringCache()
        a = random_adjacency(15, 0.3, 1)
        b = random_adjacency(15, 0.3, 2)
        run_a = cache.run_for(ColoringSpec(a))
        run_b = cache.run_for(ColoringSpec(b))
        assert run_a is not run_b
        assert len(cache) == 2
        # Equal content maps back to the same run.
        assert cache.run_for(ColoringSpec(a.copy())) is run_a


class TestTimings:
    def test_stage_timings_recorded(self):
        network = flow_network(seed=4, n=20)
        result = run_task(MaxFlowTask(network), n_colors=8)
        timings = result.timings
        assert timings.coloring > 0
        assert timings.reduce > 0
        assert timings.solve > 0
        assert result.total_seconds == pytest.approx(timings.total)

    def test_cache_hit_colors_for_free(self):
        network = flow_network(seed=4, n=20)
        cache = ColoringCache()
        first = run_task(MaxFlowTask(network), n_colors=8, cache=cache)
        second = run_task(MaxFlowTask(network), n_colors=8, cache=cache)
        assert second.timings.coloring <= first.timings.coloring
        assert second.coloring == first.coloring
