"""The reduced-solve cache: one solve per (task, checkpoint), served
results identical to cache-off runs.

:class:`ReducedSolveCache` keys reduce/solve/lift outputs on
``(coloring spec, task solve key, resolved checkpoint)``.  The
acceptance contract: a progressive sweep whose budgets resolve to the
same checkpoint (a q-target met early) performs exactly one solve with
the rest served as obs-counted hits; repeated budgets never re-solve;
and every served :class:`TaskResult` is identical, field for field, to
what a cache-off run produces.
"""

import numpy as np
import pytest

from repro.graphs.digraph import WeightedDiGraph
from repro.flow.network import FlowNetwork
from repro.obs import recording
from repro.pipeline import (
    CentralityTask,
    ColoringCache,
    MaxFlowTask,
    ReducedSolveCache,
    progressive_sweep,
    run_task,
)
from tests.conftest import random_adjacency


def random_network(seed: int, n: int = 14) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.35, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class CountingMaxFlowTask(MaxFlowTask):
    """MaxFlowTask that counts its solve-stage invocations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.solve_calls = 0

    def solve(self, reduced):
        self.solve_calls += 1
        return super().solve(reduced)


class UncacheableMaxFlowTask(CountingMaxFlowTask):
    def solve_key(self):
        return None


class TestSweepSolveCounts:
    def test_q_target_met_early_solves_once(self):
        """Three budgets resolving to one checkpoint: 1 solve, 2 hits."""
        task = CountingMaxFlowTask(random_network(0))
        with recording() as rec:
            results = progressive_sweep(task, [4, 6, 8], q=1e6)
        # The huge q-target is met by the initial coloring, so every
        # budget resolves to the same state.
        assert len({r.n_colors for r in results}) == 1
        assert task.solve_calls == 1
        counters = rec.snapshot()["counters"]
        assert counters["pipeline.solve_cache.miss"] == 1
        assert counters["pipeline.solve_cache.hit"] == 2
        for other in results[1:]:
            assert other.value == results[0].value
            assert other.reduced is results[0].reduced
            assert other.solution is results[0].solution

    def test_one_solve_per_distinct_checkpoint(self):
        """Repeated budgets are hits; distinct budgets each solve once."""
        task = CountingMaxFlowTask(random_network(1))
        with recording() as rec:
            results = progressive_sweep(task, [4, 8, 4, 8])
        assert task.solve_calls == 2
        counters = rec.snapshot()["counters"]
        assert counters["pipeline.solve_cache.miss"] == 2
        assert counters["pipeline.solve_cache.hit"] == 2
        assert results[0].value == results[2].value
        assert results[1].value == results[3].value

    def test_uncacheable_task_always_solves(self):
        task = UncacheableMaxFlowTask(random_network(2))
        with recording() as rec:
            progressive_sweep(task, [4, 6], q=1e6)
        assert task.solve_calls == 2
        counters = rec.snapshot()["counters"]
        assert "pipeline.solve_cache.miss" not in counters
        assert "pipeline.solve_cache.hit" not in counters

    def test_run_task_without_solve_cache_never_consults(self):
        task = CountingMaxFlowTask(random_network(3))
        cache = ColoringCache()
        with recording() as rec:
            run_task(task, n_colors=6, cache=cache)
            run_task(task, n_colors=6, cache=cache)
        assert task.solve_calls == 2
        assert "pipeline.solve_cache.miss" not in rec.snapshot()["counters"]


class TestCacheOnOffEquality:
    def _field_equal(self, served, fresh):
        assert served.task == fresh.task
        assert np.array_equal(
            served.coloring.labels, fresh.coloring.labels
        )
        assert served.max_q_err == fresh.max_q_err
        assert served.value == fresh.value

    def test_maxflow_results_identical(self):
        network = random_network(4)
        budgets = [4, 6, 8]
        on = progressive_sweep(
            MaxFlowTask(network), budgets, q=1e6,
            solve_cache=ReducedSolveCache(),
        )
        off = [
            run_task(MaxFlowTask(network), n_colors=budget, q=1e6)
            for budget in budgets
        ]
        for served, fresh in zip(on, off):
            self._field_equal(served, fresh)
            # FlowResult equality covers (value, per-arc flows).
            assert served.solution == fresh.solution
            assert served.lifted == fresh.lifted

    def test_centrality_results_identical(self):
        adjacency = random_adjacency(16, 0.3, 5)
        graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
        budgets = [4, 6]
        on = progressive_sweep(
            CentralityTask(graph, seed=7), budgets, q=1e6,
            solve_cache=ReducedSolveCache(),
        )
        off = [
            run_task(CentralityTask(graph, seed=7), n_colors=b, q=1e6)
            for b in budgets
        ]
        for served, fresh in zip(on, off):
            self._field_equal(served, fresh)
            assert np.array_equal(served.lifted, fresh.lifted)


class TestReducedSolveCacheLRU:
    def test_eviction_order_and_counters(self):
        cache = ReducedSolveCache(max_entries=2)
        cache.put(("a",), (1, 1, 1, 1.0))
        cache.put(("b",), (2, 2, 2, 2.0))
        assert cache.get(("a",)) is not None  # refresh "a"'s recency
        cache.put(("c",), (3, 3, 3, 3.0))  # evicts "b", not "a"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.hits == 3
        assert cache.misses == 1

    def test_counters_mirrored_to_obs(self):
        cache = ReducedSolveCache()
        with recording() as rec:
            cache.get(("missing",))
            cache.put(("k",), (0, 0, 0, 0.0))
            cache.get(("k",))
        counters = rec.snapshot()["counters"]
        assert counters["pipeline.solve_cache.miss"] == 1
        assert counters["pipeline.solve_cache.hit"] == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            ReducedSolveCache(max_entries=0)
