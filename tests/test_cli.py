"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import karate_club
from repro.graphs.io import write_edgelist


@pytest.fixture
def karate_file(tmp_path):
    path = tmp_path / "karate.edges"
    write_edgelist(karate_club(), path)
    return str(path)


class TestColorCommand:
    def test_color_by_budget(self, karate_file, capsys):
        assert main(["color", karate_file, "--colors", "6"]) == 0
        out = capsys.readouterr().out
        assert "colors" in out
        assert "6" in out

    def test_color_by_q(self, karate_file, capsys):
        assert main(["color", karate_file, "--q", "3"]) == 0
        assert "compression" in capsys.readouterr().out

    def test_color_eps_mode(self, karate_file, capsys):
        assert main(["color", karate_file, "--eps", "0.5"]) == 0
        assert "colors" in capsys.readouterr().out

    def test_color_writes_assignment(self, karate_file, tmp_path, capsys):
        out_path = tmp_path / "assignment.txt"
        assert main(
            ["color", karate_file, "--colors", "4", "--out", str(out_path)]
        ) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 34
        colors = {line.split()[1] for line in lines}
        assert len(colors) <= 4

    def test_color_requires_stopping_rule(self, karate_file):
        with pytest.raises(SystemExit):
            main(["color", karate_file])


class TestDatasetsCommand:
    def test_prints_both_tables(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "qap15" in out and "karate" in out


class TestTablesCommand:
    def test_fig2(self, capsys):
        assert main(["tables", "fig2"]) == 0
        assert "robustness" in capsys.readouterr().out

    def test_table5_with_scale(self, capsys):
        assert main(["tables", "table5", "--scale", "0.03"]) == 0
        assert "compressed LP" in capsys.readouterr().out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["tables", "table99"])
