"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import karate_club
from repro.graphs.io import write_edgelist


@pytest.fixture
def karate_file(tmp_path):
    path = tmp_path / "karate.edges"
    write_edgelist(karate_club(), path)
    return str(path)


@pytest.fixture(autouse=True)
def _reset_backend_default():
    # `--backend` installs a process default; undo it between tests
    yield
    from repro.core.backends import set_default_backend

    set_default_backend(None)


class TestColorCommand:
    def test_color_by_budget(self, karate_file, capsys):
        assert main(["color", karate_file, "--colors", "6"]) == 0
        out = capsys.readouterr().out
        assert "colors" in out
        assert "6" in out

    def test_color_by_q(self, karate_file, capsys):
        assert main(["color", karate_file, "--q", "3"]) == 0
        assert "compression" in capsys.readouterr().out

    def test_color_eps_mode(self, karate_file, capsys):
        assert main(["color", karate_file, "--eps", "0.5"]) == 0
        assert "colors" in capsys.readouterr().out

    def test_color_writes_assignment(self, karate_file, tmp_path, capsys):
        out_path = tmp_path / "assignment.txt"
        assert main(
            ["color", karate_file, "--colors", "4", "--out", str(out_path)]
        ) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 34
        colors = {line.split()[1] for line in lines}
        assert len(colors) <= 4

    def test_color_requires_stopping_rule(self, karate_file):
        with pytest.raises(SystemExit):
            main(["color", karate_file])

    def test_color_explicit_backend(self, karate_file, capsys):
        assert main(
            ["color", karate_file, "--colors", "6", "--backend", "numpy"]
        ) == 0
        assert "colors" in capsys.readouterr().out

    def test_color_unknown_backend_rejected(self, karate_file):
        with pytest.raises(SystemExit, match="fortran"):
            main(["color", karate_file, "--colors", "4",
                  "--backend", "fortran"])

    def test_color_backend_matches_default(self, karate_file, tmp_path):
        default_out = tmp_path / "default.txt"
        numpy_out = tmp_path / "numpy.txt"
        main(["color", karate_file, "--colors", "6",
              "--out", str(default_out)])
        main(["color", karate_file, "--colors", "6", "--backend", "numpy",
              "--out", str(numpy_out)])
        # backends are bit-identical, so the assignments must agree
        assert default_out.read_text() == numpy_out.read_text()


class TestSolveCommand:
    def test_maxflow_schedule(self, capsys):
        assert main(
            ["solve", "--task", "maxflow", "--dataset", "tsukuba0",
             "--scale", "0.002", "--colors", "4,8,12"]
        ) == 0
        out = capsys.readouterr().out
        assert "maxflow pipeline" in out
        assert "3 checkpoint(s)" in out
        assert "coloring_s" in out

    def test_lp_single_budget(self, capsys):
        assert main(
            ["solve", "--task", "lp", "--dataset", "qap15",
             "--scale", "0.03", "--colors", "10"]
        ) == 0
        assert "1 checkpoint(s)" in capsys.readouterr().out

    def test_centrality_q_target(self, capsys):
        assert main(
            ["solve", "--task", "centrality", "--dataset", "deezer",
             "--scale", "0.004", "--q", "4"]
        ) == 0
        assert "centrality pipeline" in capsys.readouterr().out

    def test_colors_and_q_compose(self, capsys):
        """--q caps every --colors checkpoint: once the q target is met
        the remaining budgets all resolve to the same coloring."""
        assert main(
            ["solve", "--task", "maxflow", "--dataset", "tsukuba0",
             "--scale", "0.002", "--colors", "4,40", "--q", "1000"]
        ) == 0
        out = capsys.readouterr().out
        rows = [line.split() for line in out.splitlines()
                if line and line[0].isdigit()]
        assert len(rows) == 2
        # A huge q target is met by the initial partition: both budgets
        # stop there instead of refining to 40 colors.
        assert rows[0][0] == rows[1][0]

    def test_engines_agree_on_small_instance(self, capsys):
        """--engine arcstore and --engine python print identical value
        columns for the same maxflow schedule."""
        def value_rows(engine):
            assert main(
                ["solve", "--task", "maxflow", "--dataset", "tsukuba0",
                 "--scale", "0.002", "--colors", "4,8", "--engine", engine]
            ) == 0
            out = capsys.readouterr().out
            rows = [line.split() for line in out.splitlines()
                    if line and line[0].isdigit()]
            # columns: colors, max_q, value, ...
            return [(row[0], row[2]) for row in rows]

        assert value_rows("arcstore") == value_rows("python")

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--task", "maxflow", "--dataset", "tsukuba0",
                  "--colors", "4", "--engine", "magic"])

    def test_requires_stopping_rule(self):
        with pytest.raises(SystemExit):
            main(["solve", "--task", "lp", "--dataset", "qap15"])

    def test_bad_colors_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--task", "lp", "--dataset", "qap15",
                  "--colors", "ten"])

    def test_wrong_dataset_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--task", "lp", "--dataset", "karate",
                  "--colors", "8"])

    def test_workers_flag_accepted(self, capsys):
        assert main(
            ["solve", "--task", "centrality", "--dataset", "deezer",
             "--scale", "0.004", "--colors", "6", "--workers", "2"]
        ) == 0
        assert "centrality pipeline" in capsys.readouterr().out


class TestSolveMmap:
    @pytest.fixture
    def store(self, tmp_path):
        path = tmp_path / "store"
        assert main(
            ["ingest", str(path), "--synthetic", "300,5", "--seed", "2"]
        ) == 0
        return str(path)

    def test_maxflow_from_edge_store(self, store, capsys):
        capsys.readouterr()
        assert main(
            ["solve", "--task", "maxflow", "--dataset", store, "--mmap",
             "--colors", "8,16"]
        ) == 0
        out = capsys.readouterr().out
        assert "edge store" in out
        assert "2 checkpoint(s)" in out

    def test_maxflow_explicit_source_sink(self, store, capsys):
        capsys.readouterr()
        assert main(
            ["solve", "--task", "maxflow", "--dataset", store, "--mmap",
             "--source", "3", "--sink", "250", "--colors", "8"]
        ) == 0
        assert "1 checkpoint(s)" in capsys.readouterr().out

    def test_centrality_from_edge_store(self, store, capsys):
        capsys.readouterr()
        assert main(
            ["solve", "--task", "centrality", "--dataset", store, "--mmap",
             "--colors", "12", "--workers", "2"]
        ) == 0
        assert "centrality pipeline on edge store" in \
            capsys.readouterr().out

    def test_lp_rejected(self, store):
        with pytest.raises(SystemExit, match="maxflow/centrality"):
            main(["solve", "--task", "lp", "--dataset", store, "--mmap",
                  "--colors", "8"])

    def test_bad_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="edge store"):
            main(["solve", "--task", "maxflow",
                  "--dataset", str(tmp_path / "nope"), "--mmap",
                  "--colors", "8"])

    def test_bad_sink_rejected(self, store):
        with pytest.raises(SystemExit, match="sink"):
            main(["solve", "--task", "maxflow", "--dataset", store,
                  "--mmap", "--sink", "9999", "--colors", "8"])


class TestDatasetsCommand:
    def test_prints_both_tables(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "qap15" in out and "karate" in out


class TestTablesCommand:
    def test_fig2(self, capsys):
        assert main(["tables", "fig2"]) == 0
        assert "robustness" in capsys.readouterr().out

    def test_table5_with_scale(self, capsys):
        assert main(["tables", "table5", "--scale", "0.03"]) == 0
        assert "compressed LP" in capsys.readouterr().out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["tables", "table99"])


class TestProfileCommand:
    def test_profile_wraps_solve(self, capsys):
        assert main(
            ["profile", "solve", "--task", "maxflow", "--dataset",
             "tsukuba0", "--scale", "0.002", "--colors", "8"]
        ) == 0
        out = capsys.readouterr().out
        # Both the wrapped command's output and the span summary print.
        assert "maxflow pipeline" in out
        assert "profile: repro solve" in out
        assert "cli.solve" in out
        assert "rothko.splits" in out
        assert "covered by direct child spans" in out

    def test_profile_wraps_color(self, karate_file, capsys):
        assert main(["profile", "color", karate_file, "--colors", "6"]) == 0
        out = capsys.readouterr().out
        assert "cli.color" in out

    def test_profile_trace_out_emits_valid_jsonl(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["profile", "solve", "--task", "maxflow", "--dataset",
             "tsukuba0", "--scale", "0.002", "--colors", "8",
             "--trace-out", str(trace_path)]
        ) == 0
        assert "trace written to" in capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert rows[0]["type"] == "meta"
        roots = [
            row for row in rows
            if row["type"] == "span" and row["parent_id"] is None
        ]
        assert [row["name"] for row in roots] == ["cli.solve"]
        assert any(
            row["type"] == "metric" and row["name"] == "rothko.splits"
            for row in rows
        )

    def test_profile_requires_a_command(self):
        with pytest.raises(SystemExit):
            main(["profile"])

    def test_profile_rejects_itself(self):
        with pytest.raises(SystemExit):
            main(["profile", "profile", "datasets"])

    def test_profile_validates_wrapped_flags(self, karate_file):
        with pytest.raises(SystemExit):
            main(["profile", "color", karate_file])  # no stopping rule


class TestTraceOutFlag:
    def test_solve_trace_out_without_profile(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["solve", "--task", "maxflow", "--dataset", "tsukuba0",
             "--scale", "0.002", "--colors", "8",
             "--trace-out", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        # No summary table without profile — just the dump.
        assert "covered by direct child spans" not in out
        for line in trace_path.read_text().splitlines():
            json.loads(line)

    def test_color_trace_out(self, karate_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["color", karate_file, "--colors", "6",
             "--trace-out", str(trace_path)]
        ) == 0
        assert trace_path.exists()

    def test_update_trace_out(self, karate_file, tmp_path):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["update", karate_file, "--q", "2", "--n-updates", "20",
             "--trace-out", str(trace_path)]
        ) == 0
        rows = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert rows[0]["type"] == "meta"


class TestIngestCommand:
    def test_synthetic_ingest_and_mmap_color(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            ["ingest", str(store), "--synthetic", "500,4", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "arcs" in out and "index_dtype" in out
        assert main(
            ["color", str(store), "--mmap", "--colors", "8"]
        ) == 0
        assert "colors" in capsys.readouterr().out

    def test_edgelist_ingest(self, tmp_path, capsys):
        edges = tmp_path / "arcs.txt"
        edges.write_text("0 1 2.0\n1 2\n2 0 1.5\n")
        store = tmp_path / "store"
        assert main(["ingest", str(store), "--edgelist", str(edges)]) == 0
        assert "3" in capsys.readouterr().out

    def test_mmap_color_matches_resident(self, tmp_path, capsys):
        """--mmap must report the identical coloring the resident path
        reports for the same arcs."""
        import numpy as np

        from repro.graphs.edgestore import ingest_arrays

        rng = np.random.default_rng(9)
        # distinct arcs: duplicate handling differs by design between
        # the store (sums) and the line-by-line reader (replaces)
        codes = rng.choice(200 * 200, size=2_000, replace=False)
        src, dst = codes // 200, codes % 200
        weight = rng.integers(1, 5, size=2_000).astype(np.float64)
        store = tmp_path / "store"
        ingest_arrays(store, src, dst, weight, n_nodes=200)
        edges = tmp_path / "arcs.txt"
        edges.write_text(
            "\n".join(
                f"{s} {d} {w}" for s, d, w in zip(src, dst, weight)
            )
        )
        def stats_row(text):
            # last line is the data row; the trailing column is wall
            # time, the one field allowed to differ between the runs
            return text.strip().splitlines()[-1].split()[:-1]

        assert main(
            ["color", str(store), "--mmap", "--colors", "12"]
        ) == 0
        mmap_out = capsys.readouterr().out
        assert main(
            ["color", str(edges), "--directed", "--colors", "12"]
        ) == 0
        resident_out = capsys.readouterr().out
        assert stats_row(mmap_out) == stats_row(resident_out)

    def test_ingest_requires_exactly_one_source(self, tmp_path):
        store = tmp_path / "store"
        with pytest.raises(SystemExit):
            main(["ingest", str(store)])
        with pytest.raises(SystemExit):
            main([
                "ingest", str(store),
                "--edgelist", "x.txt", "--synthetic", "10,2",
            ])

    def test_ingest_rejects_bad_synthetic_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "ingest", str(tmp_path / "store"), "--synthetic", "10",
            ])


class TestVerifyCommand:
    @pytest.fixture
    def store(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main(
            ["ingest", str(path), "--synthetic", "300,5", "--seed", "2"]
        ) == 0
        capsys.readouterr()
        return str(path)

    def test_verify_intact_store(self, store, capsys):
        assert main(["verify", store]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "checksums" in out

    def test_verify_missing_path_is_a_clean_one_liner(
        self, tmp_path, capsys
    ):
        assert main(["verify", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro verify:")
        assert len(err.strip().splitlines()) == 1

    def test_verify_corrupt_store(self, store, capsys):
        import pathlib

        target = pathlib.Path(store) / "weight.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert main(["verify", store]) == 2
        assert "checksum mismatch" in capsys.readouterr().err


class TestCleanCliErrors:
    def test_color_missing_edgelist(self, tmp_path, capsys):
        assert main(
            ["color", str(tmp_path / "nope.edges"), "--colors", "4"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro color:")
        assert len(err.strip().splitlines()) == 1

    def test_color_non_store_directory(self, tmp_path, capsys):
        empty = tmp_path / "not-a-store"
        empty.mkdir()
        assert main(
            ["color", str(empty), "--mmap", "--colors", "4"]
        ) == 2
        assert capsys.readouterr().err.startswith("repro color:")

    def test_ingest_resume_without_journal(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to resume"):
            main(
                ["ingest", str(tmp_path / "store"),
                 "--synthetic", "300,5", "--resume"]
            )

    def test_faulted_ingest_then_resume_round_trip(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.resilience import uninstall_plan

        store = tmp_path / "store"
        monkeypatch.setenv(
            "REPRO_FAULTS", "edgestore.merge.chunk@1"
        )
        try:
            assert main(
                ["ingest", str(store), "--synthetic", "300,5",
                 "--seed", "2"]
            ) == 2
            assert "injected fault" in capsys.readouterr().err
        finally:
            uninstall_plan()
        monkeypatch.delenv("REPRO_FAULTS")
        assert main(
            ["ingest", str(store), "--synthetic", "300,5",
             "--seed", "2", "--resume"]
        ) == 0
        capsys.readouterr()
        assert main(["verify", str(store)]) == 0


class TestCertifyCli:
    @pytest.fixture
    def store(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main(
            ["ingest", str(path), "--synthetic", "300,5", "--seed", "2"]
        ) == 0
        capsys.readouterr()
        return str(path)

    def test_certify_reaches_the_dial(self, store, capsys):
        assert main(
            ["solve", "--task", "maxflow", "--dataset", store, "--mmap",
             "--certify", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out and "rel_error" in out

    def test_certify_unreachable_cap_exits_one(self, store, capsys):
        assert main(
            ["solve", "--task", "maxflow", "--dataset", store, "--mmap",
             "--certify", "0", "--max-colors", "4"]
        ) == 1
        assert "NOT certified" in capsys.readouterr().out

    def test_certify_rejects_explicit_budgets(self, store):
        with pytest.raises(SystemExit, match="certify"):
            main(
                ["solve", "--task", "maxflow", "--dataset", store,
                 "--mmap", "--certify", "0.1", "--colors", "8"]
            )
