"""Tests for the streaming-update vocabulary and trace I/O."""

import io

import pytest

from repro.dynamic.updates import (
    EdgeUpdate,
    parse_update,
    read_updates,
    write_updates,
)
from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph


class TestEdgeUpdate:
    def test_constructors(self):
        insert = EdgeUpdate.insert(1, 2, 3.0)
        assert (insert.kind, insert.u, insert.v, insert.weight) == (
            "insert", 1, 2, 3.0,
        )
        delete = EdgeUpdate.delete("a", "b")
        assert delete.kind == "delete"
        reweight = EdgeUpdate.reweight(1, 2, 0.5)
        assert reweight.weight == 0.5

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            EdgeUpdate("upsert", 1, 2)

    def test_apply_insert_delete_reweight(self):
        graph = WeightedDiGraph(directed=True)
        EdgeUpdate.insert(0, 1, 2.0).apply_to(graph)
        assert graph.weight(0, 1) == 2.0
        EdgeUpdate.reweight(0, 1, 5.0).apply_to(graph)
        assert graph.weight(0, 1) == 5.0
        EdgeUpdate.delete(0, 1).apply_to(graph)
        assert not graph.has_edge(0, 1)
        # Deleting a missing edge is a no-op, not an error.
        EdgeUpdate.delete(0, 1).apply_to(graph)

    def test_reweight_to_zero_deletes(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 1.0)
        EdgeUpdate.reweight(0, 1, 0.0).apply_to(graph)
        assert not graph.has_edge(0, 1)


class TestTraceFormat:
    def test_round_trip(self):
        updates = [
            EdgeUpdate.insert(0, 1, 2.5),
            EdgeUpdate.delete(1, 2),
            EdgeUpdate.reweight(2, 3, 0.25),
            EdgeUpdate.insert(3, 4),
        ]
        buffer = io.StringIO()
        write_updates(updates, buffer)
        buffer.seek(0)
        assert list(read_updates(buffer)) == updates

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        updates = [EdgeUpdate.insert(5, 6, 1.5), EdgeUpdate.delete(6, 5)]
        write_updates(updates, path)
        assert list(read_updates(path)) == updates

    def test_comments_and_blanks_ignored(self):
        assert parse_update("# comment") is None
        assert parse_update("   ") is None

    def test_string_labels(self):
        update = parse_update("+ alice bob 2")
        assert (update.u, update.v, update.weight) == ("alice", "bob", 2.0)

    def test_integer_labels_parsed_as_ints(self):
        update = parse_update("- 3 4")
        assert update.u == 3 and isinstance(update.u, int)

    def test_malformed_lines_rejected(self):
        for line in ("? 1 2", "+ 1", "- 1 2 3", "~ 1 2"):
            with pytest.raises(GraphError):
                parse_update(line)


class TestUndirectedTraceValidity:
    def test_no_reverse_orientation_inserts(self):
        """On undirected graphs, the churn shadow set must treat (u, v)
        and (v, u) as the same edge, so inserts never silently overwrite
        an existing edge."""
        from repro.datasets.churn import random_churn
        from repro.graphs.generators import karate_club

        graph = karate_club()
        assert not graph.directed
        updates = random_churn(graph, 200, seed=0)
        for update in updates:
            if update.kind == "insert":
                assert not graph.has_edge(update.u, update.v), update
                assert not graph.has_edge(update.v, update.u), update
            update.apply_to(graph)
