"""Tests for DynamicColoring: incremental maintenance under updates."""

import numpy as np
import pytest

from repro.core.partition import Coloring
from repro.core.qerror import max_q_err
from repro.core.rothko import q_color
from repro.dynamic import DynamicColoring, EdgeUpdate
from repro.exceptions import ColoringError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import karate_club, lifted_biregular
from tests.conftest import random_adjacency

TOL_SLACK = 1e-9


def _random_updates(graph, n_updates, seed, weights=(1.0, 2.0, 3.0)):
    """Mixed insert/delete/reweight stream valid for sequential replay."""
    rng = np.random.default_rng(seed)
    labels = graph.labels()
    edges = {(u, v): w for u, v, w in graph.edges()}
    n = len(labels)
    updates = []
    while len(updates) < n_updates:
        roll = rng.random()
        if roll < 0.4 and edges:
            keys = sorted(edges)
            u, v = keys[int(rng.integers(0, len(keys)))]
            if roll < 0.2:
                del edges[(u, v)]
                updates.append(EdgeUpdate.delete(u, v))
            else:
                w = float(weights[int(rng.integers(0, len(weights)))])
                edges[(u, v)] = w
                updates.append(EdgeUpdate.reweight(u, v, w))
            continue
        u, v = (labels[int(x)] for x in rng.integers(0, n, size=2))
        if u == v or (u, v) in edges:
            continue
        w = float(weights[int(rng.integers(0, len(weights)))])
        edges[(u, v)] = w
        updates.append(EdgeUpdate.insert(u, v, w))
    return updates


class TestSeeding:
    def test_seed_matches_rothko(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0, attach=False)
        assert dynamic.max_q_err() <= 3.0 + TOL_SLACK
        assert max_q_err(karate.to_csr(), dynamic.snapshot()) <= 3.0 + TOL_SLACK

    def test_accepts_adjacency_matrix(self):
        adjacency = random_adjacency(20, 0.3, 0)
        dynamic = DynamicColoring(adjacency, q_tolerance=2.0)
        assert dynamic.n == 20
        dynamic.verify_consistency()

    def test_explicit_coloring_respected(self, karate):
        seeded = q_color(karate, q=3.0)
        dynamic = DynamicColoring(
            karate, q_tolerance=3.0, coloring=seeded.coloring, attach=False
        )
        assert dynamic.snapshot() == seeded.coloring

    def test_bad_params(self, karate):
        with pytest.raises(ValueError):
            DynamicColoring(karate, q_tolerance=-1.0)
        with pytest.raises(ValueError):
            DynamicColoring(karate, q_tolerance=1.0, drift_budget=0.0)
        with pytest.raises(ColoringError):
            DynamicColoring(karate, q_tolerance=1.0, frozen=(0,))


class TestInvariantUnderChurn:
    @pytest.mark.parametrize("seed", range(4))
    def test_directed_random_churn(self, seed):
        adjacency = random_adjacency(25, 0.2, seed)
        dynamic = DynamicColoring(adjacency, q_tolerance=2.0)
        graph = dynamic.graph
        for update in _random_updates(graph, 30, seed=seed + 100):
            dynamic.apply(update)
            assert dynamic.max_q_err() <= 2.0 + TOL_SLACK
        dynamic.verify_consistency()
        # The maintained error equals the ground-truth recomputation.
        snapshot = dynamic.snapshot()
        assert max_q_err(graph.to_csr(), snapshot) <= 2.0 + TOL_SLACK

    def test_undirected_graph(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=2.0)
        for update in _random_updates(karate, 25, seed=5, weights=(1.0,)):
            dynamic.apply(update)
        dynamic.verify_consistency()
        assert max_q_err(karate.to_csr(), dynamic.snapshot()) <= 2.0 + TOL_SLACK

    def test_batch_equals_sequential_invariant(self, karate):
        updates = _random_updates(karate, 20, seed=9, weights=(1.0,))
        dynamic = DynamicColoring(karate, q_tolerance=2.0)
        dynamic.apply_batch(updates)
        dynamic.verify_consistency()
        assert dynamic.max_q_err() <= 2.0 + TOL_SLACK
        assert dynamic.stats.updates == 20


class TestLocalRepairEconomy:
    def test_single_update_is_local(self):
        """One edge insertion repairs without a rebuild and touches only
        a bounded number of color pairs."""
        graph, _ = lifted_biregular(
            n_groups=20, group_size=5, template_edges=60, lift_degree=2, seed=3
        )
        dynamic = DynamicColoring(graph, q_tolerance=4.0)
        labels = graph.labels()
        dynamic.apply(EdgeUpdate.insert(labels[0], labels[50], 1.0))
        assert dynamic.stats.rebuilds == 0
        assert dynamic.max_q_err() <= 4.0 + TOL_SLACK

    def test_noop_reweight_costs_nothing(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        before = dynamic.stats.pairs_checked
        u, v, w = next(iter(karate.edges()))
        dynamic.apply(EdgeUpdate.reweight(u, v, w))  # same weight
        assert dynamic.stats.pairs_checked == before
        assert dynamic.stats.splits == 0


class TestCoarsening:
    def test_delete_merges_back(self, karate):
        """Inserting then deleting an edge lets the merge pass coarsen the
        coloring back to (at most) its original size."""
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        base_colors = dynamic.snapshot().n_colors
        labels = karate.labels()
        u, v = labels[0], labels[20]
        assert not karate.has_edge(u, v)
        dynamic.apply(EdgeUpdate.insert(u, v, 5.0))
        dynamic.apply(EdgeUpdate.delete(u, v))
        assert dynamic.snapshot().n_colors <= base_colors
        assert dynamic.max_q_err() <= 3.0 + TOL_SLACK
        dynamic.verify_consistency()

    def test_merges_counted(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        labels = karate.labels()
        dynamic.apply(EdgeUpdate.insert(labels[0], labels[20], 5.0))
        splits = dynamic.stats.splits
        dynamic.apply(EdgeUpdate.delete(labels[0], labels[20]))
        if dynamic.stats.merges:
            assert dynamic.stats.merges <= splits + 1


class TestDriftBudget:
    def test_churn_budget_triggers_rebuild(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0, drift_budget=0.05)
        updates = _random_updates(karate, 40, seed=2, weights=(1.0,))
        dynamic.apply_batch(updates)
        assert dynamic.stats.rebuilds >= 1
        assert dynamic.max_q_err() <= 3.0 + TOL_SLACK
        dynamic.verify_consistency()

    def test_rebuild_resets_baseline(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0, drift_budget=0.05)
        dynamic.apply_batch(_random_updates(karate, 40, seed=2, weights=(1.0,)))
        assert dynamic._churn == 0 or dynamic.stats.rebuilds == 0


class TestMutationHooks:
    def test_direct_mutation_tracked(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        labels = karate.labels()
        found = False
        for i in range(karate.n_nodes):
            for j in range(i + 1, karate.n_nodes):
                if not karate.has_edge(labels[i], labels[j]):
                    karate.add_edge(labels[i], labels[j], 2.0)
                    found = True
                    break
            if found:
                break
        assert found
        # snapshot() repairs the deferred mutation.
        snapshot = dynamic.snapshot()
        assert max_q_err(karate.to_csr(), snapshot) <= 3.0 + TOL_SLACK
        dynamic.verify_consistency()

    def test_new_node_via_edge(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        n_before = dynamic.n
        karate.add_edge("newcomer", karate.labels()[0], 1.0)
        dynamic.repair()
        assert dynamic.n == n_before + 1
        assert dynamic.stats.nodes_added == 1
        dynamic.verify_consistency()
        assert dynamic.max_q_err() <= 3.0 + TOL_SLACK

    def test_detach_stops_tracking(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        dynamic.detach()
        labels = karate.labels()
        karate.add_edge(labels[0], labels[20], 7.0)
        # The engine no longer sees graph mutations...
        assert dynamic.stats.arcs_changed == 0
        # ...but apply() still works on a detached engine.
        dynamic.apply(EdgeUpdate.delete(labels[0], labels[20]))
        dynamic.verify_consistency()

    def test_context_manager_detaches(self, karate):
        with DynamicColoring(karate, q_tolerance=3.0) as dynamic:
            assert dynamic._attached
        assert not dynamic._attached

    def test_copy_does_not_carry_listeners(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        clone = karate.copy()
        labels = clone.labels()
        clone.add_edge(labels[0], labels[20], 3.0)
        assert dynamic.stats.arcs_changed == 0
        dynamic.detach()


class TestFrozenColors:
    def test_pinned_out_witness_still_repairs_in_direction(self):
        """A violated pair whose out-direction witness is frozen must
        still get its (unpinned) in-direction color split.

        The frozen class keeps a best-effort residual — its members'
        out-totals genuinely diverge and only a frozen split could fix
        that — but every repair that does not require splitting a frozen
        color must still happen."""
        graph = WeightedDiGraph(directed=True)
        for node in range(4):  # pin internal indices to labels
            graph.add_node(node)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 3, 1.0)
        initial = Coloring([0, 0, 1, 1])
        dynamic = DynamicColoring(
            graph, q_tolerance=1.0, coloring=initial, frozen=(0,)
        )
        assert dynamic.k == 2  # seed is within tolerance
        dynamic.apply(EdgeUpdate.reweight(0, 2, 11.0))
        # Frozen {0,1} cannot split, but the in-direction witness over
        # {2, 3} (incoming 11 vs 1 from the frozen class) can and must.
        assert dynamic.stats.splits == 1
        assert dynamic.stats.rebuilds == 0
        snapshot = dynamic.snapshot()
        assert snapshot.labels[0] == snapshot.labels[1]  # frozen intact
        assert snapshot.labels[2] != snapshot.labels[3]  # repaired
        # Every residual violation involves splitting the frozen color;
        # all in-direction spreads are repaired.
        for i in range(dynamic.k):
            for j in range(dynamic.k):
                in_values = dynamic._d_in[dynamic._members[j], i]
                assert in_values.max() - in_values.min() <= 1.0 + TOL_SLACK
                if dynamic._color_pin[i] < 0:
                    out_values = dynamic._d_out[dynamic._members[i], j]
                    assert (
                        out_values.max() - out_values.min() <= 1.0 + TOL_SLACK
                    )

    def test_frozen_class_survives_churn(self):
        adjacency = random_adjacency(20, 0.3, 4)
        initial = Coloring([0] * 2 + [1] * 18)
        dynamic = DynamicColoring(
            adjacency,
            q_tolerance=2.0,
            coloring=initial,
            frozen=(0,),
        )
        graph = dynamic.graph
        for update in _random_updates(graph, 25, seed=6):
            dynamic.apply(update)
        snapshot = dynamic.snapshot()
        # Nodes 0 and 1 still share one color, untouched by churn.
        assert snapshot.labels[0] == snapshot.labels[1]
        dynamic.verify_consistency()


class TestRelativeMode:
    def test_relative_invariant(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=0.7, error_mode="relative")
        for update in _random_updates(karate, 15, seed=8, weights=(1.0, 2.0)):
            dynamic.apply(update)
        assert dynamic.max_q_err() <= 0.7 + TOL_SLACK
        dynamic.verify_consistency()


class TestStats:
    def test_stats_row_keys(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        row = dynamic.stats.as_row()
        assert {"updates", "splits", "merges", "rebuilds"} <= set(row)

    def test_repr(self, karate):
        dynamic = DynamicColoring(karate, q_tolerance=3.0)
        assert "DynamicColoring" in repr(dynamic)
