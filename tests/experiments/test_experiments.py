"""Smoke tests of every experiment driver at tiny scale.

These check wiring and invariants (columns present, accuracies in range,
monotone trends where the paper guarantees them) — the real runs live in
``benchmarks/``.
"""

import math

import pytest

from repro.experiments.common import geometric_budgets, print_rows
from repro.experiments.fig2_robustness import run_fig2
from repro.experiments.fig7_tradeoff import (
    centrality_tradeoff,
    lp_tradeoff,
    maxflow_tradeoff,
)
from repro.experiments.fig8_colors import accuracy_vs_colors
from repro.experiments.table1_runtime import (
    centrality_runtime_rows,
    lp_runtime_rows,
)
from repro.experiments.table4_compression import compression_rows
from repro.experiments.table5_lp import lp_compression_rows
from repro.experiments.table6_responsiveness import responsiveness_rows


class TestCommon:
    def test_geometric_budgets(self):
        budgets = geometric_budgets(5, 100, 4)
        assert budgets[0] == 5
        assert budgets[-1] == 100
        assert budgets == sorted(budgets)

    def test_geometric_budgets_single(self):
        assert geometric_budgets(5, 100, 1) == [5]

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            geometric_budgets(5, 10, 0)

    def test_print_rows(self, capsys):
        print_rows([{"a": 1}], title="T")
        assert "T" in capsys.readouterr().out


class TestFig2:
    def test_shape_of_story(self):
        rows = run_fig2(
            n_groups=20,
            group_size=5,
            template_edges=60,
            fractions=(0.0, 0.05),
            q=4.0,
        )
        assert len(rows) == 2
        base, perturbed = rows
        # Unperturbed: stable coloring compact (= 20 planted groups).
        assert base["stable_colors"] <= 21
        # Perturbed: stable coloring explodes, q-stable stays small.
        assert perturbed["stable_colors"] > 3 * base["stable_colors"]
        assert perturbed["qstable_colors"] < perturbed["stable_colors"]


class TestFig7:
    def test_maxflow_rows(self):
        rows = maxflow_tradeoff(
            datasets=("tsukuba0",), scale=0.001, color_budgets=(4, 8)
        )
        assert len(rows) == 2
        for row in rows:
            assert row["accuracy"] >= 1.0
            assert row["approx_value"] >= row["exact_value"] - 1e-9

    def test_lp_rows(self):
        rows = lp_tradeoff(
            datasets=("qap15",), scale=0.03, color_budgets=(8, 16)
        )
        assert len(rows) == 2
        assert all(math.isfinite(row["time_s"]) for row in rows)

    def test_centrality_rows(self):
        rows = centrality_tradeoff(
            datasets=("deezer",), scale=0.004, color_budgets=(5, 20)
        )
        assert len(rows) == 2
        assert all(-1.0 <= row["accuracy"] <= 1.0 for row in rows)
        # More colors should not hurt (paper: centrality is monotone).
        assert rows[1]["accuracy"] >= rows[0]["accuracy"] - 0.15


class TestFig8:
    def test_dispatch(self):
        rows = accuracy_vs_colors(
            "centrality",
            scale=0.004,
            datasets=("deezer",),
            color_budgets=(5, 10),
        )
        assert len(rows) == 2

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            accuracy_vs_colors("sorting")


class TestTable1:
    def test_centrality_runtime(self):
        rows = centrality_runtime_rows(
            datasets=("deezer",),
            scale=0.004,
            color_ladder=(10, 40),
            sample_ladder=(200, 2000),
            targets=(0.5, 0.9),
        )
        assert len(rows) == 1
        row = rows[0]
        assert "ours_rho0.5" in row and "prior_rho0.5" in row
        assert row["exact_s"] > 0

    def test_lp_runtime(self):
        rows = lp_runtime_rows(
            datasets=("qap15",),
            scale=0.03,
            color_ladder=(8, 32),
            targets=(3.0, 1.5),
        )
        assert len(rows) == 1
        assert rows[0]["exact_s"] > 0


class TestTable4:
    def test_rows_and_trends(self):
        rows = compression_rows(
            datasets=("openflights",), scale=0.05, q_targets=(16.0, 8.0)
        )
        assert len(rows) == 3  # stable + two q targets
        stable, q16, q8 = rows
        assert stable["max_q"] == 0.0
        # Lower q target -> more colors (finer coloring).
        assert q8["colors"] >= q16["colors"]
        # Quasi-stable compresses far better than stable.
        assert q16["colors"] < stable["colors"]
        assert q16["max_q"] <= 16.0
        assert q8["mean_q"] <= q8["max_q"]


class TestTable5:
    def test_rows(self):
        rows = lp_compression_rows(
            datasets=("qap15",), scale=0.03, color_budgets=(10, 30)
        )
        assert len(rows) == 2
        small, large = rows
        assert small["nnz"] <= large["nnz"]
        assert large["compression"] >= 1.0
        assert large["rel_error"] >= 1.0


class TestTable6:
    def test_rows(self):
        rows = responsiveness_rows(
            flow_scale=0.001,
            lp_scale=0.02,
            centrality_scale=0.003,
            max_colors=8,
        )
        assert [row["task"] for row in rows] == [
            "maxflow", "lp", "centrality",
        ]
        for row in rows:
            assert row["time_to_first_s"] > 0
            assert row["time_to_converge_s"] >= row["time_to_first_s"] - 1e-9
            assert row["updates"] >= 1
