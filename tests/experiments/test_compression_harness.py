"""Slim Graph-style harness: sparsifiers, byte accounting, row schema."""

import json

import numpy as np
import pytest

from repro.experiments.compression_harness import (
    SCHEMES,
    degree_weighted_sample,
    harness_rows,
    main,
    spanner_sparsify,
    sparsify_lp,
)
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import (
    barabasi_albert,
    uniform_random_digraph,
)


class TestSparsifiers:
    def test_spanner_keeps_strongest_arcs_per_node(self):
        graph = WeightedDiGraph.from_arrays(
            np.array([0, 0, 0, 1]),
            np.array([1, 2, 3, 2]),
            np.array([5.0, 1.0, 3.0, 2.0]),
            n_nodes=4,
        )
        sparse = spanner_sparsify(graph, 0.5)
        # node 0 has quota ceil(0.5 * 3) = 2: its two strongest arcs
        assert sparse.weight(0, 1) == 5.0
        assert sparse.weight(0, 3) == 3.0
        assert not sparse.has_edge(0, 2)
        # node 1's single arc survives the minimum quota of 1
        assert sparse.weight(1, 2) == 2.0

    def test_spanner_is_deterministic_subgraph(self):
        graph = barabasi_albert(200, 4, seed=3)
        a = spanner_sparsify(graph, 0.3)
        b = spanner_sparsify(graph, 0.3)
        assert np.array_equal(a.to_csr().indices, b.to_csr().indices)
        assert a.n_arcs < graph.n_arcs
        for u, v, w in a.edges():
            assert graph.weight(u, v) == w

    def test_degree_sampling_hits_target_and_reweights(self):
        graph = uniform_random_digraph(300, 20, seed=5)
        level = 0.2
        sparse = degree_weighted_sample(graph, level, seed=7)
        kept = sparse.n_arcs / graph.n_arcs
        assert 0.1 <= kept <= 0.35  # expectation 0.2, binomial spread
        # Horvitz-Thompson: kept arcs are scaled up, never down
        for u, v, w in sparse.edges():
            assert w >= graph.weight(u, v)

    def test_degree_sampling_is_seeded(self):
        graph = uniform_random_digraph(100, 8, seed=1)
        a = degree_weighted_sample(graph, 0.3, seed=2)
        b = degree_weighted_sample(graph, 0.3, seed=2)
        assert np.array_equal(a.to_csr().data, b.to_csr().data)

    def test_undirected_graphs_stay_undirected(self):
        graph = barabasi_albert(100, 3, seed=1)
        assert not graph.directed
        for sparse in (
            degree_weighted_sample(graph, 0.4, seed=0),
            spanner_sparsify(graph, 0.4),
        ):
            assert not sparse.directed
            csr = sparse.to_csr()
            assert (csr != csr.T).nnz == 0  # symmetric

    def test_sparsify_lp_schemes(self):
        from repro.datasets.registry import load_lp

        lp = load_lp("qap15", scale=0.02)
        for scheme in ("degree-sampling", "spanner"):
            sparse = sparsify_lp(lp, scheme, 0.3, seed=0)
            assert sparse.nnz <= lp.nnz
            assert sparse.a_matrix.shape == lp.a_matrix.shape
        with pytest.raises(ValueError, match="unknown sparsification"):
            sparsify_lp(lp, "nope", 0.3)


class TestHarnessRows:
    @pytest.fixture(scope="class")
    def rows(self):
        return harness_rows(smoke=True, seed=0)

    def test_covers_every_task_and_scheme(self, rows):
        tasks = {row["task"] for row in rows}
        assert tasks == {"maxflow", "lp", "centrality"}
        for task in tasks:
            schemes = {
                row["scheme"] for row in rows if row["task"] == task
            }
            assert schemes == set(SCHEMES) | {"exact"}

    def test_row_schema(self, rows):
        for row in rows:
            assert row["bytes"] >= 0
            assert row["seconds"] >= 0
            assert 0.0 <= row["accuracy"] <= 1.0
            if row["scheme"] != "exact":
                assert "acc_per_mb" in row and "acc_per_s" in row

    def test_exact_rows_are_perfect(self, rows):
        for row in rows:
            if row["scheme"] == "exact":
                assert row["accuracy"] == 1.0 and row["rel_err"] == 0.0

    def test_quasi_stable_compresses(self, rows):
        for row in rows:
            if row["scheme"] != "quasi-stable":
                continue
            exact = next(
                r for r in rows
                if r["task"] == row["task"] and r["scheme"] == "exact"
            )
            assert 0 < row["bytes"] < exact["bytes"]
            assert row["accuracy"] > 0.0

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="task must be one of"):
            harness_rows(tasks=("bogus",), smoke=True)


def test_main_writes_json(tmp_path, capsys):
    out = tmp_path / "rows.json"
    assert main([
        "--smoke", "--tasks", "centrality", "--out", str(out),
    ]) == 0
    assert "Accuracy per byte" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["smoke"] is True
    assert all(r["task"] == "centrality" for r in payload["rows"])
