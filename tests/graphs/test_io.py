"""Tests for repro.graphs.io (edge lists and DIMACS flow files)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.io import (
    read_dimacs_flow,
    read_edgelist,
    write_dimacs_flow,
    write_edgelist,
)


@pytest.fixture
def weighted_graph():
    graph = WeightedDiGraph(directed=True)
    graph.add_edge("a", "b", 2.5)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 4.0)
    return graph


class TestEdgelist:
    def test_roundtrip(self, tmp_path, weighted_graph):
        path = tmp_path / "graph.edges"
        write_edgelist(weighted_graph, path)
        back = read_edgelist(path)
        assert back.directed
        assert back.weight("a", "b") == 2.5
        assert back.n_edges == 3

    def test_directedness_header(self, tmp_path):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge("x", "y", 1.0)
        path = tmp_path / "und.edges"
        write_edgelist(graph, path)
        back = read_edgelist(path, directed=True)  # header wins
        assert not back.directed

    def test_unweighted_lines(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("a b\nb c\n")
        graph = read_edgelist(path)
        assert graph.weight("a", "b") == 1.0

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("a b c d e\n")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("")
        assert read_edgelist(path).n_nodes == 0

    def test_numeric_labels_parsed_as_ints(self, tmp_path):
        """Int-looking labels become ints so update traces (which use
        the same coercion) resolve against file graphs."""
        path = tmp_path / "nums.edges"
        path.write_text("0 1 2.0\n1 2\n")
        graph = read_edgelist(path)
        assert graph.has_node(0) and not graph.has_node("0")
        assert graph.weight(0, 1) == 2.0

    def test_mixed_labels(self, tmp_path):
        path = tmp_path / "mixed.edges"
        path.write_text("hub 1 3.0\n")
        graph = read_edgelist(path)
        assert graph.weight("hub", 1) == 3.0


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        graph = WeightedDiGraph(directed=True)
        for i in range(4):
            graph.add_node(i)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 3, 2.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(2, 3, 4.0)
        path = tmp_path / "net.max"
        write_dimacs_flow(graph, 0, 3, path)
        back, source, sink = read_dimacs_flow(path)
        assert (source, sink) == (0, 3)
        assert back.weight(0, 1) == 3.0
        assert back.n_nodes == 4

    def test_parallel_arcs_summed(self, tmp_path):
        path = tmp_path / "par.max"
        path.write_text(
            "p max 2 2\nn 1 s\nn 2 t\na 1 2 3\na 1 2 4\n"
        )
        graph, source, sink = read_dimacs_flow(path)
        assert graph.weight(0, 1) == 7.0

    def test_missing_terminals(self, tmp_path):
        path = tmp_path / "bad.max"
        path.write_text("p max 2 1\na 1 2 3\n")
        with pytest.raises(GraphError):
            read_dimacs_flow(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.max"
        path.write_text(
            "c comment\np max 2 1\nn 1 s\nn 2 t\na 1 2 5\n"
        )
        graph, _, _ = read_dimacs_flow(path)
        assert graph.weight(0, 1) == 5.0
