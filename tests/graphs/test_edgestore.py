"""Edge store: streaming ingestion, external-sort dedup, memmap loads."""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.edgestore import (
    EdgeStore,
    EdgeStoreWriter,
    NpyAppender,
    ingest_arrays,
    ingest_edgelist,
    ingest_uniform_random,
    memmap_descriptor,
    open_descriptor,
)


def _random_arcs(n, m, seed=0, integer_weights=True):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    if integer_weights:
        weight = rng.integers(1, 10, size=m).astype(np.float64)
    else:
        weight = rng.uniform(0.5, 2.0, size=m)
    return src, dst, weight


class TestNpyAppender:
    def test_appended_chunks_round_trip(self, tmp_path):
        path = tmp_path / "values.npy"
        appender = NpyAppender(path, np.int64)
        appender.append(np.arange(5, dtype=np.int64))
        appender.append(np.arange(5, 10, dtype=np.int64))
        appender.close()
        assert np.array_equal(np.load(path), np.arange(10))

    def test_empty_file_is_valid_npy(self, tmp_path):
        path = tmp_path / "empty.npy"
        NpyAppender(path, np.float64).close()
        loaded = np.load(path)
        assert loaded.size == 0 and loaded.dtype == np.float64

    def test_memmap_load(self, tmp_path):
        path = tmp_path / "values.npy"
        appender = NpyAppender(path, np.int32)
        appender.append(np.arange(1000, dtype=np.int32))
        appender.close()
        mapped = np.load(path, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(mapped, np.arange(1000))


class TestMemmapDescriptor:
    def test_round_trip_including_slices(self, tmp_path):
        path = tmp_path / "values.npy"
        np.save(path, np.arange(100, dtype=np.int64))
        mapped = np.load(path, mmap_mode="r")
        for view in (mapped, mapped[10:50]):
            spec = memmap_descriptor(view)
            assert spec is not None
            reopened = open_descriptor(spec)
            assert np.array_equal(reopened, view)

    def test_resident_array_has_no_descriptor(self):
        assert memmap_descriptor(np.arange(10)) is None


class TestWriterDedup:
    def test_round_trip_matches_from_arrays(self, tmp_path):
        n, m = 200, 5_000
        src, dst, weight = _random_arcs(n, m, seed=1)
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=n
        )
        graph = WeightedDiGraph.from_arrays(
            src, dst, weight, n_nodes=n
        )
        expected = graph.to_csr()
        indptr, indices, data = store.csr_arrays(mmap=True)
        assert np.array_equal(indptr, expected.indptr)
        assert np.array_equal(indices, expected.indices)
        assert np.array_equal(data, expected.data)
        csc = graph.to_csc()
        cptr, cind, cdat = store.csc_arrays(mmap=True)
        assert np.array_equal(cptr, csc.indptr)
        assert np.array_equal(cind, csc.indices)
        assert np.array_equal(cdat, csc.data)
        assert store.n_arcs == expected.nnz

    def test_multi_run_merge_parity(self, tmp_path):
        """A chunk budget forcing many spill runs changes nothing."""
        n, m = 100, 4_000
        src, dst, weight = _random_arcs(n, m, seed=2)
        small = ingest_arrays(
            tmp_path / "small", src, dst, weight, n_nodes=n,
            chunk_arcs=257,
        )
        big = ingest_arrays(
            tmp_path / "big", src, dst, weight, n_nodes=n
        )
        for mmap in (False, True):
            for part in zip(
                small.csr_arrays(mmap=mmap), big.csr_arrays(mmap=mmap)
            ):
                assert np.array_equal(*part)

    def test_duplicate_arcs_sum(self, tmp_path):
        src = np.zeros(5_000, dtype=np.int64)
        dst = np.ones(5_000, dtype=np.int64)
        weight = np.ones(5_000)
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=2,
            chunk_arcs=300,
        )
        assert store.n_arcs == 1
        _, indices, data = store.csr_arrays()
        assert indices.tolist() == [1]
        assert data.tolist() == [5000.0]

    def test_zero_sum_arcs_are_dropped(self, tmp_path):
        src = np.array([0, 0, 1])
        dst = np.array([1, 1, 2])
        weight = np.array([3.0, -3.0, 2.0])
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=3
        )
        assert store.n_arcs == 1
        matrix = store.csr_matrix()
        assert matrix[1, 2] == 2.0 and matrix[0, 1] == 0.0

    def test_undirected_mirrors_arcs(self, tmp_path):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 2])  # includes a self-loop
        weight = np.array([1.0, 2.0, 5.0])
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=3,
            directed=False,
        )
        graph = WeightedDiGraph.from_arrays(
            src, dst, weight, n_nodes=3, directed=False
        )
        expected = graph.to_csr()
        indptr, indices, data = store.csr_arrays()
        assert np.array_equal(indptr, expected.indptr)
        assert np.array_equal(indices, expected.indices)
        assert np.array_equal(data, expected.data)

    def test_empty_store(self, tmp_path):
        with EdgeStoreWriter(tmp_path / "store", n_nodes=4) as writer:
            pass
        store = EdgeStore(tmp_path / "store")
        assert store.n_arcs == 0 and store.n_nodes == 4
        assert store.csr_matrix().nnz == 0

    def test_out_of_range_arc_names_offender(self, tmp_path):
        writer = EdgeStoreWriter(tmp_path / "store", n_nodes=3)
        writer.append(np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(GraphError, match=r"arc 1: 2 -> 7"):
            writer.append(
                np.array([2]), np.array([7]), np.array([1.0])
            )

    def test_infers_n_nodes_when_unset(self, tmp_path):
        store = ingest_arrays(
            tmp_path / "store",
            np.array([0, 5]), np.array([3, 2]), np.array([1.0, 1.0]),
        )
        assert store.n_nodes == 6

    def test_overwrite_semantics(self, tmp_path):
        path = tmp_path / "store"
        ingest_arrays(path, np.array([0]), np.array([1]),
                      np.array([1.0]), n_nodes=2)
        with pytest.raises(GraphError, match="already exists"):
            EdgeStoreWriter(path, n_nodes=2)
        store = ingest_arrays(
            path, np.array([1]), np.array([0]), np.array([2.0]),
            n_nodes=2, overwrite=True,
        )
        assert store.csr_matrix()[1, 0] == 2.0


class TestEdgeStoreOpen:
    def test_missing_store_errors(self, tmp_path):
        with pytest.raises(GraphError, match="no edge store"):
            EdgeStore(tmp_path / "nope")

    def test_corrupt_meta_errors(self, tmp_path):
        path = tmp_path / "store"
        path.mkdir()
        (path / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(GraphError, match="is not a repro-edgestore"):
            EdgeStore(path)

    def test_scipy_matrices_share_memmap_pages(self, tmp_path):
        """Zero-copy contract: the scipy wrappers must reference the
        store's files, not resident copies."""
        n, m = 500, 20_000
        src, dst, weight = _random_arcs(n, m, seed=3)
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=n
        )
        csr = store.csr_matrix(mmap=True)
        csc = store.csc_matrix(mmap=True)
        for array in (csr.indptr, csr.indices, csr.data,
                      csc.indptr, csc.indices, csc.data):
            assert memmap_descriptor(array) is not None
        assert isinstance(csr, sp.csr_matrix)
        assert isinstance(csc, sp.csc_matrix)

    def test_array_nbytes_counts_all_arrays(self, tmp_path):
        store = ingest_arrays(
            tmp_path / "store",
            np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0]),
            n_nodes=3,
        )
        total = sum(
            part.nbytes
            for group in (store.csr_arrays(), store.csc_arrays())
            for part in group
        ) + store.arc_arrays()[0].nbytes
        assert store.array_nbytes() == total


class TestIngestEdgelist:
    def test_text_round_trip(self, tmp_path):
        text = tmp_path / "arcs.txt"
        text.write_text(
            "# comment\n"
            "0 1 2.5\n"
            "1 2\n"
            "\n"
            "0 1 0.5\n"
        )
        store = ingest_edgelist(tmp_path / "store", text)
        matrix = store.csr_matrix()
        assert matrix[0, 1] == 3.0  # duplicates merged
        assert matrix[1, 2] == 1.0  # default weight

    def test_bad_line_names_location(self, tmp_path):
        text = tmp_path / "arcs.txt"
        text.write_text("0 1\nnot-an-arc\n")
        with pytest.raises(GraphError, match=r"arcs\.txt:2"):
            ingest_edgelist(tmp_path / "store", text)

    def test_chunked_streaming_parity(self, tmp_path):
        lines = [f"{i % 17} {(i * 7) % 17} {1 + i % 3}" for i in range(500)]
        text = tmp_path / "arcs.txt"
        text.write_text("\n".join(lines) + "\n")
        small = ingest_edgelist(
            tmp_path / "small", text, chunk_lines=37
        )
        big = ingest_edgelist(tmp_path / "big", text)
        for part in zip(small.csr_arrays(), big.csr_arrays()):
            assert np.array_equal(*part)


class TestIngestUniformRandom:
    def test_shape_and_determinism(self, tmp_path):
        a = ingest_uniform_random(tmp_path / "a", 1000, 4, seed=5)
        b = ingest_uniform_random(tmp_path / "b", 1000, 4, seed=5)
        assert a.n_nodes == 1000
        # sampling with replacement merges a few duplicates
        assert 0.98 * 4000 <= a.n_arcs <= 4000
        for part in zip(a.csr_arrays(), b.csr_arrays()):
            assert np.array_equal(*part)

    def test_no_self_loops(self, tmp_path):
        store = ingest_uniform_random(tmp_path / "s", 50, 3, seed=1)
        indptr, indices, _ = store.csr_arrays()
        src = np.repeat(np.arange(50), np.diff(indptr))
        assert not np.any(src == indices)


class TestFromEdgestore:
    def test_graph_matches_resident_build(self, tmp_path):
        n, m = 300, 3_000
        src, dst, weight = _random_arcs(n, m, seed=4)
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=n
        )
        mmap_graph = WeightedDiGraph.from_edgestore(store, mmap=True)
        resident = WeightedDiGraph.from_arrays(
            src, dst, weight, n_nodes=n
        )
        assert mmap_graph.n_nodes == resident.n_nodes
        assert mmap_graph.n_arcs == resident.n_arcs
        csr, expected = mmap_graph.to_csr(), resident.to_csr()
        assert np.array_equal(csr.indptr, expected.indptr)
        assert np.array_equal(csr.indices, expected.indices)
        assert np.array_equal(csr.data, expected.data)

    def test_accepts_path_and_stays_memmapped(self, tmp_path):
        src, dst, weight = _random_arcs(20, 100, seed=6)
        ingest_arrays(tmp_path / "store", src, dst, weight, n_nodes=20)
        graph = WeightedDiGraph.from_edgestore(tmp_path / "store")
        assert memmap_descriptor(graph.to_csr().data) is not None
        assert memmap_descriptor(graph.to_csc().data) is not None

    def test_graph_operations_work(self, tmp_path):
        src = np.array([0, 0, 1])
        dst = np.array([1, 2, 2])
        weight = np.array([1.0, 2.0, 3.0])
        store = ingest_arrays(
            tmp_path / "store", src, dst, weight, n_nodes=3
        )
        graph = WeightedDiGraph.from_edgestore(store)
        assert graph.out_degree(0) == 2
        assert sorted(graph.successors(0)) == [1, 2]
        assert graph.weight(1, 2) == 3.0
