"""Tests for repro.graphs.digraph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph


class TestConstruction:
    def test_add_node_default_labels(self):
        graph = WeightedDiGraph()
        assert graph.add_node() == 0
        assert graph.add_node() == 1
        assert graph.labels() == [0, 1]

    def test_add_node_idempotent(self):
        graph = WeightedDiGraph()
        assert graph.add_node("a") == graph.add_node("a") == 0

    def test_add_edge_creates_nodes(self):
        graph = WeightedDiGraph()
        graph.add_edge("x", "y", 2.5)
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.weight("x", "y") == 2.5

    def test_zero_weight_means_no_edge(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(0, 1, 0.0)
        assert not graph.has_edge(0, 1)

    def test_overwrite_weight(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.weight(0, 1) == 9.0
        assert graph.n_edges == 1


class TestDirectedness:
    def test_directed_one_way(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_undirected_both_ways(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 2.0)
        assert graph.weight(1, 0) == 2.0
        assert graph.n_edges == 1
        assert graph.n_arcs == 2

    def test_undirected_edges_iter_once(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert len(list(graph.edges())) == 2

    def test_self_loop(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 0, 5.0)
        assert graph.n_edges == 1
        assert graph.weight(0, 0) == 5.0


class TestRemoval:
    def test_remove_edge(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)

    def test_remove_missing_raises(self):
        graph = WeightedDiGraph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(GraphError):
            graph.remove_edge(0, 1)

    def test_remove_missing_ok(self):
        graph = WeightedDiGraph()
        graph.remove_edge("a", "b", missing_ok=True)

    def test_remove_undirected_removes_both(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1)
        graph.remove_edge(1, 0)
        assert graph.n_arcs == 0


class TestQueries:
    def test_degrees(self, small_directed):
        assert small_directed.out_degree(0) == 2
        assert small_directed.out_degree(0, weighted=True) == 3.0
        assert small_directed.in_degree(3) == 2
        assert small_directed.in_degree(3, weighted=True) == 3.0

    def test_successors_predecessors(self, small_directed):
        assert set(small_directed.successors(0)) == {1, 2}
        assert set(small_directed.predecessors(5)) == {4, 2}

    def test_unknown_node_raises(self):
        graph = WeightedDiGraph()
        with pytest.raises(GraphError):
            graph.index_of("nope")

    def test_total_weight(self, small_directed):
        assert small_directed.total_weight() == pytest.approx(14.5)

    def test_contains_and_len(self, small_directed):
        assert 0 in small_directed
        assert "?" not in small_directed
        assert len(small_directed) == 6


class TestMatrixViews:
    def test_csr_matches_weights(self, small_directed):
        matrix = small_directed.to_csr()
        assert matrix[0, 1] == 2.0
        assert matrix[1, 0] == 0.0
        assert matrix.shape == (6, 6)

    def test_csr_cache_invalidation(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 1.0)
        first = graph.to_csr()
        graph.add_edge(1, 0, 2.0)
        second = graph.to_csr()
        assert first.nnz == 1 and second.nnz == 2

    def test_undirected_symmetric(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 2, 1.0)
        dense = graph.to_dense()
        assert np.allclose(dense, dense.T)


class TestConversions:
    def test_from_scipy_roundtrip(self):
        matrix = sp.csr_matrix(
            np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 1.0], [3.0, 0.0, 0.0]])
        )
        graph = WeightedDiGraph.from_scipy(matrix)
        assert np.allclose(graph.to_dense(), matrix.toarray())

    def test_from_scipy_nonsquare_raises(self):
        with pytest.raises(GraphError):
            WeightedDiGraph.from_scipy(sp.csr_matrix((2, 3)))

    def test_networkx_roundtrip(self, karate):
        back = WeightedDiGraph.from_networkx(karate.to_networkx())
        assert back.n_nodes == karate.n_nodes
        assert back.n_edges == karate.n_edges
        assert back.directed == karate.directed

    def test_from_edges_with_isolated(self):
        graph = WeightedDiGraph.from_edges([(0, 1)], n_nodes=4)
        assert graph.n_nodes == 4
        assert graph.out_degree(3) == 0

    def test_copy_independent(self, small_directed):
        clone = small_directed.copy()
        clone.add_edge(5, 0, 1.0)
        assert not small_directed.has_edge(5, 0)

    def test_reverse(self, small_directed):
        rev = small_directed.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.weight(3, 1) == 1.0

    def test_as_undirected_sums_antiparallel(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 0, 3.0)
        und = graph.as_undirected()
        assert und.weight(0, 1) == 5.0
        assert und.weight(1, 0) == 5.0

    def test_as_undirected_of_undirected_is_copy(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 2.0)
        und = graph.as_undirected()
        assert und.weight(0, 1) == 2.0


class TestFromArrays:
    def test_directed_equals_from_edges(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 3)]
        src = np.array([u for u, _ in edges])
        dst = np.array([v for _, v in edges])
        bulk = WeightedDiGraph.from_arrays(src, dst, n_nodes=4)
        slow = WeightedDiGraph.from_edges(edges, n_nodes=4)
        assert np.allclose(bulk.to_csr().toarray(), slow.to_csr().toarray())
        assert bulk.n_nodes == 4 and bulk.n_edges == 4

    def test_undirected_symmetrizes(self):
        bulk = WeightedDiGraph.from_arrays(
            np.array([0, 1]), np.array([1, 2]),
            np.array([2.0, 3.0]), n_nodes=3, directed=False,
        )
        dense = bulk.to_csr().toarray()
        assert np.allclose(dense, dense.T)
        assert bulk.weight(1, 0) == 2.0
        assert bulk.n_edges == 2

    def test_self_loop_stored_once_undirected(self):
        bulk = WeightedDiGraph.from_arrays(
            np.array([0, 0]), np.array([0, 1]), n_nodes=2, directed=False
        )
        assert bulk.to_csr()[0, 0] == 1.0
        assert bulk.n_edges == 2  # loop + edge

    def test_duplicates_sum(self):
        bulk = WeightedDiGraph.from_arrays(
            np.array([0, 0]), np.array([1, 1]), np.array([1.5, 2.5]),
            n_nodes=2,
        )
        assert bulk.weight(0, 1) == 4.0

    def test_zero_weights_dropped(self):
        bulk = WeightedDiGraph.from_arrays(
            np.array([0, 1]), np.array([1, 2]), np.array([0.0, 2.0]),
            n_nodes=3,
        )
        assert not bulk.has_edge(0, 1)
        assert bulk.n_edges == 1

    def test_labels_assigned(self):
        bulk = WeightedDiGraph.from_arrays(
            np.array([0]), np.array([1]), n_nodes=2, labels=["a", "b"]
        )
        assert bulk.index_of("b") == 1
        assert bulk.label_of(0) == "a"
        assert bulk.has_edge("a", "b")

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            WeightedDiGraph.from_arrays(
                np.array([0]), np.array([5]), n_nodes=3
            )
        with pytest.raises(GraphError):
            WeightedDiGraph.from_arrays(np.array([-1]), np.array([0]),
                                        n_nodes=2)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            WeightedDiGraph.from_arrays(np.array([0, 1]), np.array([1]))
        with pytest.raises(GraphError):
            WeightedDiGraph.from_arrays(
                np.array([0]), np.array([1]), np.array([1.0, 2.0])
            )

    def test_inferred_node_count(self):
        bulk = WeightedDiGraph.from_arrays(np.array([0, 4]), np.array([2, 1]))
        assert bulk.n_nodes == 5

    def test_empty(self):
        bulk = WeightedDiGraph.from_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            n_nodes=3,
        )
        assert bulk.n_nodes == 3
        assert bulk.n_edges == 0


class TestFromArraysLaziness:
    """Array-built graphs defer dicts/labels until actually needed."""

    def _bulk(self):
        return WeightedDiGraph.from_arrays(
            np.array([0, 1, 2]), np.array([1, 2, 0]), n_nodes=3
        )

    def test_csr_path_stays_lazy(self):
        graph = self._bulk()
        graph.to_csr()
        graph.to_csc()
        assert graph.n_nodes == 3
        assert graph.n_arcs == 3
        assert graph.n_edges == 3
        assert graph.has_node(2) and not graph.has_node(7)
        assert 1 in graph and "x" not in graph
        assert graph.index_of(1) == 1
        assert graph.label_of(2) == 2
        assert graph.labels() == [0, 1, 2]
        # None of the above touched the dict-of-dicts or label table.
        assert graph._succ is None and graph._labels is None

    def test_mutation_materializes(self):
        graph = self._bulk()
        graph.add_edge(0, 2, 5.0)
        assert graph.weight(0, 2) == 5.0
        assert graph.weight(0, 1) == 1.0  # original arcs survived
        assert graph.n_arcs == 4

    def test_removal_materializes(self):
        graph = self._bulk()
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.n_arcs == 2

    def test_neighbor_queries_materialize(self):
        graph = self._bulk()
        assert list(graph.successors(0)) == [1]
        assert list(graph.predecessors(0)) == [2]
        assert graph.out_degree(0) == 1.0
        assert sorted(graph.edges()) == [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]

    def test_copy_preserves_laziness_and_independence(self):
        graph = self._bulk()
        clone = graph.copy()
        assert clone._succ is None
        clone.add_edge(0, 2, 9.0)
        assert not graph.has_edge(0, 2)
        assert clone.weight(0, 2) == 9.0

    def test_reverse_lazy(self):
        graph = self._bulk()
        rev = graph.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert np.allclose(
            rev.to_csr().toarray(), graph.to_csr().toarray().T
        )

    def test_add_node_after_bulk(self):
        graph = self._bulk()
        index = graph.add_node("extra")
        assert index == 3
        assert graph.n_nodes == 4
        graph.add_edge("extra", 0, 2.0)
        assert graph.weight("extra", 0) == 2.0

    def test_coloring_consumes_lazy_graph(self):
        from repro.core.rothko import q_color

        graph = WeightedDiGraph.from_arrays(
            np.array([0, 0, 1, 2, 3]), np.array([1, 2, 3, 3, 0]),
            n_nodes=4,
        )
        result = q_color(graph, n_colors=3)
        assert result.n_colors <= 3
        assert graph._succ is None  # the engine only needed the CSR

    def test_reverse_owns_its_buffers(self):
        """The lazy reverse must not alias the source graph's cached
        CSR/CSC data (a shared transpose view would let writes leak)."""
        graph = self._bulk()
        rev = graph.reverse()
        rev.to_csr().data[0] = 99.0
        assert graph.to_csr().data.max() == 1.0
        assert graph.to_csc().data.max() == 1.0

    def test_zero_sum_duplicates_removed(self):
        """Duplicate weights that cancel to zero must vanish entirely
        (Sec. 3: zero means "no edge", matching add_edge semantics)."""
        graph = WeightedDiGraph.from_arrays(
            np.array([0, 0, 1]), np.array([1, 1, 2]),
            np.array([1.0, -1.0, 2.0]), n_nodes=3,
        )
        assert not graph.has_edge(0, 1)
        assert graph.weight(0, 1) == 0.0
        assert graph.n_edges == 1
        assert graph.to_csr().nnz == 1

    def test_single_edge_probes_stay_lazy(self):
        """weight()/has_edge() answer off the CSR without building the
        dict-of-dicts adjacency."""
        graph = self._bulk()
        assert graph.weight(0, 1) == 1.0
        assert graph.weight(1, 0) == 0.0
        assert graph.has_edge(2, 0)
        assert not graph.has_edge(0, 2)
        assert graph._succ is None

    def test_labeled_lazy_copy_and_reverse(self):
        """Label tables don't force the dict-of-dicts build on copy()
        or reverse(): the CSR snapshot is cloned instead."""
        graph = WeightedDiGraph.from_arrays(
            np.array([0, 1]), np.array([1, 2]), n_nodes=3,
            labels=["a", "b", "c"],
        )
        clone = graph.copy()
        assert clone._succ is None
        assert clone.label_of(2) == "c"
        clone.add_edge("a", "c", 4.0)
        assert not graph.has_edge("a", "c")
        rev = graph.reverse()
        assert rev._succ is None
        assert rev.has_edge("b", "a") and not rev.has_edge("a", "b")


class TestIndexCoercion:
    """from_arrays accepts any integer-representable dtype and names
    the offending arc when coercion to int64 is lossy."""

    def test_float_whole_numbers_coerce(self):
        graph = WeightedDiGraph.from_arrays(
            np.array([0.0, 1.0]), np.array([1.0, 2.0]), n_nodes=3
        )
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)

    def test_small_unsigned_and_int32_coerce(self):
        graph = WeightedDiGraph.from_arrays(
            np.array([0, 1], dtype=np.uint16),
            np.array([1, 0], dtype=np.int32),
            n_nodes=2,
        )
        assert graph.n_edges == 2

    def test_fractional_float_names_arc(self):
        with pytest.raises(GraphError, match=r"arc 1 has src = 2.5"):
            WeightedDiGraph.from_arrays(
                np.array([0.0, 2.5]), np.array([1.0, 1.0]), n_nodes=3
            )

    def test_nan_rejected(self):
        with pytest.raises(GraphError, match="not representable"):
            WeightedDiGraph.from_arrays(
                np.array([0.0, np.nan]), np.array([1.0, 1.0]), n_nodes=3
            )

    def test_uint64_overflow_names_arc(self):
        big = np.iinfo(np.uint64).max
        with pytest.raises(GraphError, match="dst"):
            WeightedDiGraph.from_arrays(
                np.array([0, 0], dtype=np.uint64),
                np.array([1, big], dtype=np.uint64),
                n_nodes=2,
            )

    def test_out_of_range_names_arc(self):
        with pytest.raises(
            GraphError, match=r"out of range \[0, 3\): arc 1: 1 -> 7"
        ):
            WeightedDiGraph.from_arrays(
                np.array([0, 1]), np.array([1, 7]), n_nodes=3
            )

    def test_negative_endpoint_names_arc(self):
        with pytest.raises(GraphError, match=r"arc 0: -1 -> 1"):
            WeightedDiGraph.from_arrays(
                np.array([-1]), np.array([1]), n_nodes=2
            )
