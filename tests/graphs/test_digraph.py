"""Tests for repro.graphs.digraph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph


class TestConstruction:
    def test_add_node_default_labels(self):
        graph = WeightedDiGraph()
        assert graph.add_node() == 0
        assert graph.add_node() == 1
        assert graph.labels() == [0, 1]

    def test_add_node_idempotent(self):
        graph = WeightedDiGraph()
        assert graph.add_node("a") == graph.add_node("a") == 0

    def test_add_edge_creates_nodes(self):
        graph = WeightedDiGraph()
        graph.add_edge("x", "y", 2.5)
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.weight("x", "y") == 2.5

    def test_zero_weight_means_no_edge(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(0, 1, 0.0)
        assert not graph.has_edge(0, 1)

    def test_overwrite_weight(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.weight(0, 1) == 9.0
        assert graph.n_edges == 1


class TestDirectedness:
    def test_directed_one_way(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_undirected_both_ways(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 2.0)
        assert graph.weight(1, 0) == 2.0
        assert graph.n_edges == 1
        assert graph.n_arcs == 2

    def test_undirected_edges_iter_once(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert len(list(graph.edges())) == 2

    def test_self_loop(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 0, 5.0)
        assert graph.n_edges == 1
        assert graph.weight(0, 0) == 5.0


class TestRemoval:
    def test_remove_edge(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)

    def test_remove_missing_raises(self):
        graph = WeightedDiGraph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(GraphError):
            graph.remove_edge(0, 1)

    def test_remove_missing_ok(self):
        graph = WeightedDiGraph()
        graph.remove_edge("a", "b", missing_ok=True)

    def test_remove_undirected_removes_both(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1)
        graph.remove_edge(1, 0)
        assert graph.n_arcs == 0


class TestQueries:
    def test_degrees(self, small_directed):
        assert small_directed.out_degree(0) == 2
        assert small_directed.out_degree(0, weighted=True) == 3.0
        assert small_directed.in_degree(3) == 2
        assert small_directed.in_degree(3, weighted=True) == 3.0

    def test_successors_predecessors(self, small_directed):
        assert set(small_directed.successors(0)) == {1, 2}
        assert set(small_directed.predecessors(5)) == {4, 2}

    def test_unknown_node_raises(self):
        graph = WeightedDiGraph()
        with pytest.raises(GraphError):
            graph.index_of("nope")

    def test_total_weight(self, small_directed):
        assert small_directed.total_weight() == pytest.approx(14.5)

    def test_contains_and_len(self, small_directed):
        assert 0 in small_directed
        assert "?" not in small_directed
        assert len(small_directed) == 6


class TestMatrixViews:
    def test_csr_matches_weights(self, small_directed):
        matrix = small_directed.to_csr()
        assert matrix[0, 1] == 2.0
        assert matrix[1, 0] == 0.0
        assert matrix.shape == (6, 6)

    def test_csr_cache_invalidation(self):
        graph = WeightedDiGraph()
        graph.add_edge(0, 1, 1.0)
        first = graph.to_csr()
        graph.add_edge(1, 0, 2.0)
        second = graph.to_csr()
        assert first.nnz == 1 and second.nnz == 2

    def test_undirected_symmetric(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 2, 1.0)
        dense = graph.to_dense()
        assert np.allclose(dense, dense.T)


class TestConversions:
    def test_from_scipy_roundtrip(self):
        matrix = sp.csr_matrix(
            np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 1.0], [3.0, 0.0, 0.0]])
        )
        graph = WeightedDiGraph.from_scipy(matrix)
        assert np.allclose(graph.to_dense(), matrix.toarray())

    def test_from_scipy_nonsquare_raises(self):
        with pytest.raises(GraphError):
            WeightedDiGraph.from_scipy(sp.csr_matrix((2, 3)))

    def test_networkx_roundtrip(self, karate):
        back = WeightedDiGraph.from_networkx(karate.to_networkx())
        assert back.n_nodes == karate.n_nodes
        assert back.n_edges == karate.n_edges
        assert back.directed == karate.directed

    def test_from_edges_with_isolated(self):
        graph = WeightedDiGraph.from_edges([(0, 1)], n_nodes=4)
        assert graph.n_nodes == 4
        assert graph.out_degree(3) == 0

    def test_copy_independent(self, small_directed):
        clone = small_directed.copy()
        clone.add_edge(5, 0, 1.0)
        assert not small_directed.has_edge(5, 0)

    def test_reverse(self, small_directed):
        rev = small_directed.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.weight(3, 1) == 1.0

    def test_as_undirected_sums_antiparallel(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 0, 3.0)
        und = graph.as_undirected()
        assert und.weight(0, 1) == 5.0
        assert und.weight(1, 0) == 5.0

    def test_as_undirected_of_undirected_is_copy(self):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 2.0)
        und = graph.as_undirected()
        assert und.weight(0, 1) == 2.0
