"""Tests for repro.graphs.ops."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.ops import (
    bipartite_block,
    degree_vector,
    induced_subgraph,
    perturb_add_random_edges,
)


class TestDegreeVector:
    def test_out_weighted(self, small_directed):
        degrees = degree_vector(small_directed, weighted=True, direction="out")
        assert degrees[0] == pytest.approx(3.0)

    def test_in_unweighted(self, small_directed):
        degrees = degree_vector(small_directed, weighted=False, direction="in")
        assert degrees[3] == 2.0

    def test_bad_direction(self, small_directed):
        with pytest.raises(ValueError):
            degree_vector(small_directed, direction="sideways")


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, small_directed):
        sub = induced_subgraph(small_directed, [0, 1, 2])
        assert sub.n_nodes == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_node(3)

    def test_unknown_label(self, small_directed):
        with pytest.raises(GraphError):
            induced_subgraph(small_directed, [0, 99])


class TestBipartiteBlock:
    def test_extracts_weights(self, small_directed):
        block = bipartite_block(small_directed, [0, 1], [2, 3])
        assert block.matrix[0, 0] == 1.0  # edge 0->2
        assert block.matrix[1, 1] == 1.0  # edge 1->3
        # edges into {2, 3} from {0, 1}: 0->2 (1.0), 1->2 (3.0), 1->3 (1.0)
        assert block.total_weight() == pytest.approx(5.0)


class TestPerturb:
    def test_adds_exact_count(self):
        graph = erdos_renyi(40, 0.05, seed=1)
        before = graph.n_edges
        perturbed = perturb_add_random_edges(graph, 10, seed=2)
        assert perturbed.n_edges == before + 10
        assert graph.n_edges == before  # original untouched

    def test_impossible_count_raises(self):
        graph = erdos_renyi(4, 1.0, seed=0)  # complete graph
        with pytest.raises(GraphError):
            perturb_add_random_edges(graph, 1, seed=0)

    def test_too_few_nodes(self):
        graph = WeightedDiGraph()
        graph.add_node(0)
        with pytest.raises(GraphError):
            perturb_add_random_edges(graph, 1)

    def test_deterministic(self):
        graph = erdos_renyi(30, 0.1, seed=5)
        a = perturb_add_random_edges(graph, 5, seed=9)
        b = perturb_add_random_edges(graph, 5, seed=9)
        assert set(a.edges()) == set(b.edges())
