"""Tests for repro.graphs.bipartite."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.bipartite import BipartiteGraph


class TestBasics:
    def test_shape_and_sums(self):
        graph = BipartiteGraph(np.array([[1.0, 2.0], [0.0, 3.0]]))
        assert (graph.n_left, graph.n_right) == (2, 2)
        assert graph.total_weight() == 6.0
        assert np.allclose(graph.row_sums(), [3.0, 3.0])
        assert np.allclose(graph.col_sums(), [1.0, 5.0])

    def test_block_weight(self):
        graph = BipartiteGraph(np.arange(12, dtype=float).reshape(3, 4))
        assert graph.block_weight([0, 2], [1, 3]) == 1.0 + 3.0 + 9.0 + 11.0

    def test_weight_lookup(self):
        graph = BipartiteGraph(np.array([[0.0, 7.0]]))
        assert graph.weight(0, 1) == 7.0
        assert graph.weight(0, 0) == 0.0


class TestBiregularity:
    def test_biregular_construction(self):
        graph = BipartiteGraph.biregular(6, 4, 2)
        assert graph.is_biregular()
        assert np.allclose(graph.row_sums(), 2.0)
        assert np.allclose(graph.col_sums(), 3.0)

    def test_biregular_bad_divisibility(self):
        with pytest.raises(GraphError):
            BipartiteGraph.biregular(5, 3, 2)

    def test_biregular_excess_degree(self):
        with pytest.raises(GraphError):
            BipartiteGraph.biregular(2, 2, 3)

    def test_not_biregular(self):
        graph = BipartiteGraph(np.array([[1.0, 0.0], [1.0, 1.0]]))
        assert not graph.is_biregular()
        assert graph.regularity_error() == pytest.approx(1.0)

    def test_regularity_error_zero_for_biregular(self):
        graph = BipartiteGraph.biregular(4, 4, 2)
        assert graph.regularity_error() == 0.0

    def test_transpose(self):
        graph = BipartiteGraph(np.array([[1.0, 2.0]]))
        transposed = graph.transpose()
        assert (transposed.n_left, transposed.n_right) == (2, 1)
        assert transposed.weight(1, 0) == 2.0
