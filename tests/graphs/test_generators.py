"""Tests for repro.graphs.generators, including the paper's special graphs."""

import numpy as np
import pytest

from repro.core.partition import Coloring
from repro.core.qerror import max_q_err
from repro.core.refinement import stable_coloring
from repro.exceptions import GraphError
from repro.graphs import generators as gen


class TestKarate:
    def test_size(self):
        graph = gen.karate_club()
        assert graph.n_nodes == 34
        assert graph.n_edges == 78
        assert not graph.directed

    def test_matches_networkx(self):
        import networkx as nx

        ours = {
            frozenset((u - 1, v - 1)) for u, v, _ in gen.karate_club().edges()
        }
        theirs = {frozenset(e) for e in nx.karate_club_graph().edges()}
        assert ours == theirs


class TestRandomModels:
    def test_erdos_renyi_determinism(self):
        a = gen.erdos_renyi(50, 0.1, seed=3)
        b = gen.erdos_renyi(50, 0.1, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_erdos_renyi_extremes(self):
        assert gen.erdos_renyi(10, 0.0, seed=0).n_edges == 0
        assert gen.erdos_renyi(10, 1.0, seed=0).n_edges == 45

    def test_erdos_renyi_bad_p(self):
        with pytest.raises(GraphError):
            gen.erdos_renyi(10, 1.5)

    def test_barabasi_albert_edge_count(self):
        graph = gen.barabasi_albert(100, 3, seed=0)
        # m initial star edges + m per subsequent node
        assert graph.n_edges == 3 + 3 * 96
        assert graph.n_nodes == 100

    def test_barabasi_albert_bad_m(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert(5, 5)

    def test_powerlaw_cluster_size(self):
        graph = gen.powerlaw_cluster(80, 4, 0.5, seed=1)
        assert graph.n_nodes == 80
        assert graph.n_edges >= 4 * 70  # at least m per attached node

    def test_stochastic_block_structure(self):
        graph = gen.stochastic_block(
            [20, 20], [[1.0, 0.0], [0.0, 1.0]], seed=0
        )
        # No cross-block edges with p_out = 0.
        for u, v, _ in graph.edges():
            assert (u < 20) == (v < 20)

    def test_stochastic_block_bad_matrix(self):
        with pytest.raises(GraphError):
            gen.stochastic_block([5, 5], [[0.5]])


class TestDeterministicFamilies:
    def test_path(self):
        assert gen.path_graph(5).n_edges == 4

    def test_cycle(self):
        graph = gen.cycle_graph(5)
        assert graph.n_edges == 5
        assert all(graph.out_degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_star(self):
        graph = gen.star_graph(6)
        assert graph.n_edges == 6
        assert graph.out_degree(0) == 6

    def test_grid_2d(self):
        graph = gen.grid_2d(4, 3)
        assert graph.n_nodes == 12
        assert graph.n_edges == 3 * 3 + 4 * 2  # horizontal + vertical

    def test_grid_3d(self):
        graph = gen.grid_3d(2, 2, 2)
        assert graph.n_nodes == 8
        assert graph.n_edges == 12

    def test_biregular_bipartite(self):
        graph = gen.biregular_bipartite(6, 4, 2)
        lefts = [("L", i) for i in range(6)]
        rights = [("R", j) for j in range(4)]
        assert all(graph.out_degree(x) == 2 for x in lefts)
        assert all(graph.in_degree(y) == 3 for y in rights)

    def test_biregular_bipartite_rejects_colliding_degree(self):
        """out_degree > n_right would collide round-robin targets and
        silently degenerate the graph; it must raise instead."""
        with pytest.raises(GraphError):
            gen.biregular_bipartite(2, 2, 4)


class TestLiftedBiregular:
    def test_paper_sizes(self):
        graph, membership = gen.lifted_biregular(seed=7)
        assert graph.n_nodes == 1000
        assert graph.n_edges == 21_600
        assert membership.shape == (1000,)

    def test_groups_form_equitable_partition(self):
        graph, membership = gen.lifted_biregular(
            n_groups=12, group_size=5, template_edges=30, seed=3
        )
        coloring = Coloring(membership)
        assert max_q_err(graph.to_csr(), coloring) == 0.0

    def test_stable_coloring_equals_groups(self):
        graph, membership = gen.lifted_biregular(seed=7)
        stable = stable_coloring(graph.to_csr())
        assert stable.n_colors == 100

    def test_bad_lift_degree(self):
        with pytest.raises(GraphError):
            gen.lifted_biregular(lift_degree=0)

    def test_bad_template_edges(self):
        with pytest.raises(GraphError):
            gen.lifted_biregular(n_groups=5, template_edges=100)


class TestPathologicalFlowNetwork:
    def test_structure(self):
        graph, s, t = gen.pathological_flow_network(5)
        assert s == "s" and t == "t"
        # s, t plus (n-1) layers of n nodes
        assert graph.n_nodes == 2 + 4 * 5

    def test_layer_coloring_is_one_stable(self):
        n = 6
        graph, _, _ = gen.pathological_flow_network(n)
        coloring = Coloring(gen.pathological_layer_coloring(n))
        assert max_q_err(graph.to_csr(), coloring) == 1.0

    def test_too_small(self):
        with pytest.raises(GraphError):
            gen.pathological_flow_network(2)


class TestCentralityCounterexample:
    def test_same_stable_color(self):
        graph, u, v = gen.centrality_counterexample()
        coloring = stable_coloring(graph.to_csr())
        assert coloring.labels[u] == coloring.labels[v]

    def test_different_centrality(self):
        from repro.centrality.brandes import betweenness_centrality

        graph, u, v = gen.centrality_counterexample()
        scores = betweenness_centrality(graph)
        assert scores[u] != scores[v]


class TestTwoMaximalColorings:
    def test_structure(self):
        graph, bottoms = gen.two_maximal_colorings_graph(3)
        degrees = sorted(graph.out_degree(b) for b in bottoms)
        assert degrees == [3, 4, 5]

    def test_both_groupings_are_one_stable(self):
        """Fig. 6: both {1,2},{3} and {1},{2,3} are valid 1-stable
        colorings, and the fully coarse grouping {1,2,3} is not."""
        n = 3
        graph, bottoms = gen.two_maximal_colorings_graph(n)
        adjacency = graph.to_csr()
        top_indices = [
            i
            for i in range(graph.n_nodes)
            if graph.label_of(i) not in bottoms
        ]
        b_idx = [graph.index_of(b) for b in bottoms]

        def coloring_with(groups):
            labels = np.zeros(graph.n_nodes, dtype=np.int64)
            for i in top_indices:
                labels[i] = 0
            for color, group in enumerate(groups, start=1):
                for b in group:
                    labels[b_idx[b]] = color
            return Coloring(labels)

        first = coloring_with([[0, 1], [2]])
        second = coloring_with([[0], [1, 2]])
        merged = coloring_with([[0, 1, 2]])
        assert max_q_err(adjacency, first) <= 1.0
        assert max_q_err(adjacency, second) <= 1.0
        assert max_q_err(adjacency, merged) > 1.0

    def test_bad_n(self):
        with pytest.raises(GraphError):
            gen.two_maximal_colorings_graph(0)
