"""Tests for the Mehrotra interior-point solver and early stopping."""

import numpy as np
import pytest

from repro.lp.generators import fig3_example, transportation
from repro.lp.interior_point import (
    early_stopping_solve,
    interior_point_solve,
)
from repro.lp.scipy_backend import scipy_solve
from tests.lp.test_simplex import random_feasible_lp


class TestConvergence:
    def test_fig3(self):
        result = interior_point_solve(fig3_example())
        assert result.status == "optimal"
        assert result.objective == pytest.approx(128.157, abs=1e-2)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lps(self, seed):
        lp = random_feasible_lp(seed, m=8, n=6)
        expected, _ = scipy_solve(lp)
        result = interior_point_solve(lp)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(expected, rel=1e-4, abs=1e-4)

    def test_transportation(self):
        lp = transportation(5, 4, seed=1)
        expected, _ = scipy_solve(lp)
        result = interior_point_solve(lp)
        assert result.objective == pytest.approx(expected, rel=1e-4)

    def test_history_recorded(self):
        result = interior_point_solve(fig3_example())
        assert len(result.history) == result.iterations
        assert result.history[-1].duality_gap <= result.history[0].duality_gap


class TestCallback:
    def test_callback_sees_iterates(self):
        seen = []
        interior_point_solve(
            fig3_example(), callback=lambda it: seen.append(it) and False
        )
        assert len(seen) >= 2
        assert seen[0].iteration == 1

    def test_callback_can_stop(self):
        result = interior_point_solve(
            fig3_example(), callback=lambda it: it.iteration >= 3
        )
        assert result.status == "early_stopped"
        assert result.iterations == 3


class TestEarlyStopping:
    @pytest.mark.parametrize("target", [3.0, 1.5, 1.05])
    def test_certified_error_met(self, target):
        lp = fig3_example()
        optimum = 128.157
        result = early_stopping_solve(lp, target_ratio=target)
        assert result.status in ("early_stopped", "optimal")
        achieved = max(result.objective / optimum, optimum / result.objective)
        # The certificate bounds the error, with slack for near-feasibility.
        assert achieved <= target * 1.1

    def test_early_stop_is_faster(self):
        lp = random_feasible_lp(3, m=10, n=8)
        full = interior_point_solve(lp)
        stopped = early_stopping_solve(lp, target_ratio=2.0)
        assert stopped.iterations <= full.iterations

    def test_bad_target(self):
        with pytest.raises(ValueError):
            early_stopping_solve(fig3_example(), target_ratio=0.5)


class TestIterationLimit:
    def test_limit_reported(self):
        result = interior_point_solve(fig3_example(), max_iterations=1)
        assert result.status == "iteration_limit"
        assert result.iterations == 1
