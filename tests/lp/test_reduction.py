"""Tests for the quasi-stable LP reduction (Sec. 4.1), incl. Fig. 3."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.exceptions import LPError
from repro.lp.generators import fig3_example, planted_block_lp
from repro.lp.model import LinearProgram
from repro.lp.reduction import (
    approx_lp_opt,
    color_lp,
    reduce_lp,
)
from repro.lp.solve import solve_lp
from repro.utils.stats import ratio_error


@pytest.fixture
def fig3_colorings():
    """The paper's manual block partition: rows {1,2,3},{4,5}, objective
    row pinned; columns {1,2},{3}, RHS column pinned."""
    row_coloring = Coloring([0, 0, 0, 1, 1, 2])
    col_coloring = Coloring([0, 0, 1, 2])
    return row_coloring, col_coloring


class TestFig3WorkedExample:
    def test_reduced_matrix_matches_paper(self, fig3_colorings):
        lp = fig3_example()
        reduction = reduce_lp(lp, coloring=fig3_colorings)
        a_hat = reduction.reduced.a_matrix.toarray()
        expected = np.array(
            [
                [34 / np.sqrt(3 * 2), 5 / np.sqrt(3 * 1)],
                [9 / np.sqrt(2 * 2), 43 / np.sqrt(2 * 1)],
            ]
        )
        assert np.allclose(a_hat, expected)
        assert np.allclose(
            reduction.reduced.b,
            [61 / np.sqrt(3), 101 / np.sqrt(2)],
        )
        assert np.allclose(
            reduction.reduced.c, [19 / np.sqrt(2), 50 / np.sqrt(1)]
        )

    def test_block_coloring_is_one_stable(self, fig3_colorings):
        reduction = reduce_lp(fig3_example(), coloring=fig3_colorings)
        assert reduction.max_q_err == pytest.approx(1.0)

    def test_optimal_values(self, fig3_colorings):
        lp = fig3_example()
        exact = solve_lp(lp).objective
        reduction = reduce_lp(lp, coloring=fig3_colorings)
        reduced_opt = solve_lp(reduction.reduced).objective
        assert exact == pytest.approx(128.157, abs=1e-3)
        assert reduced_opt == pytest.approx(130.199, abs=1e-3)


class TestStableColoringExactness:
    """Theorem 2 at q = 0 (the Grohe et al. result): a stable coloring
    preserves the LP optimum exactly, in both reduction modes."""

    @pytest.mark.parametrize("mode", ["sqrt", "grohe"])
    def test_noiseless_planted_lp(self, mode):
        lp = planted_block_lp(
            40, 30, row_groups=4, col_groups=3, noise=0.0, seed=1
        )
        exact = solve_lp(lp).objective
        reduction = reduce_lp(lp, q=0.0, mode=mode)
        assert reduction.max_q_err == pytest.approx(0.0, abs=1e-9)
        reduced_opt = solve_lp(reduction.reduced).objective
        assert reduced_opt == pytest.approx(exact, rel=1e-6)

    @pytest.mark.parametrize("mode", ["sqrt", "grohe"])
    def test_lifted_solution_feasible_and_optimal(self, mode):
        lp = planted_block_lp(
            30, 24, row_groups=3, col_groups=3, noise=0.0, seed=2
        )
        exact = solve_lp(lp).objective
        result = approx_lp_opt(lp, q=0.0, mode=mode)
        lifted = result.x_lifted
        assert lp.is_feasible(lifted, tol=1e-6)
        assert lp.objective(lifted) == pytest.approx(exact, rel=1e-6)


class TestQuasiStableApproximation:
    def test_error_shrinks_with_colors(self):
        lp = planted_block_lp(
            60, 40, row_groups=6, col_groups=4, noise=0.1, seed=3
        )
        exact = solve_lp(lp).objective
        errors = []
        for budget in (6, 12, 40):
            result = approx_lp_opt(lp, n_colors=budget)
            errors.append(ratio_error(exact, result.value))
        assert errors[-1] <= errors[0] + 1e-9
        assert errors[-1] < 1.2

    def test_color_budget_counts_all_colors(self):
        lp = planted_block_lp(30, 20, 3, 2, seed=4)
        reduction = reduce_lp(lp, n_colors=9)
        assert reduction.n_colors <= 9


class TestColorLP:
    def test_pins_are_singletons(self):
        lp = fig3_example()
        rothko = color_lp(lp, n_colors=8)
        labels = rothko.coloring.labels
        # objective row node (index m) and RHS column node (last index).
        obj_color = labels[lp.n_rows]
        rhs_color = labels[-1]
        assert (labels == obj_color).sum() == 1
        assert (labels == rhs_color).sum() == 1

    def test_rows_and_columns_never_mix(self):
        lp = fig3_example()
        rothko = color_lp(lp, n_colors=8)
        labels = rothko.coloring.labels
        row_colors = set(labels[: lp.n_rows + 1].tolist())
        col_colors = set(labels[lp.n_rows + 1 :].tolist())
        assert row_colors.isdisjoint(col_colors)


class TestValidation:
    def test_row_coloring_size_check(self):
        lp = fig3_example()
        with pytest.raises(LPError):
            reduce_lp(lp, coloring=(Coloring([0, 1]), Coloring([0] * 4)))

    def test_unpinned_objective_rejected(self):
        lp = fig3_example()
        row_coloring = Coloring([0, 0, 0, 0, 0, 0])  # objective row mixed in
        col_coloring = Coloring([0, 0, 1, 2])
        with pytest.raises(LPError, match="singleton"):
            reduce_lp(lp, coloring=(row_coloring, col_coloring))

    def test_bad_mode(self, fig3_colorings):
        with pytest.raises(ValueError):
            reduce_lp(
                fig3_example(), coloring=fig3_colorings, mode="exotic"
            )

    def test_lift_shape_check(self, fig3_colorings):
        reduction = reduce_lp(fig3_example(), coloring=fig3_colorings)
        with pytest.raises(LPError):
            reduction.lift(np.zeros(7))

    def test_needs_stopping_rule(self):
        with pytest.raises(ValueError):
            approx_lp_opt(fig3_example())


class TestCompressionRatio:
    def test_reported_ratio(self, fig3_colorings):
        reduction = reduce_lp(fig3_example(), coloring=fig3_colorings)
        assert reduction.compression_ratio == pytest.approx(
            (5 * 3) / (2 * 2)
        )
