"""Tests for the structured LP generators."""

import numpy as np
import pytest

from repro.exceptions import LPError
from repro.lp.generators import (
    ex10_like,
    fig3_example,
    planted_block_lp,
    qap_like,
    supportcase_like,
    transportation,
)
from repro.lp.scipy_backend import scipy_solve


class TestFig3:
    def test_exact_data(self):
        lp = fig3_example()
        assert lp.a_matrix.toarray()[0].tolist() == [4.0, 8.0, 2.0]
        assert lp.b.tolist() == [20.0, 20.0, 21.0, 50.0, 51.0]
        assert lp.c.tolist() == [9.0, 10.0, 50.0]


class TestPlantedBlock:
    def test_shapes(self):
        lp = planted_block_lp(50, 30, 5, 3, seed=0)
        assert (lp.n_rows, lp.n_cols) == (50, 30)

    def test_deterministic(self):
        a = planted_block_lp(30, 20, 3, 2, seed=5)
        b = planted_block_lp(30, 20, 3, 2, seed=5)
        assert (a.a_matrix != b.a_matrix).nnz == 0
        assert np.array_equal(a.b, b.b)

    def test_solvable_and_bounded(self):
        lp = planted_block_lp(30, 20, 3, 2, seed=1)
        value, x = scipy_solve(lp)
        assert np.isfinite(value)
        assert value > 0

    def test_noiseless_has_stable_structure(self):
        """With noise = 0 the planted groups give a 0-error coloring of
        the extended matrix (checked via the reduction pipeline)."""
        from repro.lp.reduction import reduce_lp

        lp = planted_block_lp(24, 18, 3, 2, noise=0.0, seed=2)
        reduction = reduce_lp(lp, q=0.0)
        assert reduction.max_q_err == pytest.approx(0.0)
        # Far fewer colors than rows + cols.
        assert reduction.n_colors < (24 + 18) / 2

    def test_bad_density(self):
        with pytest.raises(LPError):
            planted_block_lp(10, 10, 2, 2, density=0.0)


class TestQAPLike:
    def test_shape_scaling(self):
        lp = qap_like(size=5, seed=0)
        assert lp.n_cols == 25
        assert lp.n_rows == 2 * 5 + 5 * 4 // 2

    def test_assignment_rows_bounded_by_one(self):
        lp = qap_like(size=4, seed=0)
        assert np.all(lp.b[:8] == 1.0)

    def test_solvable(self):
        value, x = scipy_solve(qap_like(size=4, seed=1))
        assert np.isfinite(value)
        assert value > 0


class TestShapeFamilies:
    def test_supportcase_is_wide(self):
        lp = supportcase_like(n_rows=40, n_cols=400, seed=0)
        assert lp.n_cols > 5 * lp.n_rows

    def test_ex10_is_tall(self):
        lp = ex10_like(n_rows=400, n_cols=60, seed=0)
        assert lp.n_rows > 5 * lp.n_cols

    def test_transportation_structure(self):
        lp = transportation(3, 4, seed=0)
        assert (lp.n_rows, lp.n_cols) == (7, 12)
        # Every variable appears in exactly one supply and one demand row.
        assert np.all(
            np.asarray(lp.a_matrix.sum(axis=0)).ravel() == 2.0
        )
