"""Tests for repro.lp.model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import LPError
from repro.lp.generators import fig3_example
from repro.lp.model import LinearProgram


class TestConstruction:
    def test_shapes(self):
        lp = fig3_example()
        assert (lp.n_rows, lp.n_cols) == (5, 3)
        assert lp.nnz == 15

    def test_b_shape_mismatch(self):
        with pytest.raises(LPError):
            LinearProgram(sp.csr_matrix((2, 3)), np.zeros(3), np.zeros(3))

    def test_c_shape_mismatch(self):
        with pytest.raises(LPError):
            LinearProgram(sp.csr_matrix((2, 3)), np.zeros(2), np.zeros(2))

    def test_dense_input_accepted(self):
        lp = LinearProgram(np.eye(2), np.ones(2), np.ones(2))
        assert lp.nnz == 2


class TestFeasibility:
    def test_zero_feasible(self):
        lp = fig3_example()
        assert lp.is_feasible(np.zeros(3))

    def test_violating_point(self):
        lp = fig3_example()
        assert not lp.is_feasible(np.array([100.0, 0.0, 0.0]))

    def test_negative_rejected(self):
        lp = fig3_example()
        assert not lp.is_feasible(np.array([-1.0, 0.0, 0.0]))

    def test_shape_check(self):
        lp = fig3_example()
        with pytest.raises(LPError):
            lp.is_feasible(np.zeros(5))

    def test_objective(self):
        lp = fig3_example()
        assert lp.objective(np.array([1.0, 1.0, 0.0])) == 19.0


class TestExtendedMatrix:
    def test_layout(self):
        lp = fig3_example()
        extended = lp.extended_matrix().toarray()
        assert extended.shape == (6, 4)
        assert np.allclose(extended[:5, :3], lp.a_matrix.toarray())
        assert np.allclose(extended[:5, 3], lp.b)
        assert np.allclose(extended[5, :3], lp.c)
        assert extended[5, 3] == 0.0  # infinity corner stored as 0

    def test_bipartite_adjacency(self):
        lp = fig3_example()
        adjacency = lp.bipartite_adjacency()
        size = (5 + 1) + (3 + 1)
        assert adjacency.shape == (size, size)
        # Arc from row 0 to column 1 carries A[0, 1] = 8.
        assert adjacency[0, 6 + 1] == 8.0
        # No arcs out of column nodes.
        assert adjacency[6:, :].nnz == 0


class TestScale:
    def test_scale_preserves_argmax(self):
        from repro.lp.solve import solve_lp

        lp = fig3_example()
        scaled = lp.scale(2.0)
        original = solve_lp(lp).objective
        doubled = solve_lp(scaled).objective
        # (2A) x <= 2b has the same feasible set; objective doubles.
        assert doubled == pytest.approx(2.0 * original)

    def test_bad_factor(self):
        with pytest.raises(LPError):
            fig3_example().scale(0.0)
