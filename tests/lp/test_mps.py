"""Tests for the MPS reader/writer."""

import numpy as np
import pytest

from repro.exceptions import LPError
from repro.lp.generators import fig3_example, transportation
from repro.lp.mps import read_mps, write_mps
from repro.lp.scipy_backend import scipy_solve


class TestRoundTrip:
    def test_fig3(self, tmp_path):
        lp = fig3_example()
        path = tmp_path / "fig3.mps"
        write_mps(lp, path)
        back = read_mps(path)
        assert (back.n_rows, back.n_cols) == (lp.n_rows, lp.n_cols)
        expected, _ = scipy_solve(lp)
        actual, _ = scipy_solve(back)
        assert actual == pytest.approx(expected)

    def test_transportation(self, tmp_path):
        lp = transportation(3, 3, seed=2)
        path = tmp_path / "transport.mps"
        write_mps(lp, path)
        back = read_mps(path)
        expected, _ = scipy_solve(lp)
        actual, _ = scipy_solve(back)
        assert actual == pytest.approx(expected)


class TestParsing:
    def test_minimization_negated(self, tmp_path):
        path = tmp_path / "min.mps"
        path.write_text(
            "NAME TEST\n"
            "ROWS\n"
            " N  OBJ\n"
            " L  R1\n"
            "COLUMNS\n"
            "    X1  OBJ  -1.0  R1  1.0\n"
            "RHS\n"
            "    RHS  R1  4.0\n"
            "ENDATA\n"
        )
        lp = read_mps(path)
        # min -x1 == max x1; optimum 4.
        value, _ = scipy_solve(lp)
        assert value == pytest.approx(4.0)

    def test_g_and_e_rows(self, tmp_path):
        path = tmp_path / "ge.mps"
        path.write_text(
            "NAME T\n"
            "OBJSENSE\n"
            "    MAX\n"
            "ROWS\n"
            " N  OBJ\n"
            " G  LOW\n"
            " E  EXACT\n"
            "COLUMNS\n"
            "    X  OBJ  1.0  LOW  1.0\n"
            "    X  EXACT  1.0\n"
            "RHS\n"
            "    RHS  LOW  1.0  EXACT  2.0\n"
            "ENDATA\n"
        )
        lp = read_mps(path)
        value, _ = scipy_solve(lp)
        assert value == pytest.approx(2.0)

    def test_up_bound_becomes_row(self, tmp_path):
        path = tmp_path / "ub.mps"
        path.write_text(
            "NAME T\n"
            "OBJSENSE\n"
            "    MAX\n"
            "ROWS\n"
            " N  OBJ\n"
            "COLUMNS\n"
            "    X  OBJ  1.0\n"
            "BOUNDS\n"
            " UP BND  X  3.5\n"
            "ENDATA\n"
        )
        lp = read_mps(path)
        value, _ = scipy_solve(lp)
        assert value == pytest.approx(3.5)

    def test_ranges_rejected(self, tmp_path):
        path = tmp_path / "ranges.mps"
        path.write_text(
            "NAME T\nROWS\n N OBJ\n L R1\nCOLUMNS\n    X OBJ 1 R1 1\n"
            "RANGES\n    RNG R1 5\nENDATA\n"
        )
        with pytest.raises(LPError):
            read_mps(path)

    def test_free_variable_rejected(self, tmp_path):
        path = tmp_path / "fr.mps"
        path.write_text(
            "NAME T\nROWS\n N OBJ\nCOLUMNS\n    X OBJ 1\n"
            "BOUNDS\n FR BND X\nENDATA\n"
        )
        with pytest.raises(LPError):
            read_mps(path)

    def test_no_objective_rejected(self, tmp_path):
        path = tmp_path / "noobj.mps"
        path.write_text("NAME T\nROWS\n L R1\nENDATA\n")
        with pytest.raises(LPError):
            read_mps(path)
