"""Tests for the dense two-phase simplex."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import LPInfeasibleError, LPUnboundedError
from repro.lp.generators import fig3_example, transportation
from repro.lp.model import LinearProgram
from repro.lp.scipy_backend import scipy_solve
from repro.lp.simplex import simplex_solve


def random_feasible_lp(seed: int, m: int = 6, n: int = 5) -> LinearProgram:
    """Random LP with A >= 0, b > 0 (so x = 0 is feasible and the LP is
    bounded whenever every column has a positive entry)."""
    generator = np.random.default_rng(seed)
    a_dense = generator.integers(0, 4, size=(m, n)).astype(float)
    # Ensure bounded: give every column at least one positive entry.
    for j in range(n):
        if a_dense[:, j].sum() == 0:
            a_dense[generator.integers(0, m), j] = 1.0
    b = generator.integers(5, 20, size=m).astype(float)
    c = generator.integers(1, 9, size=n).astype(float)
    return LinearProgram(sp.csr_matrix(a_dense), b, c)


class TestAgainstScipy:
    def test_fig3(self):
        lp = fig3_example()
        value, x, _ = simplex_solve(lp)
        assert value == pytest.approx(128.157, abs=1e-3)
        assert lp.is_feasible(x)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_lps(self, seed):
        lp = random_feasible_lp(seed)
        value, x, _ = simplex_solve(lp)
        expected, _ = scipy_solve(lp)
        assert value == pytest.approx(expected, abs=1e-7)
        assert lp.is_feasible(x)

    def test_transportation(self):
        lp = transportation(4, 5, seed=0)
        value, x, _ = simplex_solve(lp)
        expected, _ = scipy_solve(lp)
        assert value == pytest.approx(expected, abs=1e-6)


class TestPhase1:
    def test_negative_b_feasible(self):
        """A x <= b with negative b needs phase 1; x >= 1 style rows."""
        # maximize x1 subject to -x1 <= -2 (x1 >= 2), x1 <= 5
        lp = LinearProgram(
            sp.csr_matrix(np.array([[-1.0], [1.0]])),
            np.array([-2.0, 5.0]),
            np.array([1.0]),
        )
        value, x, _ = simplex_solve(lp)
        assert value == pytest.approx(5.0)
        assert x[0] == pytest.approx(5.0)

    def test_infeasible_detected(self):
        # x1 >= 3 and x1 <= 1 simultaneously.
        lp = LinearProgram(
            sp.csr_matrix(np.array([[-1.0], [1.0]])),
            np.array([-3.0, 1.0]),
            np.array([1.0]),
        )
        with pytest.raises(LPInfeasibleError):
            simplex_solve(lp)


class TestUnbounded:
    def test_unbounded_detected(self):
        # maximize x with no constraint on x.
        lp = LinearProgram(
            sp.csr_matrix(np.array([[0.0]])),
            np.array([1.0]),
            np.array([1.0]),
        )
        with pytest.raises(LPUnboundedError):
            simplex_solve(lp)


class TestDegenerate:
    def test_zero_objective(self):
        lp = LinearProgram(
            sp.csr_matrix(np.eye(2)), np.ones(2), np.zeros(2)
        )
        value, x, _ = simplex_solve(lp)
        assert value == 0.0

    def test_single_variable(self):
        lp = LinearProgram(
            sp.csr_matrix(np.array([[2.0]])),
            np.array([6.0]),
            np.array([3.0]),
        )
        value, x, _ = simplex_solve(lp)
        assert value == pytest.approx(9.0)
        assert x[0] == pytest.approx(3.0)
