"""Exporters: JSONL dumps, per-span aggregates, root coverage."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.obs import (
    Recorder,
    aggregate_spans,
    recording,
    render_summary,
    root_coverage,
    summary_rows,
    trace,
    write_jsonl,
)


def _recorded_workload() -> Recorder:
    with recording() as rec:
        with trace.span("run", n=5):
            for _ in range(3):
                with trace.span("step"):
                    time.sleep(0.001)
            obs.count("events", 3)
            obs.gauge("level", 2.5)
            obs.observe("latency_s", 0.01)
    return rec


class TestAggregate:
    def test_per_name_summary(self):
        rec = _recorded_workload()
        summary = aggregate_spans(rec.spans)
        assert summary["step"]["count"] == 3
        assert summary["run"]["count"] == 1
        assert summary["step"]["total_s"] >= 0.003
        assert summary["step"]["p50_s"] <= summary["step"]["p99_s"]
        assert "errors" not in summary["step"]

    def test_error_spans_are_counted(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with trace.span("fail"):
                    raise ValueError("no")
        assert aggregate_spans(rec.spans)["fail"]["errors"] == 1

    def test_summary_rows_sorted_by_total(self):
        rec = _recorded_workload()
        rows = summary_rows(rec.spans)
        totals = [row["total_s"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        assert rows[0]["span"] == "run"  # parent encloses the steps

    def test_root_coverage_of_nested_trace(self):
        rec = _recorded_workload()
        root_wall, coverage = root_coverage(rec.spans)
        assert root_wall > 0.0
        assert 0.0 < coverage <= 1.0

    def test_root_coverage_without_roots(self):
        assert root_coverage([]) == (0.0, 0.0)


class TestRenderSummary:
    def test_contains_spans_counters_and_coverage(self):
        rec = _recorded_workload()
        text = render_summary(rec, title="test trace")
        assert "test trace" in text
        assert "step" in text
        assert "events=3" in text
        assert "covered by direct child spans" in text

    def test_empty_recorder_renders_placeholder(self):
        assert "no spans" in render_summary(Recorder())


class TestWriteJsonl:
    def test_every_line_parses_and_counts_match(self, tmp_path):
        rec = _recorded_workload()
        destination = tmp_path / "trace.jsonl"
        lines_written = write_jsonl(rec, str(destination))
        lines = destination.read_text().splitlines()
        assert len(lines) == lines_written
        rows = [json.loads(line) for line in lines]
        meta = rows[0]
        assert meta["type"] == "meta"
        spans = [row for row in rows if row["type"] == "span"]
        metrics = [row for row in rows if row["type"] == "metric"]
        assert len(spans) == meta["spans"] == len(rec.spans)
        assert len(metrics) == (
            meta["counters"] + meta["gauges"] + meta["histograms"]
        )

    def test_span_rows_carry_nesting_and_relative_starts(self):
        rec = _recorded_workload()
        buffer = io.StringIO()
        write_jsonl(rec, buffer)
        rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
        spans = {row["name"]: row for row in rows if row["type"] == "span"}
        assert spans["step"]["parent_id"] == spans["run"]["span_id"]
        assert spans["run"]["parent_id"] is None
        assert all(
            row["start_s"] >= 0.0
            for row in rows
            if row["type"] == "span"
        )

    def test_non_json_native_attrs_are_stringified(self, tmp_path):
        with recording() as rec:
            with trace.span("odd", payload={1, 2}):
                pass
        destination = tmp_path / "trace.jsonl"
        write_jsonl(rec, str(destination))  # must not raise
        rows = [
            json.loads(line)
            for line in destination.read_text().splitlines()
        ]
        (span_row,) = [row for row in rows if row["type"] == "span"]
        assert isinstance(span_row["attrs"]["payload"], str)

    def test_metric_rows_round_trip_values(self, tmp_path):
        rec = _recorded_workload()
        destination = tmp_path / "trace.jsonl"
        write_jsonl(rec, str(destination))
        rows = [
            json.loads(line)
            for line in destination.read_text().splitlines()
        ]
        counters = {
            row["name"]: row["value"]
            for row in rows
            if row["type"] == "metric" and row["kind"] == "counter"
        }
        histograms = {
            row["name"]: row
            for row in rows
            if row["type"] == "metric" and row["kind"] == "histogram"
        }
        assert counters["events"] == 3
        assert histograms["latency_s"]["count"] == 1
