"""Counters, gauges, and the fixed-bucket histogram."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry, recording


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("splits")
        registry.count("splits")
        registry.count("cells", 40)
        assert registry.counter_value("splits") == 2
        assert registry.counter_value("cells") == 40
        assert registry.counter_value("missing") == 0

    def test_gauges_keep_latest(self):
        registry = MetricsRegistry()
        registry.gauge("max_q_err", 9.0)
        registry.gauge("max_q_err", 4.5)
        assert registry.gauge_value("max_q_err") == 4.5
        assert registry.gauge_value("missing") is None

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.gauge("b", 2.0)
        registry.observe("c", 0.005)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.count("a")
        snapshot = registry.snapshot()
        snapshot["counters"]["a"] = 999
        assert registry.counter_value("a") == 1

    def test_module_helpers_route_to_active_recorder(self):
        with recording() as rec:
            obs.count("events", 3)
            obs.gauge("level", 7.0)
            obs.observe("latency_s", 0.5)
        snapshot = rec.snapshot()
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["level"] == 7.0
        assert snapshot["histograms"]["latency_s"]["count"] == 1

    def test_module_helpers_are_noops_when_disabled(self):
        obs.count("never")
        obs.gauge("never", 1.0)
        obs.observe("never", 1.0)
        # nothing to assert beyond "did not raise": the null recorder
        # records nothing by construction
        assert not obs.enabled()


class TestHistogram:
    def test_bounds_must_be_sorted_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 0.5))

    def test_bucket_assignment_and_overflow(self):
        histogram = Histogram((1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1]  # <=1.0 twice, <=10.0 once
        assert histogram.overflow == 1
        assert histogram.total == 4
        assert histogram.sum == pytest.approx(56.5)
        assert histogram.min == 0.5
        assert histogram.max == 50.0

    def test_quantile_upper_bound_rule(self):
        histogram = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 20.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 10.0
        # Past the last populated bound the estimate falls back to max.
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_of_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_as_dict_shape(self):
        histogram = Histogram()
        histogram.observe(0.002)
        payload = histogram.as_dict()
        assert payload["buckets"] == list(DEFAULT_BUCKETS)
        assert payload["count"] == 1
        assert payload["p50"] == 3e-3
        assert json.loads(json.dumps(payload)) == payload

    def test_empty_as_dict_has_null_extremes(self):
        payload = Histogram().as_dict()
        assert payload["min"] is None
        assert payload["max"] is None
        assert payload["p50"] is None

    def test_first_touch_fixes_bucket_layout(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.5, buckets=(1.0,))
        registry.observe("latency", 2.0, buckets=(5.0, 10.0))
        histogram = registry.histogram_for("latency")
        assert histogram.bounds == (1.0,)
        assert histogram.overflow == 1
