"""End-to-end instrumentation: the engines report what they did, and
reporting it changes nothing about what they compute."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rothko import q_color
from repro.dynamic import DynamicColoring, EdgeUpdate
from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import barabasi_albert, karate_club
from repro.obs import recording
from repro.pipeline import (
    ColoringCache,
    MaxFlowTask,
    progressive_sweep,
    run_task,
)
from repro.utils.timing import StageTimer
from tests.conftest import random_adjacency


def flow_network(seed: int = 3, n: int = 40) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.2, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class TestRothkoInstrumentation:
    def test_split_count_matches_color_growth(self):
        graph = karate_club()
        with recording() as rec:
            result = q_color(graph, n_colors=8)
        counters = rec.snapshot()["counters"]
        # Karate starts from one color, so reaching k takes k - 1 splits.
        assert counters["rothko.splits"] == result.n_colors - 1
        assert counters["kernels.bincount_cells"] > 0
        assert rec.snapshot()["gauges"]["rothko.max_q_err"] == (
            pytest.approx(result.max_q_err)
        )

    def test_run_span_wraps_split_spans(self):
        with recording() as rec:
            q_color(karate_club(), n_colors=6)
        runs = [r for r in rec.spans if r.name == "rothko.run"]
        splits = [r for r in rec.spans if r.name == "rothko.split"]
        assert len(runs) == 1
        assert len(splits) == 5
        assert all(s.parent_id == runs[0].span_id for s in splits)
        assert runs[0].attrs["n_colors"] == 6
        for split in splits:
            assert "witness" in split.attrs
            assert split.attrs["q_err_before"] >= 0.0

    def test_batched_strategy_counts_rounds(self):
        with recording() as rec:
            q_color(
                karate_club(), n_colors=10, strategy="batched", batch_size=4
            )
        counters = rec.snapshot()["counters"]
        assert counters["rothko.rounds"] >= 1
        assert counters["rothko.splits"] == 9
        rounds = [r for r in rec.spans if r.name == "rothko.round"]
        assert sum(r.attrs["splits"] for r in rounds) == 9


class TestSolverInstrumentation:
    def test_arcstore_engines_report_work(self):
        network = flow_network()
        for algorithm, counter in (
            ("dinic", "solvers.dinic.phases"),
            ("push_relabel", "solvers.pr.relabels"),
            ("edmonds_karp", "solvers.ek.augmentations"),
        ):
            with recording() as rec:
                max_flow(network, algorithm=algorithm)
            assert rec.snapshot()["counters"][counter] > 0, algorithm

    def test_legacy_engines_use_flow_namespace(self):
        from repro.flow.dinic import dinic_max_flow
        from repro.flow.edmonds_karp import edmonds_karp_max_flow
        from repro.flow.push_relabel import push_relabel_max_flow

        network = flow_network()
        with recording() as rec:
            dinic_max_flow(network)
            edmonds_karp_max_flow(network)
            push_relabel_max_flow(network)
        counters = rec.snapshot()["counters"]
        assert counters["flow.dinic.phases"] > 0
        assert counters["flow.ek.augmentations"] > 0
        assert counters["flow.pr.relabels"] > 0
        assert counters["flow.pr.pushes"] > 0


class TestPipelineInstrumentation:
    def test_three_checkpoint_sweep_is_one_miss_two_hits(self):
        """The cache regression guard: a progressive sweep over one
        cache colors once (one miss) and serves later budgets from the
        same run (one hit per extra checkpoint)."""
        network = flow_network()
        cache = ColoringCache()
        with recording() as rec:
            progressive_sweep(MaxFlowTask(network), (4, 8, 12), cache=cache)
        counters = rec.snapshot()["counters"]
        assert counters["pipeline.cache.miss"] == 1
        assert counters["pipeline.cache.hit"] >= 2
        assert cache.misses == 1
        assert cache.hits >= 2

    def test_lru_eviction_counts_and_recolors(self):
        network = flow_network()
        cache = ColoringCache(max_runs=1)
        # Different split means -> different coloring specs -> distinct
        # cache keys (both maxflow bounds share one spec, so they would
        # never contend for the slot).
        arith = MaxFlowTask(network, split_mean="arithmetic")
        geo = MaxFlowTask(network, split_mean="geometric")
        with recording() as rec:
            run_task(arith, n_colors=6, cache=cache)
            run_task(geo, n_colors=6, cache=cache)  # evicts arith's run
            run_task(arith, n_colors=6, cache=cache)  # recolors: a miss
        counters = rec.snapshot()["counters"]
        assert counters["pipeline.cache.evict"] == 2
        assert counters["pipeline.cache.miss"] == 3
        assert cache.evictions == 2
        assert len(cache) == 1

    def test_max_runs_validation(self):
        with pytest.raises(ValueError):
            ColoringCache(max_runs=0)

    def test_task_spans_cover_stages(self):
        network = flow_network()
        with recording() as rec:
            run_task(MaxFlowTask(network), n_colors=6)
        names = [r.name for r in rec.spans]
        task_span = next(r for r in rec.spans if r.name == "pipeline.task")
        for stage in ("coloring", "reduce", "solve", "lift"):
            assert f"pipeline.{stage}" in names
        assert task_span.attrs["task"] == "maxflow"
        assert task_span.attrs["checkpoint"] == 6
        histograms = rec.snapshot()["histograms"]
        assert histograms["pipeline.checkpoint_s"]["count"] == 1

    def test_stage_timer_opens_pipeline_span(self):
        timer = StageTimer()
        with recording() as rec:
            with timer.stage("solve"):
                pass
        (record,) = rec.spans
        assert record.name == "pipeline.solve"
        assert timer.freeze().solve >= 0.0


class TestDynamicInstrumentation:
    def test_update_outcomes_match_stats(self):
        graph = barabasi_albert(120, 3, seed=5)
        dynamic = DynamicColoring(graph, q_tolerance=1.0)
        generator = np.random.default_rng(9)
        updates = [
            EdgeUpdate.insert(
                int(generator.integers(0, 120)),
                int(generator.integers(0, 120)),
                float(generator.integers(1, 5)),
            )
            for _ in range(60)
        ]
        with recording() as rec:
            dynamic.apply_batch(updates)
        dynamic.detach()
        counters = rec.snapshot()["counters"]
        stats = dynamic.stats
        assert counters.get("dynamic.updates.split", 0) == stats.splits
        assert counters.get("dynamic.updates.merge", 0) == stats.merges
        assert counters.get("dynamic.updates.rebuild", 0) == stats.rebuilds
        # The batch must have done *something* for this test to bite.
        assert stats.splits + stats.merges + stats.rebuilds > 0


class TestTracingChangesNothing:
    """NullRecorder vs Recorder: bit-identical outputs either way."""

    def test_coloring_identical_off_vs_on(self):
        graph = barabasi_albert(300, 3, seed=2)
        off = q_color(graph, n_colors=24)
        with recording():
            on = q_color(graph, n_colors=24)
        assert np.array_equal(
            off.coloring.labels, on.coloring.labels
        )
        assert off.max_q_err == on.max_q_err

    def test_solver_outputs_identical_off_vs_on(self):
        network = flow_network(seed=7)
        for algorithm in ("dinic", "push_relabel", "edmonds_karp"):
            off = max_flow(network, algorithm=algorithm)
            with recording():
                on = max_flow(network, algorithm=algorithm)
            assert off.value == on.value, algorithm
            assert off.arc_flow == on.arc_flow, algorithm

    def test_pipeline_result_identical_off_vs_on(self):
        network = flow_network(seed=11)
        off = run_task(MaxFlowTask(network), n_colors=8)
        with recording():
            on = run_task(MaxFlowTask(network), n_colors=8)
        assert off.value == on.value
        assert off.max_q_err == on.max_q_err
        assert off.coloring == on.coloring
