"""Span mechanics: nesting, exception safety, the recorder swap point."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    active_recorder,
    recording,
    set_recorder,
    trace,
)


class TestNesting:
    def test_parent_ids_reconstruct_nesting(self):
        with recording() as rec:
            with trace.span("outer"):
                with trace.span("middle"):
                    with trace.span("inner"):
                        pass
                with trace.span("sibling"):
                    pass
        by_name = {record.name: record for record in rec.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id

    def test_spans_finish_innermost_first(self):
        with recording() as rec:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        assert [record.name for record in rec.spans] == ["inner", "outer"]

    def test_sequential_roots_are_both_parentless(self):
        with recording() as rec:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        assert [record.parent_id for record in rec.spans] == [None, None]

    def test_current_span_tracks_innermost(self):
        with recording():
            assert trace.current_span() is None
            with trace.span("outer"):
                with trace.span("inner") as inner:
                    assert trace.current_span() is inner
        assert trace.current_span() is None

    def test_threads_nest_independently(self):
        names: dict[str, int | None] = {}

        def worker() -> None:
            with trace.span("thread-root") as handle:
                names["parent"] = handle.parent_id

        with recording() as rec:
            with trace.span("main-root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        # The worker's span must NOT nest under the main thread's span.
        assert names["parent"] is None
        roots = [r for r in rec.spans if r.parent_id is None]
        assert {r.name for r in roots} == {"thread-root", "main-root"}


class TestExceptionSafety:
    def test_span_closes_and_marks_error(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with trace.span("boom"):
                    raise ValueError("no")
        (record,) = rec.spans
        assert record.name == "boom"
        assert record.status == "error"
        assert record.end_wall >= record.start_wall

    def test_nested_spans_all_close_on_exception(self):
        with recording() as rec:
            with pytest.raises(RuntimeError):
                with trace.span("outer"):
                    with trace.span("inner"):
                        raise RuntimeError("deep")
        assert {record.name for record in rec.spans} == {"outer", "inner"}
        assert all(record.status == "error" for record in rec.spans)
        assert trace.current_span() is None

    def test_stack_unwinds_past_leaked_inner_span(self):
        # A generator/coroutine can leave an inner span un-exited; the
        # outer span's __exit__ must still pop exactly down to itself.
        with recording() as rec:
            with trace.span("outer"):
                leaked = trace.span("leaked")
                leaked.__enter__()
                # never exited
            with trace.span("after"):
                pass
        after = next(r for r in rec.spans if r.name == "after")
        assert after.parent_id is None


class TestAttributes:
    def test_attrs_from_call_and_set(self):
        with recording() as rec:
            with trace.span("work", color=3) as handle:
                handle.set(q_err=1.5, color=4)
        (record,) = rec.spans
        assert record.attrs == {"color": 4, "q_err": 1.5}

    def test_wall_and_cpu_recorded(self):
        with recording() as rec:
            with trace.span("spin"):
                total = 0
                for i in range(20_000):
                    total += i
        (record,) = rec.spans
        assert record.wall_seconds > 0.0
        assert record.cpu_seconds >= 0.0


class TestRecorderSwap:
    def test_default_is_null_recorder(self):
        assert active_recorder() is NULL_RECORDER
        assert not obs.enabled()

    def test_recording_installs_and_restores(self):
        with recording() as rec:
            assert active_recorder() is rec
            assert obs.enabled()
        assert active_recorder() is NULL_RECORDER

    def test_recording_restores_on_exception(self):
        with pytest.raises(ValueError):
            with recording():
                raise ValueError("no")
        assert active_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        rec = Recorder()
        previous = set_recorder(rec)
        try:
            assert previous is NULL_RECORDER
            assert active_recorder() is rec
        finally:
            set_recorder(previous)

    def test_null_recorder_span_is_shared_noop(self):
        null = NullRecorder()
        handle_a = null.span("a", x=1)
        handle_b = null.span("b")
        assert handle_a is handle_b
        with handle_a as entered:
            assert entered.set(anything=1) is entered
        assert null.current_span() is None
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_clear_drops_spans_and_metrics(self):
        with recording() as rec:
            with trace.span("work"):
                obs.count("events")
            rec.clear()
            assert rec.spans == []
            assert rec.snapshot()["counters"] == {}
