"""Safety net: never leak a recorder installed by one test into the next."""

from __future__ import annotations

import pytest

from repro.obs import NULL_RECORDER, set_recorder


@pytest.fixture(autouse=True)
def _restore_null_recorder():
    yield
    set_recorder(NULL_RECORDER)
