"""Disabled-tracing overhead: the null path must be measurably free.

Rather than comparing two noisy wall-clock medians (hopeless in shared
CI), the guard is estimated from first principles: count exactly how
many instrumentation calls a coloring run makes, measure the per-call
cost of the null-recorder primitives, and assert the product is under
3% of the run's measured wall time.  Each factor is stable — the call
count is deterministic, and a null op is a handful of attribute lookups
— so the bound holds with a wide margin on any machine.

The full colors[128] variant (the PR's acceptance workload) lives in
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import time

from repro.core.rothko import q_color
from repro.graphs.generators import barabasi_albert
from repro.obs import NullRecorder, recording, set_recorder, trace

OVERHEAD_BUDGET = 0.03


class CallCountingRecorder(NullRecorder):
    """Null recorder that tallies how often instrumentation fires."""

    def __init__(self) -> None:
        self.calls = 0

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name)

    def count(self, name, value=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1


def null_op_seconds(repeats: int = 20_000) -> float:
    """Per-call cost of a disabled instrumentation call (each loop
    iteration makes two: one span, one counter).  The null recorder is
    pinned so the calibration is immune to an ambient recorder."""
    from repro.obs import NULL_RECORDER

    previous = set_recorder(NULL_RECORDER)
    try:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(repeats):
                with trace.span("x"):
                    pass
                trace._recorder._active.count("x")
            best = min(best, time.perf_counter() - start)
    finally:
        set_recorder(previous)
    return best / (2 * repeats)


def test_disabled_instrumentation_under_three_percent():
    graph = barabasi_albert(1000, 4, seed=2)
    adjacency = graph.to_csr()

    counting = CallCountingRecorder()
    with recording(counting):  # type: ignore[arg-type]
        q_color(adjacency, 64)
    assert counting.calls > 0  # the hot paths are instrumented

    runtime = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        q_color(adjacency, 64)
        runtime = min(runtime, time.perf_counter() - start)

    estimated_overhead = counting.calls * null_op_seconds()
    assert estimated_overhead < OVERHEAD_BUDGET * runtime, (
        f"{counting.calls} null instrumentation calls cost an estimated "
        f"{estimated_overhead * 1e3:.3f} ms against a {runtime * 1e3:.1f} "
        f"ms run"
    )


def test_null_recorder_restored_after_counting():
    # Paranoia: the counting recorder must not leak into other tests.
    counting = CallCountingRecorder()
    previous = set_recorder(counting)  # type: ignore[arg-type]
    set_recorder(previous)
    assert not trace._recorder._active.enabled
