"""Package-level hygiene: every module imports, public API is exposed."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ exits on import by design (CLI entry point).
    if name != "repro.__main__"
)


class TestImports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "package_name",
        [
            "repro.core",
            "repro.graphs",
            "repro.flow",
            "repro.lp",
            "repro.centrality",
            "repro.datasets",
            "repro.utils",
        ],
    )
    def test_all_lists_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert getattr(package, name, None) is not None, (
                f"{package_name}.{name} in __all__ but missing"
            )
