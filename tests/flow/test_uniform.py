"""Tests for maxUFlow (Definition 5, Lemma 8, Corollary 9)."""

import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.graphs.bipartite import BipartiteGraph
from repro.flow.uniform import (
    lemma8_condition_holds,
    max_uniform_flow,
)


class TestBiregularClosedForm:
    @pytest.mark.parametrize("n_left,n_right,degree", [(4, 4, 2), (6, 4, 2), (6, 3, 1)])
    def test_equals_total_capacity(self, n_left, n_right, degree):
        """Corollary 9(1): biregular graphs achieve maxUFlow = c(X, Y)."""
        graph = BipartiteGraph.biregular(n_left, n_right, degree)
        assert max_uniform_flow(graph, method="biregular") == pytest.approx(
            graph.total_weight()
        )

    def test_methods_agree_on_biregular(self):
        graph = BipartiteGraph.biregular(4, 4, 2)
        expected = graph.total_weight()
        for method in ("auto", "biregular", "lp", "parametric"):
            assert max_uniform_flow(graph, method=method) == pytest.approx(
                expected, rel=1e-4
            )

    def test_biregular_method_rejects_irregular(self):
        graph = BipartiteGraph(np.array([[1.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(FlowError):
            max_uniform_flow(graph, method="biregular")


class TestLemma8Condition:
    def test_holds_on_biregular(self):
        graph = BipartiteGraph.biregular(4, 4, 2)
        assert lemma8_condition_holds(graph, 2.0, 2.0)

    def test_fails_on_shift_matching(self):
        """The Fig. 4 layer block (shift matching) violates Eq. (8)."""
        n = 4
        dense = np.zeros((n, n))
        for j in range(n - 1):
            dense[j, j + 1] = 1.0
        graph = BipartiteGraph(dense)
        assert not lemma8_condition_holds(graph, 1.0, 1.0)

    def test_size_guard(self):
        graph = BipartiteGraph(np.ones((21, 2)))
        with pytest.raises(ValueError):
            lemma8_condition_holds(graph, 1.0, 1.0)

    def test_wide_right_side_supported(self):
        """The closed-form inner minimization removes the right-side
        size limit: only the left side is enumerated."""
        graph = BipartiteGraph.biregular(4, 40, 10)
        assert lemma8_condition_holds(graph, 10.0, 1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_subset_brute_force(self, seed):
        """The per-right-node closed form equals the full subset-pair
        enumeration on small random instances."""
        from itertools import combinations

        rng = np.random.default_rng(seed)
        dense = (rng.random((5, 5)) < 0.5) * rng.integers(1, 4, (5, 5))
        graph = BipartiteGraph(dense.astype(float))
        for a, b in ((1.0, 1.0), (0.5, 2.0), (2.0, 0.5)):
            target = min(a * 5, b * 5)
            expected = True
            for ls in range(6):
                for left in combinations(range(5), ls):
                    for rs in range(6):
                        for right in combinations(range(5), rs):
                            c_st = (
                                dense[np.ix_(left, right)].sum()
                                if left and right
                                else 0.0
                            )
                            if c_st + target < a * ls + b * rs - 1e-9:
                                expected = False
            assert lemma8_condition_holds(graph, a, b) == expected


class TestGeneralGraphs:
    def test_empty_graph(self):
        graph = BipartiteGraph(np.zeros((3, 3)))
        assert max_uniform_flow(graph) == 0.0

    def test_shift_matching_is_zero(self):
        """Example 7's key fact: the staircase block admits no nonzero
        uniform flow."""
        n = 5
        dense = np.zeros((n, n))
        for j in range(n - 1):
            dense[j, j + 1] = 1.0
        graph = BipartiteGraph(dense)
        for method in ("lp", "parametric"):
            assert max_uniform_flow(graph, method=method) == pytest.approx(
                0.0, abs=1e-6
            )

    def test_lp_matches_parametric_on_random(self):
        generator = np.random.default_rng(0)
        for _ in range(5):
            dense = np.where(
                generator.random((4, 5)) < 0.6,
                generator.integers(1, 6, size=(4, 5)).astype(float),
                0.0,
            )
            graph = BipartiteGraph(dense)
            lp_value = max_uniform_flow(graph, method="lp")
            search_value = max_uniform_flow(
                graph, method="parametric", tol=1e-7
            )
            assert lp_value == pytest.approx(search_value, abs=1e-4)

    def test_uniform_leq_total(self):
        generator = np.random.default_rng(1)
        for _ in range(5):
            dense = np.where(
                generator.random((5, 4)) < 0.5,
                generator.integers(1, 5, size=(5, 4)).astype(float),
                0.0,
            )
            graph = BipartiteGraph(dense)
            assert max_uniform_flow(graph) <= graph.total_weight() + 1e-9

    def test_bad_method(self):
        graph = BipartiteGraph(np.ones((2, 2)))
        with pytest.raises(ValueError):
            max_uniform_flow(graph, method="psychic")


class TestUniformAssignment:
    def test_assignment_is_uniform_and_feasible(self):
        """The returned flow must respect capacities, have equal row sums
        and equal column sums, and sum to the reported value."""
        from repro.flow.uniform import max_uniform_flow_assignment

        generator = np.random.default_rng(5)
        for _ in range(5):
            dense = np.where(
                generator.random((5, 4)) < 0.7,
                generator.integers(1, 6, size=(5, 4)).astype(float),
                0.0,
            )
            graph = BipartiteGraph(dense)
            value, assignment = max_uniform_flow_assignment(graph)
            flow = assignment.toarray()
            assert np.all(flow <= dense + 1e-7)
            assert np.all(flow >= -1e-9)
            row_sums = flow.sum(axis=1)
            col_sums = flow.sum(axis=0)
            assert np.ptp(row_sums) < 1e-6
            assert np.ptp(col_sums) < 1e-6
            assert flow.sum() == pytest.approx(value, abs=1e-6)
            assert value == pytest.approx(
                max_uniform_flow(graph, method="lp"), abs=1e-7
            )

    def test_assignment_on_biregular_saturates(self):
        from repro.flow.uniform import max_uniform_flow_assignment

        graph = BipartiteGraph.biregular(4, 4, 2)
        value, assignment = max_uniform_flow_assignment(graph)
        assert value == pytest.approx(graph.total_weight())
        assert np.allclose(assignment.toarray(), graph.matrix.toarray())

    def test_empty_assignment(self):
        from repro.flow.uniform import max_uniform_flow_assignment

        value, assignment = max_uniform_flow_assignment(
            BipartiteGraph(np.zeros((3, 2)))
        )
        assert value == 0.0
        assert assignment.nnz == 0
