"""Tests for the Theorem 6 flow approximation pipeline."""

import numpy as np
import pytest

from repro.core.partition import Coloring
from repro.flow.approx import (
    approx_max_flow,
    color_flow_network,
    reduced_network,
)
from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import (
    pathological_flow_network,
    pathological_layer_coloring,
)
from tests.conftest import random_adjacency


def random_flow_network(seed: int, n: int = 14) -> FlowNetwork:
    adjacency = random_adjacency(n, 0.35, seed)
    graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
    return FlowNetwork(graph, 0, n - 1)


class TestTheorem6Bounds:
    @pytest.mark.parametrize("seed", range(8))
    def test_sandwich(self, seed):
        """maxFlow(G_hat_1) <= maxFlow(G) <= maxFlow(G_hat_2)."""
        network = random_flow_network(seed)
        exact = max_flow(network).value
        rothko = color_flow_network(network, n_colors=5)
        upper_net = reduced_network(network, rothko.coloring, bound="upper")
        lower_net = reduced_network(network, rothko.coloring, bound="lower")
        upper = max_flow(upper_net).value
        lower = max_flow(lower_net).value
        assert lower <= exact + 1e-6
        assert exact <= upper + 1e-6

    def test_discrete_coloring_is_exact(self):
        """With every node its own color the reduced graph IS the graph."""
        network = random_flow_network(3, n=10)
        labels = np.arange(10)
        labels[[0, network.sink_index]] = [0, 9]
        coloring = Coloring(labels)
        upper = max_flow(
            reduced_network(network, coloring, bound="upper")
        ).value
        assert upper == pytest.approx(max_flow(network).value)


class TestPathologicalExample:
    """Example 7: the upper bound is wildly loose, the lower bound is 0."""

    def test_bounds(self):
        n = 6
        graph, s, t = pathological_flow_network(n)
        network = FlowNetwork(graph, s, t)
        coloring = Coloring(pathological_layer_coloring(n))
        upper = max_flow(
            reduced_network(network, coloring, bound="upper")
        ).value
        lower = max_flow(
            reduced_network(network, coloring, bound="lower")
        ).value
        exact = max_flow(network).value
        assert exact == 2.0
        assert upper >= n - 1  # ~n: a huge overestimate
        assert lower == 0.0  # maxUFlow collapses


class TestColorFlowNetwork:
    def test_source_sink_pinned(self):
        network = random_flow_network(1)
        result = color_flow_network(network, n_colors=6)
        coloring = result.coloring
        source_color = coloring.color_of(network.source_index)
        sink_color = coloring.color_of(network.sink_index)
        assert coloring.sizes[source_color] == 1
        assert coloring.sizes[sink_color] == 1
        assert source_color != sink_color

    def test_unpinned_coloring_rejected(self):
        network = random_flow_network(2)
        with pytest.raises(ValueError, match="singleton"):
            reduced_network(
                network, Coloring.trivial(network.n_nodes), bound="upper"
            )

    def test_bad_bound(self):
        network = random_flow_network(2)
        rothko = color_flow_network(network, n_colors=4)
        with pytest.raises(ValueError):
            reduced_network(network, rothko.coloring, bound="middle")


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_upper_approximation(self, seed):
        network = random_flow_network(seed, n=20)
        exact = max_flow(network).value
        result = approx_max_flow(network, n_colors=8)
        assert result.value >= exact - 1e-6
        assert result.n_colors <= 8
        assert result.total_seconds > 0

    def test_more_colors_tighter_or_equal(self):
        """At the full discrete budget the reduced graph is the original
        graph (or a stable coloring, where Corollary 9(2) gives equality),
        so the approximation is exact."""
        network = random_flow_network(5, n=12)
        exact = max_flow(network).value
        full = approx_max_flow(network, n_colors=12)
        assert full.value == pytest.approx(exact)

    def test_q_stopping(self):
        network = random_flow_network(6, n=12)
        result = approx_max_flow(network, q=1.0)
        assert result.value >= max_flow(network).value - 1e-6

    def test_needs_stopping_rule(self):
        network = random_flow_network(7)
        with pytest.raises(ValueError):
            approx_max_flow(network)
