"""Cross-checks of the three max-flow solvers against networkx and each
other, plus min-cut duality."""

import networkx as nx
import numpy as np
import pytest

from repro.flow.mincut import min_cut
from repro.flow.network import FlowNetwork, max_flow, validate_flow
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import pathological_flow_network

ALGORITHMS = ("edmonds_karp", "dinic", "push_relabel")


def random_network(seed: int, n: int = 12, density: float = 0.35):
    generator = np.random.default_rng(seed)
    nx_graph = nx.gnp_random_graph(
        n, density, seed=int(generator.integers(10**6)), directed=True
    )
    graph = WeightedDiGraph(directed=True)
    for i in range(n):
        graph.add_node(i)
    for u, v in nx_graph.edges():
        capacity = float(generator.integers(1, 10))
        graph.add_edge(u, v, capacity)
        nx_graph[u][v]["capacity"] = capacity
    return FlowNetwork(graph, 0, n - 1), nx_graph


class TestAgainstNetworkx:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(10))
    def test_value_matches(self, algorithm, seed):
        network, nx_graph = random_network(seed)
        expected = nx.maximum_flow_value(nx_graph, 0, network.n_nodes - 1)
        result = max_flow(network, algorithm=algorithm)
        assert result.value == pytest.approx(expected)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(10))
    def test_flow_is_valid(self, algorithm, seed):
        network, _ = random_network(seed)
        result = max_flow(network, algorithm=algorithm)
        validate_flow(network, result)


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_disconnected(self, algorithm):
        graph = WeightedDiGraph(directed=True)
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "x", 5.0)
        network = FlowNetwork(graph, "s", "t")
        assert max_flow(network, algorithm=algorithm).value == 0.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_path(self, algorithm):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 4.0)
        graph.add_edge(1, 2, 2.0)
        network = FlowNetwork(graph, 0, 2)
        assert max_flow(network, algorithm=algorithm).value == 2.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_antiparallel_arcs(self, algorithm):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 0, 2.0)
        graph.add_edge(1, 2, 3.0)
        network = FlowNetwork(graph, 0, 2)
        assert max_flow(network, algorithm=algorithm).value == 3.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_undirected_graph(self, algorithm):
        graph = WeightedDiGraph(directed=False)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(0, 2, 1.0)
        network = FlowNetwork(graph, 0, 2)
        assert max_flow(network, algorithm=algorithm).value == 3.0

    def test_unknown_algorithm(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            max_flow(FlowNetwork(graph, 0, 1), algorithm="magic")


class TestPathologicalNetwork:
    """Fig. 4 / Example 7: max flow is exactly 2."""

    @pytest.mark.parametrize("n", [3, 5, 8])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_flow_is_two(self, n, algorithm):
        graph, s, t = pathological_flow_network(n)
        network = FlowNetwork(graph, s, t)
        assert max_flow(network, algorithm=algorithm).value == 2.0


class TestMinCut:
    @pytest.mark.parametrize("seed", range(8))
    def test_cut_equals_flow(self, seed):
        """Max-flow min-cut duality on random networks."""
        network, _ = random_network(seed)
        flow_value = max_flow(network).value
        cut_value, source_side, cut_arcs = min_cut(network)
        assert cut_value == pytest.approx(flow_value)
        assert network.source_index in source_side
        assert network.sink_index not in source_side

    def test_pathological_cut_is_two_arcs(self):
        graph, s, t = pathological_flow_network(6)
        cut_value, _, cut_arcs = min_cut(FlowNetwork(graph, s, t))
        assert cut_value == 2.0
        assert len(cut_arcs) == 2
