"""Tests for repro.flow.network (validation, residual graph)."""

import pytest

from repro.exceptions import FlowError
from repro.flow.network import (
    FlowNetwork,
    FlowResult,
    ResidualGraph,
    validate_flow,
)
from repro.graphs.digraph import WeightedDiGraph


@pytest.fixture
def diamond():
    """s -> {a, b} -> t with capacities 3/2/2/3."""
    graph = WeightedDiGraph(directed=True)
    graph.add_edge("s", "a", 3.0)
    graph.add_edge("s", "b", 2.0)
    graph.add_edge("a", "t", 2.0)
    graph.add_edge("b", "t", 3.0)
    return FlowNetwork(graph, "s", "t")


class TestFlowNetwork:
    def test_valid(self, diamond):
        assert diamond.n_nodes == 4
        assert diamond.source_index == 0

    def test_missing_source(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(FlowError):
            FlowNetwork(graph, 99, 1)

    def test_same_source_sink(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(FlowError):
            FlowNetwork(graph, 0, 0)

    def test_negative_capacity(self):
        graph = WeightedDiGraph(directed=True)
        graph.add_edge(0, 1, -2.0)
        with pytest.raises(FlowError):
            FlowNetwork(graph, 0, 1)


class TestValidateFlow:
    def test_valid_flow_accepted(self, diamond):
        flow = {
            (0, 1): 2.0,  # s->a
            (0, 2): 2.0,  # s->b
            (1, 3): 2.0,  # a->t
            (2, 3): 2.0,  # b->t
        }
        validate_flow(diamond, FlowResult(value=4.0, arc_flow=flow))

    def test_capacity_violation(self, diamond):
        flow = {(0, 1): 5.0, (1, 3): 5.0}
        with pytest.raises(FlowError, match="exceeds capacity"):
            validate_flow(diamond, FlowResult(value=5.0, arc_flow=flow))

    def test_conservation_violation(self, diamond):
        flow = {(0, 1): 1.0}
        with pytest.raises(FlowError, match="conservation"):
            validate_flow(diamond, FlowResult(value=1.0, arc_flow=flow))

    def test_phantom_arc(self, diamond):
        flow = {(1, 2): 1.0}
        with pytest.raises(FlowError, match="non-existent"):
            validate_flow(diamond, FlowResult(value=0.0, arc_flow=flow))

    def test_out_of_range_arc(self, diamond):
        # Endpoints beyond n must not collide with real arcs through
        # the vectorized validator's flat key encoding.
        flow = {(1, 7): 1.0}
        with pytest.raises(FlowError, match="non-existent"):
            validate_flow(diamond, FlowResult(value=0.0, arc_flow=flow))

    def test_wrong_value(self, diamond):
        flow = {(0, 1): 1.0, (1, 3): 1.0}
        with pytest.raises(FlowError, match="claimed value"):
            validate_flow(diamond, FlowResult(value=7.0, arc_flow=flow))

    def test_negative_flow(self, diamond):
        flow = {(0, 1): -1.0, (1, 3): -1.0}
        with pytest.raises(FlowError, match="negative flow"):
            validate_flow(diamond, FlowResult(value=-1.0, arc_flow=flow))


class TestResidualGraph:
    def test_paired_arcs(self):
        residual = ResidualGraph(3)
        arc = residual.add_arc(0, 1, 5.0)
        assert residual.to[arc] == 1
        assert residual.to[arc ^ 1] == 0
        assert residual.cap[arc] == 5.0
        assert residual.cap[arc ^ 1] == 0.0

    def test_extract_flow_empty(self, diamond):
        residual = ResidualGraph.from_network(diamond)
        assert residual.extract_flow() == {}

    def test_extract_flow_after_push(self, diamond):
        residual = ResidualGraph.from_network(diamond)
        residual.cap[0] -= 1.0  # push 1 unit on the first arc
        residual.cap[1] += 1.0
        flow = residual.extract_flow()
        assert sum(flow.values()) == 1.0
