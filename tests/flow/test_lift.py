"""Tests for the Theorem 6 flow lifting (reduced flow -> original flow)."""

import numpy as np
import pytest

from repro.core.partition import Coloring
from repro.core.qerror import max_q_err
from repro.exceptions import FlowError
from repro.flow.approx import color_flow_network, lift_flow, reduced_network
from repro.flow.network import FlowNetwork, FlowResult, max_flow, validate_flow
from repro.graphs.digraph import WeightedDiGraph
from tests.conftest import random_adjacency


def biregular_layered_network(
    n_a: int = 6, n_b: int = 4, degree: int = 2
) -> tuple[FlowNetwork, Coloring]:
    """s -> A -> B -> t with a biregular A-B block; the layer coloring is
    stable, so Corollary 9(2) applies (c_hat_1 = c_hat_2)."""
    graph = WeightedDiGraph(directed=True)
    graph.add_node("s")
    graph.add_node("t")
    a_nodes = [("a", i) for i in range(n_a)]
    b_nodes = [("b", j) for j in range(n_b)]
    for a in a_nodes:
        graph.add_edge("s", a, 2.0)
    for i in range(n_a):
        for d in range(degree):
            graph.add_edge(a_nodes[i], b_nodes[(i * degree + d) % n_b], 1.0)
    for b in b_nodes:
        graph.add_edge(b, "t", 3.0)
    labels = np.array([0, 1] + [2] * n_a + [3] * n_b)
    return FlowNetwork(graph, "s", "t"), Coloring(labels)


class TestLiftOnStableColoring:
    def test_lift_is_exact(self):
        network, coloring = biregular_layered_network()
        assert max_q_err(network.graph.to_csr(), coloring) == 0.0
        exact = max_flow(network).value
        lower = reduced_network(network, coloring, bound="lower")
        reduced = max_flow(lower, algorithm="dinic")
        # Corollary 9(2): the lower bound matches the true flow...
        assert reduced.value == pytest.approx(exact)
        # ...and the lift realizes it as a concrete valid flow.
        lifted = lift_flow(network, coloring, reduced)
        validate_flow(network, lifted)
        assert lifted.value == pytest.approx(exact)


class TestLiftOnQuasiStableColoring:
    @pytest.mark.parametrize("seed", range(5))
    def test_lifted_flow_always_valid(self, seed):
        adjacency = random_adjacency(16, 0.35, seed)
        graph = WeightedDiGraph.from_scipy(adjacency, directed=True)
        network = FlowNetwork(graph, 0, 15)
        rothko = color_flow_network(network, n_colors=6)
        lower = reduced_network(network, rothko.coloring, bound="lower")
        reduced = max_flow(lower, algorithm="dinic")
        lifted = lift_flow(network, rothko.coloring, reduced)
        validate_flow(network, lifted)
        # Lower bound property: never exceeds the true max-flow.
        assert lifted.value <= max_flow(network).value + 1e-6


class TestLiftGuards:
    def test_overfull_reduced_flow_rejected(self):
        """A flow exceeding c_hat_1 (e.g. taken from the upper-bound
        network) cannot be spread uniformly and must be refused."""
        network, coloring = biregular_layered_network()
        upper = reduced_network(network, coloring, bound="upper")
        # Inflate one reduced arc beyond the block's uniform capacity.
        a_color = coloring.color_of(network.graph.index_of(("a", 0)))
        b_color = coloring.color_of(network.graph.index_of(("b", 0)))
        fake = FlowResult(
            value=100.0, arc_flow={(a_color, b_color): 100.0}
        )
        with pytest.raises(FlowError, match="uniform"):
            lift_flow(network, coloring, fake)

    def test_zero_flow_lifts_to_zero(self):
        network, coloring = biregular_layered_network()
        lifted = lift_flow(
            network, coloring, FlowResult(value=0.0, arc_flow={})
        )
        validate_flow(network, lifted)
        assert lifted.value == 0.0
