"""Brandes' exact betweenness centrality — the paper's exact baseline.

Betweenness (Eq. 9): ``g(v) = sum_{s != v != t} sigma(s, t | v) /
sigma(s, t)`` where ``sigma`` counts shortest paths.  Brandes (2001)
computes all values with one shortest-path pass + dependency accumulation
per source: BFS for unweighted graphs (``O(nm)`` total) and Dijkstra for
positively-weighted graphs (``weighted=True``).

:func:`betweenness_centrality` is a thin view over two engines:

* ``"arcstore"`` (default) — the CSR-native core
  (:mod:`repro.solvers.betweenness`): frontier-batched BFS lanes with
  per-level ``sigma``/dependency scatters, and an array-heap Dijkstra
  for weighted graphs;
* ``"python"`` — the original per-source list-based passes below, kept
  as the cross-checking reference.

Conventions match networkx (our cross-check oracle) in both engines:
with ``normalized=False``, undirected graphs report half the
ordered-pair sum (each unordered pair counted once).

``single_source_dependencies`` exposes the legacy per-source pass; the
color-pivot approximation (:mod:`repro.centrality.approx`) and the
Riondato–Kornaropoulos sampler route through the arcstore core.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graphs.digraph import WeightedDiGraph


def _bfs_shortest_paths(
    adjacency: Sequence[Sequence[int]], source: int, n: int
) -> tuple[list[int], np.ndarray, list[list[int]], list[int]]:
    """BFS from ``source``: returns (stack order, path counts sigma,
    predecessor lists, distances)."""
    sigma = np.zeros(n)
    sigma[source] = 1.0
    distance = [-1] * n
    distance[source] = 0
    predecessors: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in adjacency[u]:
            if distance[v] == -1:
                distance[v] = distance[u] + 1
                queue.append(v)
            if distance[v] == distance[u] + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return order, sigma, predecessors, distance


def single_source_dependencies(
    adjacency: Sequence[Sequence[int]], source: int, n: int
) -> np.ndarray:
    """Brandes' dependency vector ``delta_s(v)`` for one source.

    ``g(v) = sum_s delta_s(v)`` over all sources (ordered-pair convention).
    """
    order, sigma, predecessors, _ = _bfs_shortest_paths(adjacency, source, n)
    delta = np.zeros(n)
    for w in reversed(order):
        for v in predecessors[w]:
            delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
    delta[source] = 0.0
    return delta


def _adjacency_lists(graph: WeightedDiGraph) -> list[list[int]]:
    """Successor index lists (weights ignored: shortest = fewest hops)."""
    return [
        list(graph.out_items(u).keys()) for u in range(graph.n_nodes)
    ]


def _dijkstra_shortest_paths(
    weighted_adjacency: Sequence[Sequence[tuple[int, float]]],
    source: int,
    n: int,
) -> tuple[list[int], np.ndarray, list[list[int]]]:
    """Dijkstra from ``source``: (settle order, path counts, predecessors).

    Weights must be positive.  Ties in distance accumulate path counts
    exactly as the BFS variant does.
    """
    distance = np.full(n, np.inf)
    distance[source] = 0.0
    sigma = np.zeros(n)
    sigma[source] = 1.0
    predecessors: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    settled = [False] * n
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        order.append(u)
        for v, weight in weighted_adjacency[u]:
            candidate = dist_u + weight
            if candidate < distance[v] - 1e-12:
                distance[v] = candidate
                sigma[v] = sigma[u]
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, v))
            elif abs(candidate - distance[v]) <= 1e-12 and not settled[v]:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return order, sigma, predecessors


def _weighted_dependencies(
    weighted_adjacency: Sequence[Sequence[tuple[int, float]]],
    source: int,
    n: int,
) -> np.ndarray:
    """Dependency vector of one Dijkstra pass."""
    order, sigma, predecessors = _dijkstra_shortest_paths(
        weighted_adjacency, source, n
    )
    delta = np.zeros(n)
    for w in reversed(order):
        for v in predecessors[w]:
            delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
    delta[source] = 0.0
    return delta


def betweenness_centrality(
    graph: WeightedDiGraph,
    normalized: bool = False,
    sources: Iterable[int] | None = None,
    source_weights: Iterable[float] | None = None,
    weighted: bool = False,
    engine: str = "arcstore",
    backend=None,
    workers: int | None = None,
    parallel_mode: str | None = None,
) -> np.ndarray:
    """Betweenness centrality of every node (by internal index).

    ``sources``/``source_weights`` restrict and weight the per-source
    passes — the hook used by the pivot approximations.  With the default
    (all sources, unit weights) the result is exact.  ``weighted=True``
    treats edge weights as positive lengths (Dijkstra variant).
    ``engine`` selects the vectorized arc-store implementation (default)
    or the legacy pure-Python one; both agree to 1e-9.  The arcstore
    engine additionally honors ``backend=`` (solver kernel dispatch)
    and ``workers=``/``parallel_mode=`` (source-batched parallel
    Brandes); the legacy engine ignores all three.
    """
    from repro.solvers import betweenness_centrality_csr, check_engine

    if check_engine(engine) == "arcstore":
        return betweenness_centrality_csr(
            graph.to_csr(),
            directed=graph.directed,
            normalized=normalized,
            sources=sources,
            source_weights=source_weights,
            weighted=weighted,
            backend=backend,
            workers=workers,
            parallel_mode=parallel_mode,
        )
    n = graph.n_nodes
    if weighted:
        weighted_adjacency = [
            list(graph.out_items(u).items()) for u in range(n)
        ]
        for u in range(n):
            for _, weight in weighted_adjacency[u]:
                if weight <= 0:
                    raise ValueError(
                        "weighted betweenness requires positive weights"
                    )
    adjacency = _adjacency_lists(graph)
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = list(sources)
    if source_weights is None:
        weights = [1.0] * len(source_list)
    else:
        weights = [float(w) for w in source_weights]
        if len(weights) != len(source_list):
            raise ValueError(
                f"{len(source_list)} sources but {len(weights)} weights"
            )

    centrality = np.zeros(n)
    for source, weight in zip(source_list, weights):
        if weighted:
            centrality += weight * _weighted_dependencies(
                weighted_adjacency, source, n
            )
        else:
            centrality += weight * single_source_dependencies(
                adjacency, source, n
            )

    if not graph.directed:
        centrality /= 2.0
    if normalized:
        if graph.directed:
            scale = (n - 1) * (n - 2)
        else:
            scale = (n - 1) * (n - 2) / 2.0
        if scale > 0:
            centrality /= scale
    return centrality
