"""Betweenness centrality: exact, color-pivot approximate, and sampling.

Exact Brandes (and the per-sample BFS of the Riondato–Kornaropoulos
sampler) run on the CSR-native arc-store core (:mod:`repro.solvers`)
by default; ``engine="python"`` selects the legacy per-source passes
for cross-checking.
"""

from repro.centrality.approx import ApproxCentralityResult, approx_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.centrality.metrics import centrality_accuracy
from repro.centrality.sampling import riondato_kornaropoulos_betweenness

__all__ = [
    "ApproxCentralityResult",
    "approx_betweenness",
    "betweenness_centrality",
    "centrality_accuracy",
    "riondato_kornaropoulos_betweenness",
]
