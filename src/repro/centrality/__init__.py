"""Betweenness centrality: exact, color-pivot approximate, and sampling."""

from repro.centrality.approx import ApproxCentralityResult, approx_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.centrality.metrics import centrality_accuracy
from repro.centrality.sampling import riondato_kornaropoulos_betweenness

__all__ = [
    "ApproxCentralityResult",
    "approx_betweenness",
    "betweenness_centrality",
    "centrality_accuracy",
    "riondato_kornaropoulos_betweenness",
]
