"""Riondato–Kornaropoulos sampling betweenness (the Table 1 prior work).

Riondato & Kornaropoulos (WSDM 2014) sample ``r`` uniform shortest paths
and count, for each vertex, the fraction of sampled paths through it.
With

    r = (c / eps^2) * (floor(log2(VD - 2)) + 1 + ln(1 / delta))

samples (``VD`` = vertex diameter, ``c ~ 0.5``), every betweenness value
is within ``eps * n(n-1)`` of the truth with probability ``1 - delta``.
The implementation follows the paper's Algorithm 1: sample a pair
``(s, t)``, run a BFS, then walk one shortest path backwards choosing
each predecessor with probability proportional to its path count.

The per-sample BFS routes through the arc-store solver core
(:func:`repro.solvers.betweenness.bfs_dag` over the graph's CSR
arrays); only the O(path-length) backward walk stays scalar, reading
each node's shortest-path predecessors off the CSC column slices.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.digraph import WeightedDiGraph
from repro.solvers.betweenness import bfs_dag
from repro.utils.rng import SeedLike, ensure_rng


def _csr_arrays(graph: WeightedDiGraph):
    matrix = graph.to_csr()
    return matrix.indptr.astype(np.int64), matrix.indices.astype(np.int64)


def vertex_diameter_estimate(
    graph: WeightedDiGraph, samples: int = 4, seed: SeedLike = 0
) -> int:
    """Estimate the vertex diameter (nodes on the longest shortest path).

    Standard 2-approximation: BFS from a few random sources and take the
    largest eccentricity seen, plus one (edge count -> vertex count).
    """
    rng = ensure_rng(seed)
    n = graph.n_nodes
    indptr, indices = _csr_arrays(graph)
    best = 1
    for _ in range(min(samples, n)):
        source = int(rng.integers(0, n))
        dist, _, _ = bfs_dag(indptr, indices, source, n)
        reached = dist[dist >= 0]
        if reached.size:
            best = max(best, int(reached.max()) + 1)
    return best


def rk_sample_size(
    vertex_diameter: int, eps: float, delta: float = 0.1, c: float = 0.5
) -> int:
    """The VC-dimension sample bound of Riondato–Kornaropoulos."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    vd_term = math.floor(math.log2(max(vertex_diameter - 2, 2))) + 1
    return max(1, math.ceil((c / eps**2) * (vd_term + math.log(1 / delta))))


def riondato_kornaropoulos_betweenness(
    graph: WeightedDiGraph,
    eps: float = 0.05,
    delta: float = 0.1,
    seed: SeedLike = 0,
    n_samples: int | None = None,
) -> np.ndarray:
    """Sampled betweenness, scaled to the same units as the exact scores.

    ``n_samples`` overrides the VC bound (useful for time/accuracy
    sweeps).  Returned scores estimate the unnormalized (networkx-
    convention) betweenness, so they are directly comparable to
    :func:`repro.centrality.brandes.betweenness_centrality`.
    """
    rng = ensure_rng(seed)
    n = graph.n_nodes
    indptr, indices = _csr_arrays(graph)
    csc = graph.to_csc()
    in_indptr = csc.indptr.astype(np.int64)
    in_indices = csc.indices.astype(np.int64)
    if n_samples is None:
        diameter = vertex_diameter_estimate(graph, seed=rng)
        n_samples = rk_sample_size(diameter, eps, delta)

    counts = np.zeros(n)
    performed = 0
    while performed < n_samples:
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s == t:
            continue
        performed += 1
        dist, sigma, _ = bfs_dag(indptr, indices, s, n)
        if dist[t] < 0:
            continue  # unreachable pair contributes no path
        # Walk one uniform shortest path backwards from t; a node's
        # predecessors are its in-neighbors one BFS level closer to s.
        node = t
        while node != s:
            candidates = in_indices[in_indptr[node] : in_indptr[node + 1]]
            predecessors = candidates[dist[candidates] == dist[node] - 1]
            if predecessors.size == 1:
                parent = int(predecessors[0])
            else:
                probabilities = sigma[predecessors]
                probabilities = probabilities / probabilities.sum()
                parent = int(rng.choice(predecessors, p=probabilities))
            if parent != s:
                counts[parent] += 1.0
            node = parent

    # counts / n_samples estimates g(v) / (n (n - 1)) for ordered pairs.
    scores = counts / n_samples * n * (n - 1)
    if not graph.directed:
        scores /= 2.0
    return scores
