"""Color-pivot betweenness approximation (Sec. 4.3).

The paper's recipe: compute a quasi-stable coloring with ``alpha = beta =
1`` ("the number of paths depends on both the number of nodes in source
and target color"), assume same-colored nodes have interchangeable
centrality roles, and evaluate the centrality sum once per color.

Computing Eq. (9) for a single vertex still costs a full APSP, so "once
per color" is realized on the *source side* of Brandes' algorithm: one
dependency-accumulation pass from a single representative source per
color, scaled by the color's size.  This estimates
``g(v) = sum_s delta_s(v) ~= sum_colors |P_i| * delta_{rep(P_i)}(v)``
and is exact whenever same-colored sources have identical dependency
vectors — which a stable coloring approaches and a q-coloring
approximates.  The per-color representative is chosen uniformly at
random, matching "randomly sampling some v in that color".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import Coloring
from repro.centrality.brandes import betweenness_centrality
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import StageTimings


@dataclass(frozen=True)
class ApproxCentralityResult:
    """End-to-end output of :func:`approx_betweenness`."""

    scores: np.ndarray
    coloring: Coloring
    representatives: np.ndarray
    timings: StageTimings

    @property
    def coloring_seconds(self) -> float:
        return self.timings.coloring

    @property
    def solve_seconds(self) -> float:
        return self.timings.solve

    @property
    def total_seconds(self) -> float:
        return self.timings.total

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


def pivot_betweenness(
    graph: WeightedDiGraph,
    coloring: Coloring,
    seed: SeedLike = None,
    pivots_per_color: int = 1,
    engine: str = "arcstore",
    backend=None,
    workers: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Betweenness estimated from per-color representative sources.

    Returns ``(scores, representatives)``.  Each color contributes
    ``|P_i| / pivots`` times the dependency vector of each of its
    ``pivots`` sampled sources.  ``engine`` picks the Brandes
    implementation the restricted passes run on (the arcstore core by
    default); ``backend``/``workers`` reach the arcstore engine's
    kernel dispatch and source-batched fan-out.
    """
    rng = ensure_rng(seed)
    sources: list[int] = []
    weights: list[float] = []
    representatives: list[int] = []
    for members in coloring.classes():
        count = min(pivots_per_color, len(members))
        chosen = rng.choice(members, size=count, replace=False)
        for source in np.atleast_1d(chosen):
            sources.append(int(source))
            weights.append(len(members) / count)
            representatives.append(int(source))
    scores = betweenness_centrality(
        graph,
        sources=sources,
        source_weights=weights,
        engine=engine,
        backend=backend,
        workers=workers,
    )
    return scores, np.asarray(representatives)


def approx_betweenness(
    graph: WeightedDiGraph,
    n_colors: int | None = None,
    q: float | None = None,
    split_mean: str = "geometric",
    seed: SeedLike = 0,
    pivots_per_color: int = 1,
    engine: str = "arcstore",
    backend=None,
    workers: int | None = None,
) -> ApproxCentralityResult:
    """The paper's centrality pipeline: color, then pivot-Brandes,
    driven through the shared :mod:`repro.pipeline` runner.

    ``alpha = beta = 1`` per Sec. 5.2; the geometric-mean split is the
    paper's recommendation for scale-free social graphs (all weights are
    non-negative here).  ``backend``/``workers`` reach both the coloring
    engine and the restricted Brandes passes.
    """
    if n_colors is None and q is None:
        raise ValueError("approx_betweenness needs n_colors and/or q")
    from repro.pipeline import CentralityTask, run_task

    task = CentralityTask(
        graph,
        seed=seed,
        pivots_per_color=pivots_per_color,
        split_mean=split_mean,
        engine=engine,
        backend=backend,
        workers=workers,
    )
    result = run_task(task, n_colors=n_colors, q=q)
    scores, representatives = result.solution
    return ApproxCentralityResult(
        scores=scores,
        coloring=result.coloring,
        representatives=representatives,
        timings=result.timings,
    )
