"""Centrality accuracy metrics (Sec. 6.1 uses Spearman's rho)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import spearman_rho, top_k_overlap


@dataclass(frozen=True)
class CentralityAccuracy:
    spearman: float
    top_10_overlap: float
    top_50_overlap: float


def centrality_accuracy(
    exact: np.ndarray, approximate: np.ndarray
) -> CentralityAccuracy:
    """Bundle the accuracy statistics the experiments report."""
    exact = np.asarray(exact, dtype=float)
    approximate = np.asarray(approximate, dtype=float)
    n = exact.size
    return CentralityAccuracy(
        spearman=spearman_rho(exact, approximate),
        top_10_overlap=top_k_overlap(exact, approximate, min(10, n)),
        top_50_overlap=top_k_overlap(exact, approximate, min(50, n)),
    )
