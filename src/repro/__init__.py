"""Quasi-stable coloring for graph compression (VLDB 2022 reproduction).

A from-scratch Python implementation of Kayali & Suciu, "Quasi-stable
Coloring for Graph Compression: Approximating Max-Flow, Linear Programs,
and Centrality" (PVLDB 16(4), 2022; arXiv:2211.11912).

Public API overview
-------------------
Core coloring:
    :func:`q_color` — the Rothko heuristic (Algorithm 1);
    :func:`stable_coloring` — exact color refinement (1-WL fixpoint);
    :class:`Coloring` — partitions with lattice structure;
    :func:`max_q_err` / :func:`mean_q_err` — coloring quality metrics.

Applications:
    :func:`repro.lp.approx_lp_opt` — reduced linear programs (Sec. 4.1);
    :func:`repro.flow.approx_max_flow` — reduced max-flow (Sec. 4.2);
    :func:`repro.centrality.approx_betweenness` — color-pivot betweenness
    (Sec. 4.3).

Pipeline:
    :mod:`repro.pipeline` — the unified compress–solve–lift layer the
    three applications run on: :class:`~repro.pipeline.CompressionTask`
    adapters, :func:`~repro.pipeline.run_task`, the progressive multi-k
    runner :func:`~repro.pipeline.progressive_sweep` (one Rothko run,
    block weights maintained incrementally per split), and the keyed
    :class:`~repro.pipeline.ColoringCache` sharing colorings across
    tasks, weight modes, and checkpoints.

Streaming:
    :class:`repro.dynamic.DynamicColoring` — incremental maintenance of a
    quasi-stable coloring under edge insertions, deletions, and weight
    changes (local repair with a drift-budget fallback to recoloring).

Substrates live in :mod:`repro.graphs`, :mod:`repro.lp`, :mod:`repro.flow`,
:mod:`repro.centrality`; dataset stand-ins and churn scenarios in
:mod:`repro.datasets`; the paper's tables and figures in
:mod:`repro.experiments` and ``benchmarks/``.
"""

from repro.core.partition import Coloring
from repro.core.qerror import max_q_err, mean_q_err, q_error_report
from repro.core.refinement import congruence_coloring, stable_coloring
from repro.core.reduced import reduced_adjacency, reduced_graph
from repro.core.rothko import Rothko, RothkoResult, RothkoStep, eps_color, q_color
from repro.core.similarity import (
    Bisimulation,
    CappedCongruence,
    Equality,
    EpsRelative,
    QAbsolute,
)
from repro.dynamic import DynamicColoring, EdgeUpdate
from repro.graphs.digraph import WeightedDiGraph

__version__ = "1.0.0"

__all__ = [
    "Coloring",
    "max_q_err",
    "mean_q_err",
    "q_error_report",
    "congruence_coloring",
    "stable_coloring",
    "reduced_adjacency",
    "reduced_graph",
    "Rothko",
    "RothkoResult",
    "RothkoStep",
    "q_color",
    "eps_color",
    "Bisimulation",
    "CappedCongruence",
    "Equality",
    "EpsRelative",
    "QAbsolute",
    "DynamicColoring",
    "EdgeUpdate",
    "WeightedDiGraph",
    "__version__",
]
