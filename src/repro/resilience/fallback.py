"""Runtime kernel fallback: demote a crashing accelerator kernel to numpy.

An optional backend that imports cleanly can still fail mid-run — a
numba kernel hitting a typing corner, a torch op raising on a tensor
shape the parity sweep never produced, a driver-level CUDA error.
Without a net, one kernel call late in a 128-color run crashes the
whole solve.

:class:`ResilientBackend` wraps an accelerator backend and, per kernel,
catches the *first* failure, emits a single :class:`ResilienceWarning`
plus ``resilience.fallback.kernel`` counters, replays the call on the
numpy reference, and permanently routes that kernel to numpy for the
rest of the process.  Every other kernel keeps running accelerated.
The numpy reference defines the bit-exact semantics (see
``backends/base.py``), so the demoted call returns exactly what a
numpy-only run would have — results stay deterministic, only the
timing changes.

``KeyboardInterrupt``/``SystemExit`` and :class:`MemoryError` pass
through: the first two are user intent, and retrying an OOM on the
same arrays in the same process is how one crash becomes two.
"""

from __future__ import annotations

import warnings

from repro.core.backends.base import KERNEL_NAMES, SOLVER_KERNEL_NAMES
from repro.obs import recorder as _obs

__all__ = ["ResilienceWarning", "ResilientBackend"]


class ResilienceWarning(UserWarning):
    """A component failed and a degraded substitute took over."""


def _make_proxy(kernel: str):
    def proxy(self, *args, **kwargs):
        if kernel in self._demoted:
            return getattr(self._reference, kernel)(*args, **kwargs)
        try:
            return getattr(self._inner, kernel)(*args, **kwargs)
        except (MemoryError, KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._demote(kernel, exc)
            return getattr(self._reference, kernel)(*args, **kwargs)

    proxy.__name__ = kernel
    proxy.__qualname__ = f"ResilientBackend.{kernel}"
    proxy.__doc__ = f"Fallback-guarded dispatch of ``{kernel}``."
    return proxy


class ResilientBackend:
    """Proxy a backend's kernel surface with per-kernel numpy fallback.

    Mirrors the :class:`~repro.core.backends.base.Backend` protocol:
    ``name``/``device``/``parallel_kernels`` come from the wrapped
    backend, every kernel method dispatches through the guard above.
    Demotions are per instance — and backend instances are cached per
    ``(name, device)`` in ``backends/__init__``, so one demotion covers
    the process, as intended.
    """

    def __init__(self, inner, reference=None) -> None:
        if reference is None:
            # Deferred import: backends/__init__ imports this module.
            from repro.core.backends.numpy_backend import NumpyBackend

            reference = NumpyBackend()
        self._inner = inner
        self._reference = reference
        self._demoted: dict[str, str] = {}

    # protocol attributes delegate so late device changes stay visible
    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def device(self) -> str:
        return self._inner.device

    @property
    def parallel_kernels(self) -> bool:
        return self._inner.parallel_kernels

    @property
    def demoted_kernels(self) -> dict:
        """Kernel -> first-failure message, for tests and diagnostics."""
        return dict(self._demoted)

    def _demote(self, kernel: str, exc: Exception) -> None:
        self._demoted[kernel] = f"{type(exc).__name__}: {exc}"
        _obs._active.count("resilience.fallback.kernel")
        _obs._active.count(f"resilience.fallback.{self._inner.name}.{kernel}")
        warnings.warn(
            f"backend {self._inner.name!r} kernel {kernel!r} raised "
            f"{type(exc).__name__} ({exc}); demoting this kernel to the "
            f"numpy reference for the rest of the process",
            ResilienceWarning,
            stacklevel=3,
        )

    def __repr__(self) -> str:
        demoted = sorted(self._demoted) or "none"
        return f"<ResilientBackend {self._inner!r} demoted={demoted}>"


for _kernel in KERNEL_NAMES + SOLVER_KERNEL_NAMES:
    setattr(ResilientBackend, _kernel, _make_proxy(_kernel))
del _kernel
