"""Resilience layer: fault injection, kernel fallback, degradation.

Three pieces, one goal — the stack survives the failures its scale
invites:

:mod:`repro.resilience.faults`
    deterministic fault injection behind a no-op default, so every
    recovery path below is exercised in CI rather than trusted;
:mod:`repro.resilience.fallback`
    :class:`ResilientBackend`, which demotes a crashing numba/torch
    kernel to the numpy reference instead of crashing the run;
the hardened hosts
    crash-safe resumable ingest lives in ``graphs/edgestore.py``
    (journal + staged atomic commit + ``verify_store``), self-healing
    process pools in ``core/backends/executor.py``, and the
    certified-ε loop in ``pipeline/certified.py``.

Counters under ``resilience.*`` (``faults.fired``, ``fallback.kernel``,
``fallback.task``, ``fallback.degrade``) record every recovery so a
silently limping run is still visible in metrics.
"""

from repro.resilience.fallback import ResilienceWarning, ResilientBackend
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    active_plan,
    inject,
    injecting,
    install_from_env,
    install_plan,
    uninstall_plan,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "ResilienceWarning",
    "ResilientBackend",
    "active_plan",
    "inject",
    "injecting",
    "install_from_env",
    "install_plan",
    "uninstall_plan",
]
