"""Deterministic, seedable fault injection behind a no-op default.

Failure handling that is never exercised is failure handling that does
not work.  This module compiles *named injection points* into the
stack's long-running machinery — edge-store ingest chunks, the round
executor's worker tasks, the staged store commit — the same way
:mod:`repro.obs` compiles spans into the hot paths: the call is always
there, but with no plan installed it is one module-global load and a
``None`` check, so production runs pay nothing measurable.

A :class:`FaultPlan` arms rules against those sites::

    plan = FaultPlan().on("edgestore.merge.chunk", occurrence=2)
    with injecting(plan):
        ingest_arrays(path, src, dst)        # raises FaultInjected on
                                             # the merge's second chunk

Rules are deterministic: each fires on an exact occurrence count per
site (per process), and probabilistic rules draw from a plan-seeded
generator, so a failing schedule replays bit-identically.  Actions:

``"raise"``
    raise :class:`~repro.exceptions.FaultInjected` (the default);
``"kill"``
    ``SIGKILL`` the calling process — the crash-safety tests' hammer
    (no ``atexit``, no ``finally``, exactly like the OOM killer);
``"sleep"``
    block for ``seconds`` — simulates a hung worker for the executor's
    timeout path;
any callable
    invoked with the site's context dict (escape hatch for bespoke
    corruption).

Subprocesses opt in through the ``REPRO_FAULTS`` environment variable
(see :func:`FaultPlan.from_spec`), which the CLI arms at startup — that
is how CI kills a real ``repro ingest`` mid-merge and then resumes it.
"""

from __future__ import annotations

import fnmatch
import os
import signal
import threading
import time
from typing import Any, Callable

import numpy as np

from repro.exceptions import FaultInjected, ReproError
from repro.obs import recorder as _obs

__all__ = [
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "inject",
    "injecting",
    "install_from_env",
    "install_plan",
    "uninstall_plan",
]

#: environment variable carrying a ``FaultPlan.from_spec`` string
ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("raise", "kill", "sleep")

#: the installed plan; ``None`` is the production no-op fast path
_PLAN: "FaultPlan | None" = None


class FaultRule:
    """One armed failure: a site pattern plus when and how to fire."""

    def __init__(
        self,
        site: str,
        *,
        action: "str | Callable[[dict], None]" = "raise",
        occurrence: int = 1,
        times: int | None = 1,
        probability: float = 1.0,
        seconds: float = 3600.0,
        match: dict | None = None,
    ) -> None:
        if not callable(action) and action not in ACTIONS:
            raise ValueError(
                f"action must be callable or one of {ACTIONS}, got {action!r}"
            )
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        if times is not None and times < 1:
            raise ValueError(f"times must be None or >= 1, got {times}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.site = site
        self.action = action
        self.occurrence = int(occurrence)
        self.times = times
        self.probability = float(probability)
        self.seconds = float(seconds)
        self.match = dict(match) if match else None
        self.seen = 0  # matching visits (per process)
        self.fired = 0

    def matches(self, site: str, context: dict) -> bool:
        if not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.match:
            return all(context.get(k) == v for k, v in self.match.items())
        return True

    def __repr__(self) -> str:
        action = self.action if isinstance(self.action, str) else "callable"
        return (
            f"<FaultRule {self.site}@{self.occurrence} action={action} "
            f"seen={self.seen} fired={self.fired}>"
        )


class FaultPlan:
    """A deterministic schedule of failures over named injection points.

    Occurrence counters and the probability stream are plan-local and
    advance only on matching visits, so two plans built the same way
    fire identically — and a plan forked into a worker process carries
    its own counters (each process replays the schedule from its own
    visit stream).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        #: ``(site, occurrence)`` pairs of every fired rule, in order
        self.fired: list[tuple[str, int]] = []
        self._hits: dict[str, int] = {}

    # -- construction ----------------------------------------------------
    def on(self, site: str, **kwargs: Any) -> "FaultPlan":
        """Arm a rule (chainable); see :class:`FaultRule` for knobs."""
        self.rules.append(FaultRule(site, **kwargs))
        return self

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"site[@occurrence][=action][;...]"`` into a plan.

        Examples: ``"edgestore.merge.chunk@2=kill"`` kills the process
        on the merge's second emitted chunk; ``"edgestore.commit"``
        raises on the first commit.  The format is what the
        ``REPRO_FAULTS`` environment variable carries into
        subprocesses.
        """
        plan = cls(seed=seed)
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            site, _, action = part.partition("=")
            site, _, occurrence = site.partition("@")
            site = site.strip()
            if not site:
                raise ReproError(f"bad fault spec {part!r}: empty site")
            try:
                occ = int(occurrence) if occurrence else 1
            except ValueError as exc:
                raise ReproError(
                    f"bad fault spec {part!r}: occurrence must be an "
                    f"integer, got {occurrence!r}"
                ) from exc
            try:
                plan.on(
                    site, occurrence=occ, action=action.strip() or "raise"
                )
            except ValueError as exc:
                raise ReproError(f"bad fault spec {part!r}: {exc}") from exc
        if not plan.rules:
            raise ReproError(f"fault spec {spec!r} contains no rules")
        return plan

    # -- runtime ---------------------------------------------------------
    def hits(self, site: str) -> int:
        """How many times ``site`` has been visited under this plan."""
        return self._hits.get(site, 0)

    def reset(self) -> None:
        """Zero all counters and re-seed the probability stream."""
        with self._lock:
            self._rng = np.random.default_rng(self.seed)
            self.fired.clear()
            self._hits.clear()
            for rule in self.rules:
                rule.seen = 0
                rule.fired = 0

    def visit(self, site: str, context: dict) -> None:
        """Record one pass over ``site``; fire any due rule."""
        due: FaultRule | None = None
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            for rule in self.rules:
                if not rule.matches(site, context):
                    continue
                rule.seen += 1
                if rule.seen < rule.occurrence:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if rule.probability < 1.0:
                    # Drawn per eligible visit from the plan-seeded
                    # stream: the fire pattern is a pure function of the
                    # plan construction and the visit sequence.
                    if self._rng.random() >= rule.probability:
                        continue
                rule.fired += 1
                self.fired.append((site, rule.seen))
                due = rule
                break
        if due is None:
            return
        _obs._active.count("resilience.faults.fired")
        _obs._active.count(f"resilience.faults.{site}")
        if callable(due.action):
            due.action(dict(context, site=site))
            return
        if due.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if due.action == "sleep":
            time.sleep(due.seconds)
            return
        raise FaultInjected(
            f"injected fault at {site} (occurrence {due.seen})"
        )


# ----------------------------------------------------------------------
# installation
# ----------------------------------------------------------------------
def inject(site: str, **context: Any) -> None:
    """The injection point: a no-op unless a plan is installed.

    Compiled into ingest chunks, the staged commit, and executor worker
    tasks; with no plan the cost is one global load and a ``None``
    check (guarded below 1% of any instrumented workload by
    ``tests/resilience/test_overhead.py``).
    """
    plan = _PLAN
    if plan is not None:
        plan.visit(site, context)


def install_plan(plan: "FaultPlan | None") -> "FaultPlan | None":
    """Install ``plan`` process-wide; returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def uninstall_plan() -> None:
    """Remove any installed plan (back to the no-op fast path)."""
    install_plan(None)


def active_plan() -> "FaultPlan | None":
    """The currently installed plan (``None`` in production)."""
    return _PLAN


class injecting:
    """Scoped installation: ``with injecting(plan): ...``."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        self._previous = install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc: Any) -> None:
        install_plan(self._previous)


def install_from_env(environ=os.environ) -> "FaultPlan | None":
    """Arm the plan named by ``REPRO_FAULTS``, if any (CLI startup).

    Returns the installed plan (or ``None``).  The variable is read
    once; an empty value is a no-op, a malformed one raises — a typo'd
    fault spec silently not firing would defeat the test.
    """
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    install_plan(plan)
    return plan
