"""Edge-churn scenario generators: shared update traces for benchmarks,
tests, and the ``repro update`` / ``repro stream`` CLI.

Each generator simulates the stream against a *shadow* edge set, so a
trace is always valid for sequential replay: deletions target edges
that exist at that point in the stream, insertions target non-edges.
Traces are lists of :class:`~repro.dynamic.updates.EdgeUpdate` in node
labels, reproducible from a seed.

Scenarios
---------
``random``  uniform endpoint churn — the Fig. 2 perturbation plus
            deletions;
``hub``     churn concentrated on the highest-degree nodes (at least one
            endpoint is a hub), the hard case for scale-free graphs;
``jitter``  weights of existing edges drift multiplicatively
            (lognormal), no structural change.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.dynamic.updates import EdgeUpdate
from repro.exceptions import DatasetError, GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.rng import SeedLike, ensure_rng


class _EdgePool:
    """Shadow edge set with O(1) membership, add, remove, random pick."""

    def __init__(self) -> None:
        self._keys: list[tuple[int, int]] = []
        self._pos: dict[tuple[int, int], int] = {}
        self._weight: dict[tuple[int, int], float] = {}

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._pos

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: tuple[int, int], weight: float) -> None:
        if key not in self._pos:
            self._pos[key] = len(self._keys)
            self._keys.append(key)
        self._weight[key] = weight

    def weight(self, key: tuple[int, int]) -> float:
        return self._weight[key]

    def remove(self, key: tuple[int, int]) -> None:
        position = self._pos.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[position] = last
            self._pos[last] = position
        del self._weight[key]

    def pick(self, rng: np.random.Generator) -> tuple[int, int]:
        return self._keys[int(rng.integers(0, len(self._keys)))]

    def scan(self) -> list[tuple[int, int]]:
        return self._keys


def _edge_state(
    graph: WeightedDiGraph,
) -> tuple[
    list[Hashable],
    _EdgePool,
    Callable[[int, int], tuple[int, int]],
]:
    """Node labels, a shadow edge pool, and the edge-keying function.

    Undirected graphs store edges under a canonical ``(min, max)`` key so
    the shadow set matches both orientations — otherwise an "insertion"
    of the reverse of an existing edge would silently be an overwrite.
    """
    labels = graph.labels()
    if graph.directed:
        def key(ui: int, vi: int) -> tuple[int, int]:
            return (ui, vi)
    else:
        def key(ui: int, vi: int) -> tuple[int, int]:
            return (ui, vi) if ui <= vi else (vi, ui)
    edges = _EdgePool()
    for u, v, w in graph.edges():
        edges.add(key(graph.index_of(u), graph.index_of(v)), w)
    return labels, edges, key


def random_churn(
    graph: WeightedDiGraph,
    n_updates: int,
    seed: SeedLike = None,
    insert_fraction: float = 0.6,
    weight: float = 1.0,
    max_attempts_factor: int = 50,
) -> list[EdgeUpdate]:
    """Uniformly random insertions and deletions (Fig. 2 + removals)."""
    rng = ensure_rng(seed)
    labels, edges, key = _edge_state(graph)
    n = len(labels)
    if n < 2:
        raise GraphError("need at least 2 nodes to generate churn")
    updates: list[EdgeUpdate] = []
    attempts = 0
    budget = max(n_updates * max_attempts_factor, 100)
    while len(updates) < n_updates:
        attempts += 1
        if attempts > budget:
            raise GraphError(
                f"could not generate {n_updates} updates after {attempts} attempts"
            )
        if len(edges) and rng.random() >= insert_fraction:
            ui, vi = edges.pick(rng)
            edges.remove((ui, vi))
            updates.append(EdgeUpdate.delete(labels[ui], labels[vi]))
            continue
        ui, vi = (int(x) for x in rng.integers(0, n, size=2))
        if ui == vi or key(ui, vi) in edges:
            continue
        edges.add(key(ui, vi), weight)
        updates.append(EdgeUpdate.insert(labels[ui], labels[vi], weight))
    return updates


def hub_churn(
    graph: WeightedDiGraph,
    n_updates: int,
    seed: SeedLike = None,
    hub_fraction: float = 0.05,
    insert_fraction: float = 0.6,
    weight: float = 1.0,
    max_attempts_factor: int = 50,
) -> list[EdgeUpdate]:
    """Churn where one endpoint is always a hub (top-degree node).

    Hubs sit in small, high-error color classes, so this is the
    adversarial case for local repair: every update lands on the colors
    with the least slack.
    """
    rng = ensure_rng(seed)
    labels, edges, key = _edge_state(graph)
    n = len(labels)
    if n < 2:
        raise GraphError("need at least 2 nodes to generate churn")
    degrees = np.zeros(n)
    for ui, vi in edges.scan():
        degrees[ui] += 1
        degrees[vi] += 1
    n_hubs = max(1, int(round(n * hub_fraction)))
    hubs = np.argsort(degrees)[::-1][:n_hubs]
    hub_set = set(hubs.tolist())
    updates: list[EdgeUpdate] = []
    attempts = 0
    budget = max(n_updates * max_attempts_factor, 100)
    while len(updates) < n_updates:
        attempts += 1
        if attempts > budget:
            raise GraphError(
                f"could not generate {n_updates} hub updates after {attempts} attempts"
            )
        if len(edges) and rng.random() >= insert_fraction:
            # Rejection-sample a hub-incident edge in expected O(1); fall
            # back to a full scan only when hub edges are scarce.
            picked = None
            for _ in range(50):
                candidate = edges.pick(rng)
                if candidate[0] in hub_set or candidate[1] in hub_set:
                    picked = candidate
                    break
            if picked is None:
                hub_edges = [
                    pair for pair in edges.scan()
                    if pair[0] in hub_set or pair[1] in hub_set
                ]
                if not hub_edges:
                    continue
                picked = hub_edges[int(rng.integers(0, len(hub_edges)))]
            ui, vi = picked
            edges.remove((ui, vi))
            updates.append(EdgeUpdate.delete(labels[ui], labels[vi]))
            continue
        hub = int(hubs[int(rng.integers(0, n_hubs))])
        other = int(rng.integers(0, n))
        ui, vi = (hub, other) if rng.random() < 0.5 else (other, hub)
        if ui == vi or key(ui, vi) in edges:
            continue
        edges.add(key(ui, vi), weight)
        updates.append(EdgeUpdate.insert(labels[ui], labels[vi], weight))
    return updates


def weight_jitter(
    graph: WeightedDiGraph,
    n_updates: int,
    seed: SeedLike = None,
    sigma: float = 0.3,
) -> list[EdgeUpdate]:
    """Multiplicative lognormal drift on existing edge weights."""
    rng = ensure_rng(seed)
    labels, edges, _ = _edge_state(graph)
    if not len(edges):
        raise GraphError("graph has no edges to jitter")
    updates: list[EdgeUpdate] = []
    for _ in range(n_updates):
        ui, vi = edges.pick(rng)
        new_weight = float(edges.weight((ui, vi)) * np.exp(rng.normal(0.0, sigma)))
        edges.add((ui, vi), new_weight)
        updates.append(EdgeUpdate.reweight(labels[ui], labels[vi], new_weight))
    return updates


#: Registry of churn scenarios, keyed by CLI/benchmark name.
CHURN_SCENARIOS: dict[str, Callable[..., list[EdgeUpdate]]] = {
    "random": random_churn,
    "hub": hub_churn,
    "jitter": weight_jitter,
}


def churn_scenario(
    name: str,
    graph: WeightedDiGraph,
    n_updates: int,
    seed: SeedLike = None,
    **kwargs,
) -> list[EdgeUpdate]:
    """Generate a named churn trace (see :data:`CHURN_SCENARIOS`)."""
    try:
        generator = CHURN_SCENARIOS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown churn scenario {name!r}; available: {sorted(CHURN_SCENARIOS)}"
        ) from exc
    return generator(graph, n_updates, seed=seed, **kwargs)
