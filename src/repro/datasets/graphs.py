"""Graph dataset stand-ins (Table 2).

Each loader is a seeded generator whose family and density match the real
dataset it stands in for; ``scale`` multiplies the node count (1.0 = the
paper's size, which is feasible but slow in pure Python — the benchmark
harness uses small scales).  Degree parameters are chosen so that
``|E| / |V|`` matches the paper's Table 2 at any scale.
"""

from __future__ import annotations

from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.generators import (
    barabasi_albert,
    karate_club,
    powerlaw_cluster,
    stochastic_block,
)


def _scaled(count: int, scale: float, minimum: int = 50) -> int:
    return max(minimum, int(round(count * scale)))


def load_karate(scale: float = 1.0, seed: int = 0) -> WeightedDiGraph:
    """Zachary's karate club — always the real 34-node graph."""
    return karate_club()


def load_openflights(scale: float = 1.0, seed: int = 10) -> WeightedDiGraph:
    """OpenFlights routes stand-in: hub-dominated scale-free network.

    Paper: |V| = 3 425, |E| = 38 513 (mean degree ~22 -> BA m = 11).
    """
    return barabasi_albert(_scaled(3_425, scale), 11, seed=seed)


def load_dblp(scale: float = 1.0, seed: int = 11) -> WeightedDiGraph:
    """DBLP co-authorship stand-in: clustered sparse powerlaw graph.

    Paper: |V| = 317 080, |E| = 1 049 866 (mean degree ~6.6 -> m = 3).
    """
    return powerlaw_cluster(_scaled(317_080, scale), 3, 0.4, seed=seed)


def load_astroph(scale: float = 1.0, seed: int = 12) -> WeightedDiGraph:
    """Arxiv AstroPhysics collaboration stand-in (m = 10, clustered)."""
    return powerlaw_cluster(_scaled(18_772, scale), 10, 0.35, seed=seed)


def load_facebook(scale: float = 1.0, seed: int = 13) -> WeightedDiGraph:
    """Facebook page-page network stand-in (m = 8, clustered)."""
    return powerlaw_cluster(_scaled(22_470, scale), 8, 0.3, seed=seed)


def load_deezer(scale: float = 1.0, seed: int = 14) -> WeightedDiGraph:
    """Deezer Europe social network stand-in (m = 3, mildly clustered)."""
    return powerlaw_cluster(_scaled(28_281, scale), 3, 0.2, seed=seed)


def load_enron(scale: float = 1.0, seed: int = 15) -> WeightedDiGraph:
    """Enron email network stand-in (m = 5, hub-heavy)."""
    return barabasi_albert(_scaled(36_692, scale), 5, seed=seed)


def load_epinions(scale: float = 1.0, seed: int = 16) -> WeightedDiGraph:
    """Epinions trust network stand-in (m = 7, hub-heavy).

    Paper: |V| = 75 879, |E| = 508 837.
    """
    return barabasi_albert(_scaled(75_879, scale), 7, seed=seed)


def load_community_blocks(
    scale: float = 1.0, seed: int = 17
) -> WeightedDiGraph:
    """Extra community-structured graph (SBM) for ablations."""
    n = _scaled(2_000, scale)
    block = max(10, n // 10)
    sizes = [block] * 10
    p_in, p_out = 0.08, 0.004
    probs = [
        [p_in if i == j else p_out for j in range(10)] for i in range(10)
    ]
    return stochastic_block(sizes, probs, seed=seed)
