"""Max-flow instance stand-ins (Table 2, "Maximum-flow" block).

The paper's flow instances are computer-vision benchmarks: stereo
matching (Tsukuba, Venus, Sawtooth) and volumetric cell segmentation
(SimCells, Cells).  Structurally these are BK-style grid networks: one
node per pixel/voxel, 4/6-connected smoothness arcs with a few distinct
capacity levels, and per-pixel terminal arcs from the source / to the
sink whose capacities encode data terms.  The stand-ins reproduce exactly
that structure with a smooth synthetic "intensity" field, quantized to a
handful of levels — quantization is what gives the real instances their
near-regular blocks, which is what the coloring exploits.
"""

from __future__ import annotations

import numpy as np

from repro.flow.network import FlowNetwork
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.rng import SeedLike, ensure_rng


def _smooth_field(
    shape: tuple[int, ...], levels: int, rng: np.random.Generator
) -> np.ndarray:
    """Quantized smooth random field in ``{0, ..., levels - 1}``.

    A sum of a few random low-frequency cosine waves, then quantized —
    cheap, deterministic, and produces the plateau structure of real
    disparity/label fields.
    """
    grids = np.meshgrid(
        *[np.linspace(0.0, 1.0, s) for s in shape], indexing="ij"
    )
    field = np.zeros(shape)
    for _ in range(4):
        frequency = rng.uniform(0.5, 3.0, size=len(shape))
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.cos(
            2 * np.pi * sum(f * g for f, g in zip(frequency, grids)) + phase
        )
        field += rng.uniform(0.5, 1.0) * wave
    field -= field.min()
    field /= max(field.max(), 1e-12)
    return np.minimum((field * levels).astype(int), levels - 1)


def vision_grid_instance(
    width: int,
    height: int,
    levels: int = 8,
    smoothness: float = 2.0,
    seed: SeedLike = 0,
) -> FlowNetwork:
    """A 2-D BK-style max-flow instance (stereo-matching structure).

    * pixel (x, y) has an arc from ``s`` with capacity = its quantized
      intensity, and an arc to ``t`` with the complementary level
      (the two data terms);
    * 4-neighbors share symmetric arcs with capacity ``smoothness``
      scaled by the local gradient level (few distinct values).
    """
    rng = ensure_rng(seed)
    field = _smooth_field((height, width), levels, rng)
    graph = WeightedDiGraph(directed=True)
    graph.add_node("s")
    graph.add_node("t")
    for y in range(height):
        for x in range(width):
            graph.add_node((x, y))
    for y in range(height):
        for x in range(width):
            level = float(field[y, x])
            if level > 0:
                graph.add_edge("s", (x, y), level)
            complement = float(levels - 1 - field[y, x])
            if complement > 0:
                graph.add_edge((x, y), "t", complement)
            for dx, dy in ((1, 0), (0, 1)):
                nx_, ny_ = x + dx, y + dy
                if nx_ < width and ny_ < height:
                    gradient = abs(int(field[y, x]) - int(field[ny_, nx_]))
                    capacity = smoothness * (1.0 + min(gradient, 2))
                    graph.add_edge((x, y), (nx_, ny_), capacity)
                    graph.add_edge((nx_, ny_), (x, y), capacity)
    return FlowNetwork(graph, "s", "t")


def segmentation_3d_instance(
    nx: int,
    ny: int,
    nz: int,
    levels: int = 6,
    smoothness: float = 1.5,
    seed: SeedLike = 0,
) -> FlowNetwork:
    """A 3-D BK-style instance (cell-segmentation structure)."""
    rng = ensure_rng(seed)
    field = _smooth_field((nz, ny, nx), levels, rng)
    graph = WeightedDiGraph(directed=True)
    graph.add_node("s")
    graph.add_node("t")
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                graph.add_node((x, y, z))
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                level = float(field[z, y, x])
                if level > 0:
                    graph.add_edge("s", (x, y, z), level)
                complement = float(levels - 1 - field[z, y, x])
                if complement > 0:
                    graph.add_edge((x, y, z), "t", complement)
                for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                    x2, y2, z2 = x + dx, y + dy, z + dz
                    if x2 < nx and y2 < ny and z2 < nz:
                        gradient = abs(
                            int(field[z, y, x]) - int(field[z2, y2, x2])
                        )
                        capacity = smoothness * (1.0 + min(gradient, 2))
                        graph.add_edge((x, y, z), (x2, y2, z2), capacity)
                        graph.add_edge((x2, y2, z2), (x, y, z), capacity)
    return FlowNetwork(graph, "s", "t")


def _scaled_side(paper_nodes: int, scale: float, minimum: int = 8) -> int:
    """Side length of a square grid with ~``paper_nodes * scale`` pixels."""
    return max(minimum, int(round((paper_nodes * scale) ** 0.5)))


def load_tsukuba0(scale: float = 1.0, seed: int = 20) -> FlowNetwork:
    """Tsukuba stereo instance stand-in (paper: 110 594 nodes)."""
    side = _scaled_side(110_594, scale)
    return vision_grid_instance(side, side, levels=16, seed=seed)


def load_tsukuba2(scale: float = 1.0, seed: int = 21) -> FlowNetwork:
    side = _scaled_side(110_594, scale)
    return vision_grid_instance(side, side, levels=16, seed=seed)


def load_venus0(scale: float = 1.0, seed: int = 22) -> FlowNetwork:
    """Venus stereo instance stand-in (paper: 166 224 nodes)."""
    side = _scaled_side(166_224, scale)
    return vision_grid_instance(side, side, levels=20, seed=seed)


def load_venus1(scale: float = 1.0, seed: int = 23) -> FlowNetwork:
    side = _scaled_side(166_224, scale)
    return vision_grid_instance(side, side, levels=20, seed=seed)


def load_sawtooth0(scale: float = 1.0, seed: int = 24) -> FlowNetwork:
    """Sawtooth stereo instance stand-in (paper: 164 922 nodes)."""
    side = _scaled_side(164_922, scale)
    return vision_grid_instance(side, side, levels=20, seed=seed)


def load_sawtooth1(scale: float = 1.0, seed: int = 25) -> FlowNetwork:
    side = _scaled_side(164_922, scale)
    return vision_grid_instance(side, side, levels=20, seed=seed)


def load_simcells(scale: float = 1.0, seed: int = 26) -> FlowNetwork:
    """Synthetic cells segmentation stand-in (paper: 903 962 nodes, 3-D)."""
    side = max(5, int(round((903_962 * scale) ** (1.0 / 3.0))))
    return segmentation_3d_instance(side, side, side, seed=seed)


def load_cells(scale: float = 1.0, seed: int = 27) -> FlowNetwork:
    """Cells segmentation stand-in (paper: 3 582 102 nodes, 3-D)."""
    side = max(6, int(round((3_582_102 * scale) ** (1.0 / 3.0))))
    return segmentation_3d_instance(side, side, side, seed=seed)
