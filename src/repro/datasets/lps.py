"""LP dataset stand-ins (Table 3).

The real instances come from Mittelmann's barrier-LP benchmark; offline we
substitute structured generators from :mod:`repro.lp.generators` whose
shape (tall/wide/assignment-like) matches each instance.  ``scale``
multiplies the instance size.
"""

from __future__ import annotations

from repro.lp.generators import (
    ex10_like,
    planted_block_lp,
    qap_like,
    supportcase_like,
)
from repro.lp.model import LinearProgram


def load_qap15(scale: float = 1.0, seed: int = 30) -> LinearProgram:
    """qap15 stand-in (paper: 6 331 rows x 22 275 cols, QAP family).

    The QAP linearization size grows ~quadratically in ``size``; the
    default reproduces the benchmark's shape at ``size = 15``.
    """
    size = max(4, int(round(15 * scale**0.5)))
    return qap_like(size=size, seed=seed, name="qap15")


def load_nug08(scale: float = 1.0, seed: int = 31) -> LinearProgram:
    """nug08-3rd stand-in (paper: 19 728 x 20 448, QAP family)."""
    size = max(4, int(round(8 * scale**0.5)))
    return qap_like(size=size, seed=seed, name="nug08-3rd")


def load_supportcase10(scale: float = 1.0, seed: int = 32) -> LinearProgram:
    """supportcase10 stand-in (paper: 10 713 x 1 429 098 — very wide)."""
    return supportcase_like(
        n_rows=max(30, int(round(300 * scale))),
        n_cols=max(300, int(round(12_000 * scale))),
        seed=seed,
    )


def load_ex10(scale: float = 1.0, seed: int = 33) -> LinearProgram:
    """ex10 stand-in (paper: 69 609 x 17 680 — tall)."""
    return ex10_like(
        n_rows=max(200, int(round(6_000 * scale))),
        n_cols=max(60, int(round(1_500 * scale))),
        seed=seed,
    )


def load_block_lp(scale: float = 1.0, seed: int = 34) -> LinearProgram:
    """Extra planted-block LP with a known-good coloring, for ablations."""
    return planted_block_lp(
        n_rows=max(60, int(round(600 * scale))),
        n_cols=max(40, int(round(400 * scale))),
        row_groups=12,
        col_groups=8,
        noise=0.05,
        seed=seed,
        name="planted-block",
    )
