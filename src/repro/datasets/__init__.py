"""Dataset registry: seeded stand-ins for the paper's 20 datasets, plus
churn-scenario generators for the streaming-update workloads."""

from repro.datasets.churn import (
    CHURN_SCENARIOS,
    churn_scenario,
    hub_churn,
    random_churn,
    weight_jitter,
)
from repro.datasets.registry import (
    DATASETS,
    Dataset,
    get_dataset,
    load_flow,
    load_graph,
    load_lp,
    table2_rows,
    table3_rows,
)

__all__ = [
    "CHURN_SCENARIOS",
    "churn_scenario",
    "hub_churn",
    "random_churn",
    "weight_jitter",
    "DATASETS",
    "Dataset",
    "get_dataset",
    "load_flow",
    "load_graph",
    "load_lp",
    "table2_rows",
    "table3_rows",
]
