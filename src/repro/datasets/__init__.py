"""Dataset registry: seeded stand-ins for the paper's 20 datasets."""

from repro.datasets.registry import (
    DATASETS,
    Dataset,
    get_dataset,
    load_flow,
    load_graph,
    load_lp,
    table2_rows,
    table3_rows,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "get_dataset",
    "load_flow",
    "load_graph",
    "load_lp",
    "table2_rows",
    "table3_rows",
]
