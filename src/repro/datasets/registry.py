"""The dataset registry powering Tables 2 and 3.

Every entry records the paper-reported size, whether the paper's dataset
was real or simulated, the original source, and the loader that builds
our stand-in at a requested ``scale`` (1.0 = paper size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.datasets import flows as _flows
from repro.datasets import graphs as _graphs
from repro.datasets import lps as _lps
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class Dataset:
    """Metadata + loader for one dataset stand-in."""

    name: str
    kind: str  # "graph" | "flow" | "lp"
    group: str  # paper table grouping
    paper_rows: int  # |V| for graphs, LP rows for LPs
    paper_cols: int  # |E| for graphs, LP cols for LPs
    real: bool  # was the paper's dataset real data?
    source: str
    loader: Callable[..., Any]

    def load(self, scale: float = 1.0, **kwargs: Any) -> Any:
        return self.loader(scale=scale, **kwargs)


DATASETS: dict[str, Dataset] = {
    dataset.name: dataset
    for dataset in [
        # --- general evaluation graphs (Table 2 top) -------------------
        Dataset("karate", "graph", "general", 34, 78, True,
                "Zachary 1977", _graphs.load_karate),
        Dataset("openflights", "graph", "general", 3_425, 38_513, True,
                "openflights.org", _graphs.load_openflights),
        Dataset("dblp", "graph", "general", 317_080, 1_049_866, True,
                "dblp.uni-trier.de", _graphs.load_dblp),
        # --- centrality graphs -----------------------------------------
        Dataset("astroph", "graph", "centrality", 18_772, 198_110, True,
                "SNAP ca-AstroPh", _graphs.load_astroph),
        Dataset("facebook", "graph", "centrality", 22_470, 171_002, True,
                "SNAP facebook", _graphs.load_facebook),
        Dataset("deezer", "graph", "centrality", 28_281, 92_752, True,
                "SNAP deezer-europe", _graphs.load_deezer),
        Dataset("enron", "graph", "centrality", 36_692, 183_831, True,
                "SNAP email-Enron", _graphs.load_enron),
        Dataset("epinions", "graph", "centrality", 75_879, 508_837, True,
                "SNAP soc-Epinions1", _graphs.load_epinions),
        # --- max-flow instances -----------------------------------------
        Dataset("tsukuba0", "flow", "maxflow", 110_594, 506_546, True,
                "Middlebury stereo", _flows.load_tsukuba0),
        Dataset("tsukuba2", "flow", "maxflow", 110_594, 500_544, True,
                "Middlebury stereo", _flows.load_tsukuba2),
        Dataset("venus0", "flow", "maxflow", 166_224, 787_946, True,
                "Middlebury stereo", _flows.load_venus0),
        Dataset("venus1", "flow", "maxflow", 166_224, 787_716, True,
                "Middlebury stereo", _flows.load_venus1),
        Dataset("sawtooth0", "flow", "maxflow", 164_922, 790_296, True,
                "Middlebury stereo", _flows.load_sawtooth0),
        Dataset("sawtooth1", "flow", "maxflow", 164_922, 789_014, True,
                "Middlebury stereo", _flows.load_sawtooth1),
        Dataset("simcells", "flow", "maxflow", 903_962, 6_738_294, False,
                "Jensen et al. 2020", _flows.load_simcells),
        Dataset("cells", "flow", "maxflow", 3_582_102, 31_537_228, True,
                "Jensen et al. 2020", _flows.load_cells),
        # --- linear programs (Table 3) ----------------------------------
        Dataset("qap15", "lp", "lp", 6_331, 22_275, True,
                "Mittelmann LP benchmark", _lps.load_qap15),
        Dataset("nug08-3rd", "lp", "lp", 19_728, 20_448, True,
                "Mittelmann LP benchmark", _lps.load_nug08),
        Dataset("supportcase10", "lp", "lp", 10_713, 1_429_098, True,
                "Mittelmann LP benchmark", _lps.load_supportcase10),
        Dataset("ex10", "lp", "lp", 69_609, 17_680, True,
                "Mittelmann LP benchmark", _lps.load_ex10),
    ]
}


def get_dataset(name: str) -> Dataset:
    try:
        return DATASETS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from exc


def _load_kind(name: str, kind: str, scale: float, **kwargs: Any) -> Any:
    dataset = get_dataset(name)
    if dataset.kind != kind:
        raise DatasetError(f"{name} is a {dataset.kind} dataset, not {kind}")
    return dataset.load(scale=scale, **kwargs)


def load_graph(name: str, scale: float = 1.0, **kwargs: Any):
    """Load a graph dataset stand-in at the given scale."""
    return _load_kind(name, "graph", scale, **kwargs)


def load_flow(name: str, scale: float = 1.0, **kwargs: Any):
    """Load a max-flow instance stand-in at the given scale."""
    return _load_kind(name, "flow", scale, **kwargs)


def load_lp(name: str, scale: float = 1.0, **kwargs: Any):
    """Load an LP stand-in at the given scale."""
    return _load_kind(name, "lp", scale, **kwargs)


def table2_rows() -> list[dict]:
    """Rows of Table 2 (graph datasets: paper sizes and provenance)."""
    rows = []
    for dataset in DATASETS.values():
        if dataset.kind == "lp":
            continue
        rows.append(
            {
                "name": dataset.name,
                "group": dataset.group,
                "vertices": dataset.paper_rows,
                "edges": dataset.paper_cols,
                "real": "R" if dataset.real else "S",
                "source": dataset.source,
            }
        )
    return rows


def table3_rows() -> list[dict]:
    """Rows of Table 3 (LP datasets)."""
    rows = []
    for dataset in DATASETS.values():
        if dataset.kind != "lp":
            continue
        rows.append(
            {
                "name": dataset.name,
                "rows": dataset.paper_rows,
                "cols": dataset.paper_cols,
                "source": dataset.source,
            }
        )
    return rows
