"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``color``    color a graph file (edge list) with the Rothko heuristic and
             print coloring statistics;
``update``   maintain a coloring incrementally under a churn scenario or
             a recorded update trace, reporting repair statistics;
``stream``   consume an update trace from stdin (or a file) and emit one
             stats row per batch — the anytime view of maintenance;
``solve``    run the unified compress–solve–lift pipeline for one task
             (max-flow / LP / centrality) on a registry dataset, at one
             color budget or progressively across a whole schedule of
             budgets off a single coloring run;
``verify``   check an on-disk edge store's structure and checksums
             before trusting it for a long run;
``datasets`` print the Tables 2/3 dataset inventory;
``tables``   regenerate one of the paper's experiment tables at a chosen
             scale (the pytest benchmarks wrap the same drivers);
``profile``  run any other command under the observability tracer and
             print the per-span summary afterwards.

Every workload verb also takes ``--trace-out FILE`` to dump the
recorded spans and metrics as JSONL (see :mod:`repro.obs.export`)
without the summary table.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.obs import trace as _trace
from repro.utils.tables import render_rows


def _apply_backend(args: argparse.Namespace) -> str | None:
    """Install the requested kernel backend as the process default.

    Returns the spec so commands can also pass it explicitly (the
    pipeline's coloring-cache key records the resolved name).  Unknown
    names and unavailable optional backends exit with a clear message
    instead of an ImportError mid-run.
    """
    spec = getattr(args, "backend", None)
    if spec:
        from repro.core.backends import set_default_backend

        try:
            set_default_backend(spec)
        except (ImportError, ValueError) as exc:
            raise SystemExit(f"--backend {spec}: {exc}") from exc
    return spec

TABLE_CHOICES = (
    "fig2", "fig2-dynamic", "fig7-maxflow", "fig7-lp", "fig7-centrality",
    "table1-centrality", "table1-lp", "table4", "table5", "table6",
)


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from repro.exceptions import GraphError
    from repro.graphs import edgestore

    if (args.edgelist is None) == (args.synthetic is None):
        raise SystemExit("ingest needs exactly one of --edgelist/--synthetic")
    start = time.perf_counter()
    try:
        if args.edgelist is not None:
            store = edgestore.ingest_edgelist(
                args.out,
                args.edgelist,
                directed=not args.undirected,
                n_nodes=args.n_nodes,
                chunk_arcs=args.chunk_arcs,
                overwrite=args.overwrite,
                resume=args.resume,
            )
        else:
            try:
                n_nodes, out_degree = (
                    int(part) for part in args.synthetic.split(",")
                )
            except ValueError as exc:
                raise SystemExit(
                    f"--synthetic must be 'N,OUT_DEGREE', "
                    f"got {args.synthetic!r}"
                ) from exc
            store = edgestore.ingest_uniform_random(
                args.out,
                n_nodes,
                out_degree,
                seed=args.seed,
                chunk_arcs=args.chunk_arcs,
                overwrite=args.overwrite,
                resume=args.resume,
            )
    except (GraphError, OSError) as exc:
        raise SystemExit(str(exc)) from exc
    rows = [
        {
            "nodes": store.n_nodes,
            "arcs": store.n_arcs,
            "directed": store.directed,
            "index_dtype": store.index_dtype.name,
            "disk_mb": round(store.array_nbytes() / 1e6, 1),
            "seconds": round(time.perf_counter() - start, 3),
        }
    ]
    print(render_rows(rows, title=f"Edge store at {store.path}"))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.graphs.edgestore import verify_store

    # StoreError propagates to main()'s error mapping: one line on
    # stderr, exit 2 — corruption details included.
    report = verify_store(args.path)
    rows = [
        {
            "nodes": report["n_nodes"],
            "arcs": report["n_arcs"],
            "directed": report["directed"],
            "files": len(report["checked"]),
            "checksums": (
                "verified" if report["checksums_verified"]
                else "absent (pre-checksum store)"
            ),
        }
    ]
    print(render_rows(rows, title=f"Verified edge store at {args.path}"))
    return 0


def _cmd_color(args: argparse.Namespace) -> int:
    from repro.core.qerror import q_error_report
    from repro.core.rothko import eps_color, q_color
    from repro.graphs.io import read_edgelist

    backend = _apply_backend(args)
    if args.mmap:
        from repro.graphs.digraph import WeightedDiGraph

        # PATH is an edge-store directory; the CSR/CSC snapshots stay
        # memmap-backed, so the coloring streams edges from disk.
        graph = WeightedDiGraph.from_edgestore(args.path, mmap=True)
    else:
        graph = read_edgelist(args.path, directed=args.directed)
    if args.eps is not None:
        result = eps_color(
            graph, n_colors=args.colors, eps=args.eps, backend=backend
        )
    else:
        result = q_color(
            graph, n_colors=args.colors, q=args.q, backend=backend
        )
    report = q_error_report(graph.to_csr(), result.coloring)
    rows = [
        {
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
            "colors": report.n_colors,
            "max_q": report.max_q,
            "mean_q": report.mean_q,
            "compression": f"{report.compression_ratio:.1f}:1",
            "seconds": result.elapsed,
        }
    ]
    print(render_rows(rows, title=f"Quasi-stable coloring of {args.path}"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for index, label in enumerate(result.coloring.labels.tolist()):
                handle.write(f"{graph.label_of(index)} {label}\n")
        print(f"per-node colors written to {args.out}")
    return 0


def _load_update_graph(args: argparse.Namespace):
    """Graph for the update/stream commands: a file path or a registry name."""
    if args.dataset is not None:
        from repro.datasets.registry import load_graph

        return load_graph(args.dataset, scale=args.scale or 1.0)
    if args.path is None:
        raise SystemExit("update needs a graph PATH or --dataset NAME")
    from repro.graphs.io import read_edgelist

    return read_edgelist(args.path, directed=args.directed)


def _apply_batch_row(dynamic, index: int, batch: list) -> dict:
    """Apply one update batch; return its per-batch stats deltas.

    ``max_q`` comes from the engine's maintained degree matrices —
    ``O(n k)`` — rather than rebuilding the CSR adjacency per batch.
    """
    before_splits = dynamic.stats.splits
    before_merges = dynamic.stats.merges
    before_rebuilds = dynamic.stats.rebuilds
    before_repair_s = dynamic.stats.repair_seconds
    dynamic.apply_batch(batch)
    return {
        "batch": index,
        "updates": len(batch),
        "colors": dynamic.snapshot().n_colors,
        "max_q": dynamic.max_q_err(),
        "splits": dynamic.stats.splits - before_splits,
        "merges": dynamic.stats.merges - before_merges,
        "rebuilds": dynamic.stats.rebuilds - before_rebuilds,
        "repair_s": dynamic.stats.repair_seconds - before_repair_s,
    }


def _chunk(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.datasets.churn import churn_scenario
    from repro.dynamic import DynamicColoring, read_updates

    from repro.exceptions import GraphError

    graph = _load_update_graph(args)
    if args.trace is not None:
        try:
            updates = list(read_updates(args.trace))
        except (GraphError, OSError) as exc:
            raise SystemExit(f"bad trace {args.trace}: {exc}") from exc
    else:
        updates = churn_scenario(
            args.scenario, graph, args.n_updates, seed=args.seed
        )
    dynamic = DynamicColoring(
        graph,
        q_tolerance=args.q,
        drift_budget=args.drift_budget,
        split_mean=args.split_mean,
        backend=_apply_backend(args),
    )
    rows = [
        _apply_batch_row(dynamic, index, batch)
        for index, batch in enumerate(_chunk(updates, args.batch))
    ]
    dynamic.detach()
    source = args.trace or f"{args.scenario} churn"
    print(render_rows(rows, title=f"Incremental maintenance under {source}"))
    stats = dynamic.stats
    print(
        f"totals: {stats.updates} updates, {stats.splits} splits, "
        f"{stats.merges} merges, {stats.rebuilds} rebuilds, "
        f"{stats.repair_seconds:.3f}s repairing"
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.dynamic import DynamicColoring, parse_update
    from repro.exceptions import GraphError

    graph = _load_update_graph(args)
    dynamic = DynamicColoring(
        graph,
        q_tolerance=args.q,
        drift_budget=args.drift_budget,
        split_mean=args.split_mean,
        backend=_apply_backend(args),
    )

    def flush_batch(batch_index: int, batch: list) -> None:
        row = _apply_batch_row(dynamic, batch_index, batch)
        print(
            " ".join(f"{key}={value:.3f}" if isinstance(value, float)
                     else f"{key}={value}" for key, value in row.items()),
            flush=True,
        )

    handle = open(args.trace, "r", encoding="utf-8") if args.trace else sys.stdin
    try:
        batch = []
        batch_index = 0
        for line in handle:
            try:
                update = parse_update(line)
            except GraphError as exc:
                raise SystemExit(f"bad trace line: {exc}") from exc
            if update is None:
                continue
            batch.append(update)
            if len(batch) >= args.batch:
                flush_batch(batch_index, batch)
                batch = []
                batch_index += 1
        if batch:
            flush_batch(batch_index, batch)
    finally:
        if handle is not sys.stdin:
            handle.close()
        dynamic.detach()
    return 0


#: default dataset scale per task kind (matching the ``tables`` presets)
_SOLVE_SCALES = {"maxflow": 0.01, "lp": 0.04, "centrality": 0.015}


def _load_solve_store(args: argparse.Namespace):
    """``--mmap`` problem loading: DATASET is an edge-store directory.

    Mirrors ``repro color --mmap`` — the CSR/CSC snapshots stay
    memmap-backed, so coloring and solving stream edges from disk.
    Max-flow additionally needs ``--source``/``--sink`` node ids
    (defaulting to ``0`` and ``n - 1``); LPs are not edge stores.
    """
    from repro.exceptions import FlowError, GraphError
    from repro.graphs.digraph import WeightedDiGraph

    if args.task == "lp":
        raise SystemExit(
            "--mmap applies to the graph tasks (maxflow/centrality); "
            "LPs are loaded from the registry"
        )
    try:
        graph = WeightedDiGraph.from_edgestore(args.dataset, mmap=True)
    except (GraphError, OSError) as exc:
        raise SystemExit(f"bad edge store {args.dataset}: {exc}") from exc
    if args.task == "maxflow":
        from repro.flow.network import FlowNetwork

        source = args.source if args.source is not None else 0
        sink = args.sink if args.sink is not None else graph.n_nodes - 1
        try:
            return FlowNetwork(graph, source, sink)
        except FlowError as exc:
            raise SystemExit(str(exc)) from exc
    return graph


def _cmd_solve(args: argparse.Namespace) -> int:
    # The lazy imports are a real chunk of the command's wall time
    # (scipy optimize, dataset generators), so they get their own span.
    with _trace.span("cli.imports"):
        from repro.datasets.registry import load_flow, load_graph, load_lp
        from repro.exceptions import DatasetError
        from repro.pipeline import progressive_sweep, run_task, task_for

    backend = _apply_backend(args)
    scale = args.scale if args.scale is not None else _SOLVE_SCALES[args.task]
    task_options = {
        "maxflow": {
            "bound": args.bound,
            "algorithm": args.algorithm,
            "engine": args.engine,
        },
        # The LP path solves via scipy/IPM, not the exact graph
        # solvers, so --engine does not apply to it.
        "lp": {"mode": args.mode},
        "centrality": {"seed": args.seed, "engine": args.engine},
    }
    options = task_options[args.task]
    if args.mmap:
        with _trace.span(
            "cli.load_store", store=args.dataset, task=args.task
        ):
            problem = _load_solve_store(args)
    else:
        try:
            with _trace.span(
                "cli.load_dataset", dataset=args.dataset, task=args.task,
                scale=scale,
            ):
                loaders = {
                    "maxflow": load_flow,
                    "lp": load_lp,
                    "centrality": load_graph,
                }
                problem = loaders[args.task](args.dataset, scale=scale)
        except DatasetError as exc:
            raise SystemExit(str(exc)) from exc
    options["backend"] = backend
    options["workers"] = args.workers
    task = task_for(args.task, problem, **options)

    if args.certify is not None:
        if args.colors is not None or args.q is not None:
            raise SystemExit(
                "--certify picks its own color budgets; drop --colors/--q"
            )
        from repro.pipeline import run_certified

        certified = run_certified(
            task, args.certify, max_colors=args.max_colors
        )
        rows = [
            {
                "colors": record.n_colors,
                "value": record.value,
                "rel_error": record.error,
                "compression": f"{record.compression_ratio:.1f}:1",
                "seconds": record.seconds,
            }
            for record in certified.rounds
        ]
        print(
            render_rows(
                rows,
                title=(
                    f"certified {args.task} on {args.dataset}: "
                    f"eps={args.certify:g}"
                ),
            )
        )
        verdict = "CERTIFIED" if certified.certified else "NOT certified"
        print(
            f"{verdict}: achieved relative error "
            f"{certified.achieved_error:.6g} (target {certified.eps:g}) "
            f"at {certified.n_colors} colors "
            f"({certified.compression_ratio:.1f}:1 compression)"
        )
        return 0 if certified.certified else 1

    if args.colors is not None:
        try:
            budgets = [int(part) for part in args.colors.split(",") if part]
        except ValueError as exc:
            raise SystemExit(
                f"--colors must be a comma-separated list of ints, "
                f"got {args.colors!r}"
            ) from exc
        if not budgets:
            raise SystemExit("--colors must name at least one budget")
        # --q composes with --colors exactly as in run_task: each
        # checkpoint also stops early once the q target is met.
        results = progressive_sweep(task, budgets, q=args.q)
    elif args.q is not None:
        results = [run_task(task, q=args.q)]
    else:
        raise SystemExit("solve needs --colors, --q, or --certify")

    with _trace.span("cli.report"):
        rows = [
            {
                "colors": result.n_colors,
                "max_q": result.max_q_err,
                "value": result.value,
                "coloring_s": result.timings.coloring,
                "reduce_s": result.timings.reduce,
                "solve_s": result.timings.solve,
                "total_s": result.total_seconds,
            }
            for result in results
        ]
        print(
            render_rows(
                rows,
                title=(
                    f"{args.task} pipeline on "
                    + (
                        f"edge store {args.dataset}"
                        if args.mmap
                        else f"{args.dataset} (scale {scale})"
                    )
                    + f" (one coloring, {len(results)} checkpoint(s))"
                ),
            )
        )
    return 0


def _run_traced(args: argparse.Namespace, command: str):
    """Run ``args.func`` under a fresh recorder; returns ``(code, recorder)``.

    The whole command executes inside a ``cli.<command>`` root span, so
    the exported trace always has a parentless root covering the run.
    """
    from repro.obs import Recorder, recording

    recorder = Recorder()
    with recording(recorder):
        with _trace.span(f"cli.{command}"):
            code = args.func(args)
    return code, recorder


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.export import render_summary, write_jsonl

    rest = list(args.rest)
    while rest and rest[0] == "--":
        rest.pop(0)
    if not rest:
        raise SystemExit(
            "profile needs a command to wrap, e.g. "
            "`repro profile solve --task maxflow --dataset dblp --colors 32`"
        )
    if rest[0] == "profile":
        raise SystemExit("profile cannot wrap itself")
    _apply_backend(args)
    parser = build_parser()
    inner = parser.parse_args(rest)
    _validate(parser, inner)
    code, recorder = _run_traced(inner, inner.command)
    print()
    print(render_summary(recorder, title=f"profile: repro {' '.join(rest)}"))
    trace_out = getattr(inner, "trace_out", None) or args.trace_out
    if trace_out:
        lines = write_jsonl(recorder, trace_out)
        print(f"trace written to {trace_out} ({lines} lines)")
    return code


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets.registry import table2_rows, table3_rows

    print(render_rows(table2_rows(), title="Table 2: graphs"))
    print()
    print(render_rows(table3_rows(), title="Table 3: linear programs"))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    scale = args.scale
    which = args.which
    if which == "fig2":
        from repro.experiments.fig2_robustness import run_fig2

        rows = run_fig2()
        title = "Fig. 2: robustness to edge perturbation"
    elif which == "fig2-dynamic":
        from repro.experiments.fig2_robustness import run_fig2_incremental

        rows = run_fig2_incremental()
        title = "Fig. 2 (dynamic): incremental repair vs recoloring"
    elif which == "fig7-maxflow":
        from repro.experiments.fig7_tradeoff import maxflow_tradeoff

        rows = maxflow_tradeoff(scale=scale or 0.004)
        title = "Fig. 7(a): max-flow speed-accuracy"
    elif which == "fig7-lp":
        from repro.experiments.fig7_tradeoff import lp_tradeoff

        rows = lp_tradeoff(scale=scale or 0.04)
        title = "Fig. 7(b): LP speed-accuracy"
    elif which == "fig7-centrality":
        from repro.experiments.fig7_tradeoff import centrality_tradeoff

        rows = centrality_tradeoff(scale=scale or 0.015)
        title = "Fig. 7(c): centrality speed-accuracy"
    elif which == "table1-centrality":
        from repro.experiments.table1_runtime import centrality_runtime_rows

        rows = centrality_runtime_rows(scale=scale or 0.015)
        title = "Table 1 (top): centrality runtime to target"
    elif which == "table1-lp":
        from repro.experiments.table1_runtime import lp_runtime_rows

        rows = lp_runtime_rows(scale=scale or 0.04)
        title = "Table 1 (bottom): LP runtime to target"
    elif which == "table4":
        from repro.experiments.table4_compression import compression_rows

        rows = compression_rows(scale=scale or 0.06)
        title = "Table 4: compression vs stable coloring"
    elif which == "table5":
        from repro.experiments.table5_lp import lp_compression_rows

        rows = lp_compression_rows(scale=scale or 0.04)
        title = "Table 5: compressed LP characteristics"
    elif which == "table6":
        from repro.experiments.table6_responsiveness import responsiveness_rows

        rows = responsiveness_rows()
        title = "Table 6: anytime-loop responsiveness"
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown table {which!r}")
    print(render_rows(rows, title=title))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quasi-stable coloring for graph compression "
        "(VLDB 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser(
        "ingest",
        help="build an on-disk edge store (out-of-core, memmap-ready)",
    )
    ingest.add_argument("out", help="target store directory")
    ingest.add_argument("--edgelist", default=None,
                        help="text edge list: 'src dst [weight]' lines "
                             "with integer node ids")
    ingest.add_argument("--synthetic", default=None, metavar="N,OUT_DEGREE",
                        help="stream-generate a uniform random digraph "
                             "instead of reading a file")
    ingest.add_argument("--seed", type=int, default=0,
                        help="rng seed (with --synthetic)")
    ingest.add_argument("--undirected", action="store_true",
                        help="store both directions of every edge "
                             "(with --edgelist)")
    ingest.add_argument("--n-nodes", type=int, default=None,
                        help="declared node count (default: max id + 1)")
    ingest.add_argument("--chunk-arcs", type=int, default=8_000_000,
                        help="arcs buffered per sorted run before it "
                             "spills to disk")
    ingest.add_argument("--overwrite", action="store_true",
                        help="replace an existing store at OUT")
    ingest.add_argument("--resume", action="store_true",
                        help="resume an interrupted ingest from its "
                             "journal (same input and options required; "
                             "already-sorted runs are not redone)")
    ingest.set_defaults(func=_cmd_ingest)

    verify = sub.add_parser(
        "verify",
        help="check an edge store's structure and checksums",
    )
    verify.add_argument("path", help="edge-store directory to verify")
    verify.set_defaults(func=_cmd_verify)

    color = sub.add_parser("color", help="color an edge-list graph file")
    color.add_argument("path",
                       help="edge-list file: 'u v [weight]' lines "
                            "(or an edge-store directory with --mmap)")
    color.add_argument("--mmap", action="store_true",
                       help="PATH is a `repro ingest` edge-store "
                            "directory; color it out-of-core off "
                            "memmapped snapshots (directedness comes "
                            "from the store)")
    color.add_argument("--colors", type=int, default=None,
                       help="color budget")
    color.add_argument("--q", type=float, default=None,
                       help="target maximum q-error")
    color.add_argument("--eps", type=float, default=None,
                       help="target relative error (eps-relative mode)")
    color.add_argument("--directed", action="store_true",
                       help="treat edges as directed")
    color.add_argument("--out", default=None,
                       help="write 'label color' lines to this file")
    color.add_argument("--backend", default=None,
                       help="kernel backend: auto, numpy, numba, or torch[:device] (default: REPRO_BACKEND or auto-detect)")
    color.add_argument("--trace-out", default=None,
                       help="dump the recorded trace/metrics as JSONL")
    color.set_defaults(func=_cmd_color)

    for name, help_text in (
        ("update", "maintain a coloring under churn; print repair stats"),
        ("stream", "consume an update trace (stdin/file) batch by batch"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("path", nargs="?", default=None,
                         help="edge-list file: 'u v [weight]' lines")
        cmd.add_argument("--dataset", default=None,
                         help="registry dataset name instead of a file")
        cmd.add_argument("--scale", type=float, default=None,
                         help="dataset scale (with --dataset)")
        cmd.add_argument("--q", type=float, required=True,
                         help="q-error tolerance to maintain")
        cmd.add_argument("--directed", action="store_true",
                         help="treat file edges as directed")
        cmd.add_argument("--split-mean", choices=("arithmetic", "geometric"),
                         default="arithmetic")
        cmd.add_argument("--drift-budget", type=float, default=0.25,
                         help="fallback-to-rebuild budget (fraction)")
        cmd.add_argument("--batch", type=int, default=10,
                         help="updates per repair batch")
        cmd.add_argument("--trace", default=None,
                         help="update trace file ('+/-/~ u v [w]' lines)")
        cmd.add_argument("--backend", default=None,
                         help="kernel backend: auto, numpy, numba, or torch[:device] (default: REPRO_BACKEND or auto-detect)")
        cmd.add_argument("--trace-out", default=None,
                         help="dump the recorded trace/metrics as JSONL")
        if name == "update":
            cmd.add_argument("--scenario", choices=("random", "hub", "jitter"),
                             default="random",
                             help="churn generator when no --trace is given")
            cmd.add_argument("--n-updates", type=int, default=100)
            cmd.add_argument("--seed", type=int, default=0)
            cmd.set_defaults(func=_cmd_update)
        else:
            cmd.set_defaults(func=_cmd_stream)

    solve = sub.add_parser(
        "solve",
        help="run the compress-solve-lift pipeline on a registry dataset",
    )
    solve.add_argument("--task", required=True,
                       choices=("maxflow", "lp", "centrality"))
    solve.add_argument("--dataset", required=True,
                       help="registry dataset name (see `repro datasets`), "
                            "or a `repro ingest` edge-store directory "
                            "with --mmap")
    solve.add_argument("--mmap", action="store_true",
                       help="DATASET is an edge-store directory; solve it "
                            "off memmapped snapshots (maxflow/centrality; "
                            "--scale does not apply)")
    solve.add_argument("--source", type=int, default=None,
                       help="maxflow with --mmap: source node id "
                            "(default 0)")
    solve.add_argument("--sink", type=int, default=None,
                       help="maxflow with --mmap: sink node id "
                            "(default n - 1)")
    solve.add_argument("--scale", type=float, default=None,
                       help="dataset scale (1.0 = paper size)")
    solve.add_argument("--colors", default=None,
                       help="color budget, or comma-separated schedule for "
                            "a progressive multi-k sweep (one coloring run)")
    solve.add_argument("--q", type=float, default=None,
                       help="target maximum q-error (instead of --colors)")
    solve.add_argument("--certify", type=float, default=None, metavar="EPS",
                       help="certified mode: grow the color budget until "
                            "the measured relative error vs an exact "
                            "solve is <= EPS (exit 1 if unreachable); "
                            "replaces --colors/--q")
    solve.add_argument("--max-colors", type=int, default=None,
                       help="certified mode: color-budget cap "
                            "(default: the problem size)")
    solve.add_argument("--bound", choices=("upper", "lower"),
                       default="upper", help="maxflow: reduced capacity bound")
    solve.add_argument("--algorithm",
                       choices=("push_relabel", "dinic", "edmonds_karp"),
                       default="push_relabel",
                       help="maxflow: reduced-network solver")
    solve.add_argument("--engine", choices=("arcstore", "python"),
                       default="arcstore",
                       help="maxflow/centrality: exact-solver core "
                            "(flat arc-store arrays vs legacy Python; "
                            "both produce identical results)")
    solve.add_argument("--mode", choices=("sqrt", "grohe"), default="sqrt",
                       help="lp: reduction weight mode")
    solve.add_argument("--seed", type=int, default=0,
                       help="centrality: pivot sampling seed")
    solve.add_argument("--backend", default=None,
                       help="kernel backend: auto, numpy, numba, or torch[:device] (default: REPRO_BACKEND or auto-detect)")
    solve.add_argument("--workers", type=int, default=None,
                       help="worker fan-out for parallel coloring rounds "
                            "and source-batched Brandes "
                            "(default: REPRO_WORKERS or 1)")
    solve.add_argument("--trace-out", default=None,
                       help="dump the recorded trace/metrics as JSONL")
    solve.set_defaults(func=_cmd_solve)

    datasets = sub.add_parser("datasets", help="print the dataset registry")
    datasets.set_defaults(func=_cmd_datasets)

    profile = sub.add_parser(
        "profile",
        help="run another repro command under the tracer and print a "
             "per-span summary",
    )
    profile.add_argument("--backend", default=None,
                         help="kernel backend: auto, numpy, numba, or torch[:device] (default: REPRO_BACKEND or auto-detect) (applies to the wrapped command)")
    profile.add_argument("--trace-out", default=None,
                         help="dump the recorded trace/metrics as JSONL "
                              "(also honored on the wrapped command)")
    profile.add_argument("rest", nargs=argparse.REMAINDER,
                         help="the command to wrap, with its own flags")
    profile.set_defaults(func=_cmd_profile)

    tables = sub.add_parser("tables", help="regenerate a paper table/figure")
    tables.add_argument("which", choices=TABLE_CHOICES)
    tables.add_argument("--scale", type=float, default=None,
                        help="dataset scale (1.0 = paper size)")
    tables.set_defaults(func=_cmd_tables)
    return parser


def _validate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Cross-flag checks argparse cannot express (shared with profile)."""
    if args.command == "color" and args.colors is None and args.q is None \
            and args.eps is None:
        parser.error("color needs --colors, --q, or --eps")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    try:
        # Arm the fault-injection plan named by REPRO_FAULTS (no-op
        # without it) — how CI kills a real CLI subprocess mid-ingest.
        from repro.resilience.faults import install_from_env

        install_from_env()
        if getattr(args, "trace_out", None) and args.command != "profile":
            from repro.obs.export import write_jsonl

            code, recorder = _run_traced(args, args.command)
            lines = write_jsonl(recorder, args.trace_out)
            print(f"trace written to {args.trace_out} ({lines} lines)")
            return code
        return args.func(args)
    except (ReproError, OSError) as exc:
        # Every library/filesystem failure a command didn't translate
        # itself becomes one line on stderr, never a traceback.
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
