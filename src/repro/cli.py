"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``color``    color a graph file (edge list) with the Rothko heuristic and
             print coloring statistics;
``datasets`` print the Tables 2/3 dataset inventory;
``tables``   regenerate one of the paper's experiment tables at a chosen
             scale (the pytest benchmarks wrap the same drivers).
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.tables import render_rows

TABLE_CHOICES = (
    "fig2", "fig7-maxflow", "fig7-lp", "fig7-centrality",
    "table1-centrality", "table1-lp", "table4", "table5", "table6",
)


def _cmd_color(args: argparse.Namespace) -> int:
    from repro.core.qerror import q_error_report
    from repro.core.rothko import eps_color, q_color
    from repro.graphs.io import read_edgelist

    graph = read_edgelist(args.path, directed=args.directed)
    if args.eps is not None:
        result = eps_color(graph, n_colors=args.colors, eps=args.eps)
    else:
        result = q_color(graph, n_colors=args.colors, q=args.q)
    report = q_error_report(graph.to_csr(), result.coloring)
    rows = [
        {
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
            "colors": report.n_colors,
            "max_q": report.max_q,
            "mean_q": report.mean_q,
            "compression": f"{report.compression_ratio:.1f}:1",
            "seconds": result.elapsed,
        }
    ]
    print(render_rows(rows, title=f"Quasi-stable coloring of {args.path}"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for index, label in enumerate(result.coloring.labels.tolist()):
                handle.write(f"{graph.label_of(index)} {label}\n")
        print(f"per-node colors written to {args.out}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets.registry import table2_rows, table3_rows

    print(render_rows(table2_rows(), title="Table 2: graphs"))
    print()
    print(render_rows(table3_rows(), title="Table 3: linear programs"))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    scale = args.scale
    which = args.which
    if which == "fig2":
        from repro.experiments.fig2_robustness import run_fig2

        rows = run_fig2()
        title = "Fig. 2: robustness to edge perturbation"
    elif which == "fig7-maxflow":
        from repro.experiments.fig7_tradeoff import maxflow_tradeoff

        rows = maxflow_tradeoff(scale=scale or 0.004)
        title = "Fig. 7(a): max-flow speed-accuracy"
    elif which == "fig7-lp":
        from repro.experiments.fig7_tradeoff import lp_tradeoff

        rows = lp_tradeoff(scale=scale or 0.04)
        title = "Fig. 7(b): LP speed-accuracy"
    elif which == "fig7-centrality":
        from repro.experiments.fig7_tradeoff import centrality_tradeoff

        rows = centrality_tradeoff(scale=scale or 0.015)
        title = "Fig. 7(c): centrality speed-accuracy"
    elif which == "table1-centrality":
        from repro.experiments.table1_runtime import centrality_runtime_rows

        rows = centrality_runtime_rows(scale=scale or 0.015)
        title = "Table 1 (top): centrality runtime to target"
    elif which == "table1-lp":
        from repro.experiments.table1_runtime import lp_runtime_rows

        rows = lp_runtime_rows(scale=scale or 0.04)
        title = "Table 1 (bottom): LP runtime to target"
    elif which == "table4":
        from repro.experiments.table4_compression import compression_rows

        rows = compression_rows(scale=scale or 0.06)
        title = "Table 4: compression vs stable coloring"
    elif which == "table5":
        from repro.experiments.table5_lp import lp_compression_rows

        rows = lp_compression_rows(scale=scale or 0.04)
        title = "Table 5: compressed LP characteristics"
    elif which == "table6":
        from repro.experiments.table6_responsiveness import responsiveness_rows

        rows = responsiveness_rows()
        title = "Table 6: anytime-loop responsiveness"
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown table {which!r}")
    print(render_rows(rows, title=title))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quasi-stable coloring for graph compression "
        "(VLDB 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    color = sub.add_parser("color", help="color an edge-list graph file")
    color.add_argument("path", help="edge-list file: 'u v [weight]' lines")
    color.add_argument("--colors", type=int, default=None,
                       help="color budget")
    color.add_argument("--q", type=float, default=None,
                       help="target maximum q-error")
    color.add_argument("--eps", type=float, default=None,
                       help="target relative error (eps-relative mode)")
    color.add_argument("--directed", action="store_true",
                       help="treat edges as directed")
    color.add_argument("--out", default=None,
                       help="write 'label color' lines to this file")
    color.set_defaults(func=_cmd_color)

    datasets = sub.add_parser("datasets", help="print the dataset registry")
    datasets.set_defaults(func=_cmd_datasets)

    tables = sub.add_parser("tables", help="regenerate a paper table/figure")
    tables.add_argument("which", choices=TABLE_CHOICES)
    tables.add_argument("--scale", type=float, default=None,
                        help="dataset scale (1.0 = paper size)")
    tables.set_defaults(func=_cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "color" and args.colors is None and args.q is None \
            and args.eps is None:
        parser.error("color needs --colors, --q, or --eps")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
