"""Incremental maintenance of the block-weight matrix ``W = S^T A S``.

Every reduction the pipeline performs starts from the ``k x k`` block
aggregates ``W[i, j] = w(P_i, P_j)`` (Sec. 3.2): flow capacities
``c_hat_2`` are ``W`` itself, the LP reduction (Eq. 6) is ``W`` of the
extended matrix's bipartite graph rescaled by class sizes.  A naive
multi-k sweep recomputes the sparse triple product ``S^T A S`` — an
``O(m)`` pass — at *every* color budget.

:class:`BlockWeightTracker` instead keeps ``W`` in lockstep with a
:class:`~repro.core.rothko.Rothko` engine: a split of color ``c`` into
``(c, t)`` dirties exactly the rows ``{c, t}`` and columns ``{c, t}``
(every other block keeps its members on both sides).  Dirty lines are
rebuilt by the :func:`~repro.core.kernels.scatter_select_color_sums`
kernel in ``O(nnz(color) + k)`` each — direct sums of the affected edge
weights, so exact zeros stay exact and no subtraction residue can
materialize spurious blocks.  Dirty colors may be accumulated across
several splits and refreshed in one batch (the progressive runner does
this per checkpoint), since only the *final* membership matters.

The tracker works in *engine* color-id space (split order); callers
materializing a canonical :class:`~repro.core.partition.Coloring` remap
via :meth:`weights` with the engine's label array.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import as_csr_square, scatter_select_color_sums
from repro.core.partition import first_occurrence_values

__all__ = ["BlockWeightTracker", "canonical_order"]


def canonical_order(labels: np.ndarray) -> np.ndarray:
    """Map engine color ids to canonical :class:`Coloring` ids.

    ``canonical_order(labels)[e]`` is the id that engine color ``e``
    receives after ``Coloring(labels)`` renumbers colors by first
    occurrence.  Engine ids are contiguous ``0..k-1``, so the
    first-occurrence value list is a permutation and this is its
    inverse.
    """
    values = first_occurrence_values(labels)  # canonical id -> engine id
    order = np.empty(values.size, dtype=np.int64)
    order[values] = np.arange(values.size)
    return order


class BlockWeightTracker:
    """``W = S^T A S`` kept current across Rothko splits."""

    def __init__(
        self, adjacency: sp.spmatrix | np.ndarray, labels: np.ndarray, k: int
    ) -> None:
        self._csr = as_csr_square(adjacency)
        self._csc = self._csr.tocsc()
        self.k = int(k)
        capacity = max(16, 2 * self.k)
        self._w = np.zeros((capacity, capacity), dtype=np.float64)
        if self.k:
            n = self._csr.shape[0]
            indicator = sp.csr_matrix(
                (np.ones(n), (np.arange(n), labels)), shape=(n, self.k)
            )
            self._w[: self.k, : self.k] = (
                indicator.T @ self._csr @ indicator
            ).toarray()

    def _grow(self, k: int) -> None:
        capacity = self._w.shape[0]
        if k <= capacity:
            return
        new_capacity = max(2 * capacity, k)
        grown = np.zeros((new_capacity, new_capacity), dtype=np.float64)
        grown[:capacity, :capacity] = self._w
        self._w = grown

    def refresh(
        self,
        colors: Iterable[int],
        members_of: Sequence[np.ndarray],
        labels: np.ndarray,
        k: int,
    ) -> None:
        """Rebuild the rows and columns of the dirty ``colors``.

        ``colors`` must contain every color whose membership changed
        since the last sync — for a batch of Rothko splits that is each
        split's parent plus every color created (in particular all ids
        in ``[old k, new k)``).  ``members_of[i]`` holds the *current*
        members of ``colors[i]`` and ``labels`` the current engine
        label array.
        """
        colors = list(colors)
        missing = set(range(self.k, k)).difference(colors)
        if missing:
            raise ValueError(
                f"new colors {sorted(missing)} missing from the dirty set"
            )
        self._grow(k)
        self.k = k
        w = self._w
        for color, members in zip(colors, members_of):
            w[color, :k] = scatter_select_color_sums(
                self._csr.indptr, self._csr.indices, self._csr.data,
                members, labels, k,
            )
            w[:k, color] = scatter_select_color_sums(
                self._csc.indptr, self._csc.indices, self._csc.data,
                members, labels, k,
            )

    def apply_split(
        self,
        parent: int,
        new_color: int,
        retain: np.ndarray,
        eject: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        """Patch ``W`` after ``parent`` split off ``new_color``.

        The single-split convenience form of :meth:`refresh`:
        ``retain``/``eject`` are the post-split member lists and
        ``labels`` the post-split engine label array.
        """
        if new_color != self.k:
            raise ValueError(
                f"split out of order: expected new color {self.k}, "
                f"got {new_color}"
            )
        self.refresh(
            (parent, new_color), (retain, eject), labels, new_color + 1
        )

    def weights(self, labels: np.ndarray | None = None) -> np.ndarray:
        """Current ``k x k`` block weights (a copy).

        With ``labels`` (the engine's label array) the matrix is
        permuted into canonical :class:`Coloring` id order, aligning it
        with ``Coloring(labels)`` — the form every reduction consumes.
        """
        k = self.k
        block = self._w[:k, :k]
        if labels is None:
            return block.copy()
        order = canonical_order(labels)
        out = np.empty_like(block)
        out[np.ix_(order, order)] = block
        return out
