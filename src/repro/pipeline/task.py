"""The compress–solve–lift task protocol (the pipeline's contract).

All three of the paper's applications — max-flow (Sec. 4.2), LPs
(Sec. 4.1), betweenness centrality (Sec. 4.3) — are instances of one
pattern: *color* the problem's graph, *reduce* the problem onto the
color classes, *solve* the reduced problem, and *lift* the solution
back.  :class:`CompressionTask` captures that pattern so the runner in
:mod:`repro.pipeline.runner` can drive any application, share colorings
between them, and sweep color budgets progressively off a single Rothko
run.

A task contributes two things:

* a :class:`ColoringSpec` — the graph Rothko colors plus every knob
  that changes the split sequence (``alpha``/``beta``, split mean,
  pinned initial partition, frozen colors).  Specs are the cache key:
  two tasks with equal specs share one coloring run;
* the three stages ``reduce(problem, coloring)`` → ``solve(reduced)``
  → ``lift(coloring, reduced, solution)``.  ``reduce`` may accept the
  precomputed block-weight matrix ``W = S^T A S`` that the progressive
  runner maintains incrementally across splits.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.rothko import Rothko
from repro.utils.timing import StageTimings

__all__ = ["ColoringSpec", "CompressionTask", "TaskResult"]


def adjacency_fingerprint(matrix: sp.csr_matrix) -> str:
    """Content hash of a CSR matrix (the coloring-cache key component)."""
    digest = hashlib.sha1()
    digest.update(repr(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True, eq=False)
class ColoringSpec:
    """Everything that determines a Rothko run, minus the stopping rule.

    Two runs with the same spec walk the *same* split sequence — the
    stopping knobs (color budget, q tolerance) only decide where along
    that sequence they stop.  That prefix property is what lets the
    coloring cache serve one engine to many tasks and checkpoints.
    """

    adjacency: sp.csr_matrix
    alpha: float = 0.0
    beta: float = 0.0
    split_mean: str = "arithmetic"
    initial: Coloring | None = None
    frozen: tuple[int, ...] = ()
    error_mode: str = "absolute"
    #: kernel backend spec ("numpy", "numba", "torch[:device]", "auto",
    #: or None = REPRO_BACKEND / auto).  Backends are bit-identical on
    #: CPU, but the cache key still carries the *resolved* name + device
    #: so colorings computed by different backends never alias — a CUDA
    #: torch run (last-ulp atomics) must not serve a numpy request.
    backend: str | None = None
    #: worker fan-out for the engine's batched rounds (None = the
    #: ``REPRO_WORKERS`` environment default).  Deliberately *not* part
    #: of the cache key: parallel rounds are bit-identical to serial
    #: (submission-order commit), so any worker count may serve any
    #: request for the same spec.
    workers: int | None = None

    def build_engine(self) -> Rothko:
        return Rothko(
            self.adjacency,
            initial=self.initial,
            alpha=self.alpha,
            beta=self.beta,
            split_mean=self.split_mean,
            frozen=self.frozen,
            error_mode=self.error_mode,
            backend=self.backend,
            workers=self.workers,
        )

    def resolved_backend(self) -> tuple[str, str]:
        """The ``(name, device)`` this spec's engine will actually run on
        (``None``/``"auto"`` specs consult the environment here)."""
        from repro.core.backends import resolve_backend

        resolved = resolve_backend(self.backend)
        return resolved.name, resolved.device

    def cache_key(self) -> tuple:
        """Hashable fingerprint identifying the split sequence.

        Memoized on the (frozen, immutable) spec: the adjacency hash is
        an ``O(nnz)`` pass, and tasks reuse one spec object across every
        checkpoint of a sweep.
        """
        key = getattr(self, "_cache_key", None)
        if key is None:
            initial_key = (
                None
                if self.initial is None
                else hashlib.sha1(self.initial.labels.tobytes()).hexdigest()
            )
            key = (
                adjacency_fingerprint(self.adjacency),
                self.alpha,
                self.beta,
                self.split_mean,
                initial_key,
                tuple(sorted(self.frozen)),
                self.error_mode,
                self.resolved_backend(),
            )
            object.__setattr__(self, "_cache_key", key)
        return key


class CompressionTask(ABC):
    """One application expressed as compress–solve–lift stages.

    Subclasses hold the problem instance (flow network, LP, graph) plus
    task configuration (bound, weight mode, solver, seed) and implement
    the stages.  Stages must be *stateless across calls*: the
    progressive runner invokes them once per checkpoint of a single
    coloring run.
    """

    #: short task identifier used in result rows and the CLI
    name: str = "task"
    #: whether ``reduce`` consumes the block-weight matrix ``W = S^T A S``
    #: (the runner skips W maintenance for tasks that never use it)
    uses_block_weights: bool = True

    #: the problem instance handed to ``reduce``
    problem: Any

    @abstractmethod
    def coloring_spec(self) -> ColoringSpec:
        """The coloring problem this task needs solved."""

    @abstractmethod
    def reduce(
        self,
        problem: Any,
        coloring: Coloring,
        *,
        block_weights: np.ndarray | None = None,
        max_q_err: float | None = None,
    ) -> Any:
        """Build the reduced problem for one coloring.

        ``block_weights`` (dense ``k x k``, canonical color ids) and
        ``max_q_err`` are served by the runner from maintained engine
        state when available; implementations must recompute them when
        ``None``.
        """

    @abstractmethod
    def solve(self, reduced: Any) -> Any:
        """Solve the reduced problem."""

    @abstractmethod
    def lift(self, coloring: Coloring, reduced: Any, solution: Any) -> Any:
        """Map a reduced solution back to the original problem space."""

    @abstractmethod
    def value(self, reduced: Any, solution: Any, lifted: Any) -> float:
        """Scalar summary of the solution (objective / flow value /
        score checksum) used by experiments and equality tests."""

    def exact_reference(self) -> Any:
        """Solve the *original* problem exactly (the certification
        oracle for :func:`repro.pipeline.certified.run_certified`).

        Tasks that cannot produce an exact answer keep the default and
        are rejected by certified mode with a clear error.
        """
        raise NotImplementedError(
            f"task {self.name!r} does not support certified mode "
            f"(no exact reference)"
        )

    def certified_error(self, exact: Any, result: "TaskResult") -> float:
        """Measured relative error of a compressed solve vs ``exact``.

        Must return a value comparable against the certified-mode
        ``eps`` — 0.0 means the compressed answer matches the exact one.
        """
        raise NotImplementedError(
            f"task {self.name!r} does not support certified mode "
            f"(no error measure)"
        )

    def solve_key(self) -> tuple | None:
        """Hashable fingerprint of everything that shapes reduce/solve/
        lift *besides* the coloring — the
        :class:`~repro.pipeline.cache.ReducedSolveCache` key component.

        ``None`` (the default) marks the task as not cacheable: the
        runner will always re-solve.  Adapters whose stages are pure
        functions of (problem, configuration, coloring) override this;
        anything influencing the solution must be in the key, and the
        problem data itself must be covered when the coloring spec's
        adjacency hash doesn't already pin it (the LP adapter hashes its
        ``b``/``c`` vectors for exactly that reason).
        """
        return None


@dataclass(frozen=True)
class TaskResult:
    """Output of one pipeline run (one task at one coloring checkpoint)."""

    task: str
    coloring: Coloring
    max_q_err: float
    reduced: Any
    solution: Any
    lifted: Any
    value: float
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors

    @property
    def total_seconds(self) -> float:
        return self.timings.total
