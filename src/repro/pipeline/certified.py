"""Certified-ε mode: compress until the *measured* error meets a dial.

The paper's experiments (Sec. 6) fix a color budget and report whatever
error comes out.  The ROADMAP's "approximate with a dial" asks for the
inverse: the caller names the error they can tolerate, and the pipeline
finds a compression that *provably* (by direct measurement against an
exact solve of the original problem, not by a bound) achieves it.

:func:`run_certified` drives a doubling color-budget schedule off a
single shared coloring run — the same prefix property
:func:`~repro.pipeline.runner.progressive_sweep` exploits, so the whole
certification loop costs one Rothko refinement plus one cheap
reduced solve per round plus one exact solve of the original problem
(the arcstore solver cores make that reference affordable even at full
size).  Each round's measured relative error comes from the task's
:meth:`~repro.pipeline.task.CompressionTask.certified_error` — the
paper's Sec. 6.1 ratio error for max-flow and LP objectives, a
normalized L1 score distance for centrality.

The loop ends in one of three ways, all recorded on the returned
:class:`CertifiedResult`: the error meets ``eps`` (``certified=True``);
the budget reaches ``max_colors`` without meeting it; or the coloring
saturates (no witness left to split — the compressed answer will never
get closer).  Callers get the achieved (ε, compression ratio) pair
either way, so an unreachable dial degrades into an informed decision
rather than an exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import recorder as _obs
from repro.obs import trace as _trace
from repro.pipeline.cache import ColoringCache, ReducedSolveCache
from repro.pipeline.runner import run_task
from repro.pipeline.task import CompressionTask, TaskResult

__all__ = ["CertifiedResult", "CertifiedRound", "run_certified"]


@dataclass(frozen=True)
class CertifiedRound:
    """One certification attempt at one color budget."""

    n_colors: int
    value: float
    error: float
    compression_ratio: float
    seconds: float


@dataclass(frozen=True)
class CertifiedResult:
    """Outcome of a certified-ε run (see module docstring)."""

    task: str
    eps: float
    certified: bool
    achieved_error: float
    exact_value: Any
    result: TaskResult
    rounds: list[CertifiedRound] = field(default_factory=list)

    @property
    def n_colors(self) -> int:
        return self.result.n_colors

    @property
    def compression_ratio(self) -> float:
        return self.rounds[-1].compression_ratio if self.rounds else 1.0


def run_certified(
    task: CompressionTask,
    eps: float,
    *,
    start_colors: int = 8,
    max_colors: int | None = None,
    growth: float = 2.0,
    cache: ColoringCache | None = None,
    solve_cache: ReducedSolveCache | None = None,
) -> CertifiedResult:
    """Compress–solve–validate until measured error ≤ ``eps``.

    Budgets grow geometrically from ``start_colors`` by ``growth``
    (doubling by default), capped at ``max_colors`` (default: the
    problem size — i.e. no compression — which always certifies
    because a coloring with every node its own color is exact).
    Passing a smaller ``max_colors`` bounds the work instead: the
    result then reports ``certified=False`` with the best achieved
    error when the dial is unreachable within the cap.
    """
    if eps < 0.0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    if start_colors < 1:
        raise ValueError(f"start_colors must be >= 1, got {start_colors}")
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    n = int(task.coloring_spec().adjacency.shape[0])
    if max_colors is None:
        max_colors = n
    max_colors = min(int(max_colors), n)
    if cache is None:
        cache = ColoringCache()
    if solve_cache is None:
        solve_cache = ReducedSolveCache()

    with _trace.span(
        "pipeline.certified", task=task.name, eps=eps, max_colors=max_colors
    ) as span:
        exact = task.exact_reference()
        rounds: list[CertifiedRound] = []
        result: TaskResult | None = None
        error = float("inf")
        budget = min(start_colors, max_colors)
        while True:
            start = time.perf_counter()
            attempt = run_task(
                task, n_colors=budget, cache=cache, solve_cache=solve_cache
            )
            attempt_error = task.certified_error(exact, attempt)
            _obs._active.count("pipeline.certified.rounds")
            # Saturated = a bigger budget produced the same coloring
            # *without using the headroom*: no witness left to split.
            # (Equal counts at a fully-used budget just mean the next
            # doubling is needed.)
            saturated = (
                result is not None
                and attempt.n_colors == result.n_colors
                and attempt.n_colors < budget
            )
            result, error = attempt, attempt_error
            rounds.append(
                CertifiedRound(
                    n_colors=attempt.n_colors,
                    value=attempt.value,
                    error=attempt_error,
                    compression_ratio=n / max(1, attempt.n_colors),
                    seconds=time.perf_counter() - start,
                )
            )
            if error <= eps:
                break
            if saturated or budget >= max_colors:
                # No finer coloring is coming (saturated) or allowed
                # (budget cap): report the best we achieved.
                break
            budget = min(max(budget + 1, int(budget * growth)), max_colors)
        certified = error <= eps
        span.set(
            certified=certified,
            achieved_error=error,
            n_colors=result.n_colors,
            rounds=len(rounds),
        )
    _obs._active.gauge("pipeline.certified.achieved_error", error)
    return CertifiedResult(
        task=task.name,
        eps=float(eps),
        certified=certified,
        achieved_error=float(error),
        exact_value=exact,
        result=result,
        rounds=rounds,
    )
