"""Unified compress–solve–lift pipeline (Secs. 4.1–4.3 as one pattern).

The paper's three applications all color a graph, reduce the problem
onto the color classes, solve the reduced problem, and lift the
solution.  This package factors that pattern out of the per-application
modules:

* :class:`CompressionTask` / :class:`ColoringSpec` / :class:`TaskResult`
  — the protocol (:mod:`repro.pipeline.task`);
* :class:`MaxFlowTask`, :class:`LPTask`, :class:`CentralityTask` — the
  application adapters (:mod:`repro.pipeline.adapters`);
* :func:`run_task` / :func:`progressive_sweep` — the drivers
  (:mod:`repro.pipeline.runner`);
* :func:`run_certified` / :class:`CertifiedResult` — the error-dial
  driver: compress until the measured error meets ``eps``, validated
  against an exact solve of the original problem
  (:mod:`repro.pipeline.certified`);
* :class:`ColoringCache` / :class:`ProgressiveRun` — one Rothko run
  shared across tasks, weight modes, and checkpoints, and
  :class:`ReducedSolveCache` — reduce/solve/lift outputs keyed per
  checkpoint so unchanged reduced problems are never re-solved
  (:mod:`repro.pipeline.cache`);
* :class:`BlockWeightTracker` — ``W = S^T A S`` maintained
  incrementally per split (:mod:`repro.pipeline.weights`).
"""

from repro.pipeline.adapters import (
    CentralityTask,
    LPTask,
    MaxFlowTask,
    task_for,
)
from repro.pipeline.cache import (
    ColoringCache,
    ProgressiveRun,
    ReducedSolveCache,
)
from repro.pipeline.certified import (
    CertifiedResult,
    CertifiedRound,
    run_certified,
)
from repro.pipeline.runner import progressive_sweep, run_task
from repro.pipeline.task import ColoringSpec, CompressionTask, TaskResult
from repro.pipeline.weights import BlockWeightTracker

__all__ = [
    "CentralityTask",
    "LPTask",
    "MaxFlowTask",
    "task_for",
    "ColoringCache",
    "ProgressiveRun",
    "ReducedSolveCache",
    "CertifiedResult",
    "CertifiedRound",
    "progressive_sweep",
    "run_certified",
    "run_task",
    "ColoringSpec",
    "CompressionTask",
    "TaskResult",
    "BlockWeightTracker",
]
