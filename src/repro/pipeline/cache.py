"""Keyed coloring cache: one Rothko run serving many consumers.

Rothko's split sequence is fully determined by its
:class:`~repro.pipeline.task.ColoringSpec` — the stopping knobs only
pick a prefix.  :class:`ProgressiveRun` exploits that: it drives a
single engine monotonically forward, records the q-error trajectory,
and can answer "the coloring a fresh run with *these* stopping knobs
would have produced" for any knobs whose stopping point it has already
passed, without recoloring.  :class:`ColoringCache` keys such runs by
spec fingerprint so one coloring is shared across tasks (max-flow upper
and lower bounds, LP ``sqrt`` and ``grohe`` modes), weight modes, and
every checkpoint of a multi-k sweep.

:class:`ReducedSolveCache` plays the same role one tier up: it keys the
*outputs* of a task's reduce–solve–lift stages on ``(coloring spec,
task solve key, checkpoint)``, so progressive sweeps and the
compression harness never re-solve a reduced problem the coloring
hasn't changed — e.g. a q-target met early makes every later budget
resolve to the same checkpoint, and only the first pays for a solve.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Coloring
from repro.core.reduced import block_weights
from repro.obs import recorder as _obs
from repro.obs import trace as _trace
from repro.pipeline.task import ColoringSpec
from repro.pipeline.weights import BlockWeightTracker

__all__ = ["ColoringCache", "ProgressiveRun", "ReducedSolveCache"]


class ProgressiveRun:
    """One Rothko engine advanced monotonically across consumers.

    The engine only moves forward; earlier checkpoints stay serveable
    through the recorded ``(n_colors, q_err)`` history, parent-pointer
    coloring replay, and (for block weights) a memoized scratch
    product.  While the engine sits *at* a checkpoint, block weights
    come from the incrementally maintained
    :class:`~repro.pipeline.weights.BlockWeightTracker` — the ascending
    sweep path never recomputes the triple product.
    """

    def __init__(self, spec: ColoringSpec) -> None:
        self.spec = spec
        self.engine = spec.build_engine()
        self._tracker: BlockWeightTracker | None = None
        #: engine colors whose W row/column is stale (tracker attached)
        self._dirty: set[int] = set()
        #: color counts reached, in refinement order
        self._reached: list[int] = [self.engine.k]
        #: q-error of each reached state
        self._q_err: dict[int, float] = {
            self.engine.k: self.engine.max_q_err()
        }
        self._colorings: dict[int, Coloring] = {}
        self._scratch_weights: dict[int, np.ndarray] = {}

    @property
    def n_colors(self) -> int:
        return self.engine.k

    def advance(
        self, max_colors: int | None = None, q_tolerance: float = 0.0
    ) -> None:
        """Refine until the given stopping rule holds (or no witness
        remains), keeping the dirty set and q-error history in lockstep.

        Each split's ``q_err_before`` is the error of the *previous*
        state, so the history costs nothing extra per split; only the
        final state needs one ``O(k^2)`` scan.
        """
        engine = self.engine
        advanced = False
        with _trace.span(
            "pipeline.advance",
            from_colors=engine.k,
            max_colors=max_colors,
            q_tolerance=q_tolerance,
        ) as advance_span:
            for step in engine.steps(
                max_colors=max_colors, q_tolerance=q_tolerance
            ):
                advanced = True
                if self._tracker is not None:
                    self._dirty.add(step.parent_color)
                    self._dirty.add(step.new_color)
                self._q_err[step.n_colors - 1] = step.q_err_before
                self._reached.append(step.n_colors)
            if advanced:
                self._q_err[engine.k] = engine.max_q_err()
            advance_span.set(to_colors=engine.k)

    def resolve(
        self, max_colors: int | None = None, q_tolerance: float = 0.0
    ) -> int:
        """Color count where a fresh run with these knobs would stop.

        Scans the recorded trajectory for the first state satisfying
        the stopping rule; advances the engine if no recorded state
        does.  This is what makes cache hits *exact*: the returned
        checkpoint matches ``Rothko.run(max_colors, q_tolerance)`` on a
        fresh engine, state for state.
        """
        for n_colors in self._reached:
            if max_colors is not None and n_colors >= max_colors:
                return n_colors
            if self._q_err[n_colors] <= q_tolerance:
                return n_colors
        self.advance(max_colors=max_colors, q_tolerance=q_tolerance)
        return self.engine.k

    def coloring(self, n_colors: int) -> Coloring:
        """Canonical coloring at a reached checkpoint (memoized)."""
        if n_colors not in self._colorings:
            self._colorings[n_colors] = self.engine.coloring_at(n_colors)
        return self._colorings[n_colors]

    def q_err(self, n_colors: int) -> float:
        return self._q_err[n_colors]

    def weights(self, n_colors: int) -> np.ndarray:
        """Dense block weights ``W = S^T A S`` at a reached checkpoint,
        in canonical color-id order (aligned with :meth:`coloring`).

        At the engine's current state the matrix is served from the
        incrementally maintained tracker, with every split since the
        previous checkpoint folded in as one batched refresh of the
        dirtied rows/columns.
        """
        engine = self.engine
        if n_colors == engine.k:
            if self._tracker is None:
                self._tracker = BlockWeightTracker(
                    self.spec.adjacency, engine.labels, engine.k
                )
                self._dirty.clear()
            elif self._dirty:
                dirty = sorted(self._dirty)
                self._tracker.refresh(
                    dirty,
                    [engine.members(color) for color in dirty],
                    engine.labels,
                    engine.k,
                )
                self._dirty.clear()
            return self._tracker.weights(engine.labels)
        # The engine has refined past this checkpoint (descending or
        # repeated sweeps): fall back to one memoized scratch product.
        if n_colors not in self._scratch_weights:
            self._scratch_weights[n_colors] = block_weights(
                self.spec.adjacency, self.coloring(n_colors)
            ).toarray()
        return self._scratch_weights[n_colors].copy()


class ColoringCache:
    """Spec-keyed registry of :class:`ProgressiveRun` instances.

    A cached run pins its Rothko engine — the memory-flat ``O(m + k^2)``
    state: CSR/CSC adjacency snapshots, member lists, and the ``k x k``
    boundary/error/witness matrices — plus the block-weight tracker and
    memoized checkpoint colorings for the cache's lifetime, so scope a
    cache to one sweep or experiment call (every driver here creates its
    own by default) and :meth:`clear` it when reuse is over.  A
    ``max_runs`` bound turns the registry into an LRU: admitting a new
    run past the bound drops the least-recently-served one.

    Every lookup is mirrored to the active observability recorder as
    ``pipeline.cache.hit`` / ``pipeline.cache.miss`` /
    ``pipeline.cache.evict`` counters.
    """

    def __init__(self, max_runs: int | None = None) -> None:
        if max_runs is not None and max_runs < 1:
            raise ValueError(f"max_runs must be >= 1, got {max_runs}")
        self._runs: dict[tuple, ProgressiveRun] = {}
        self.max_runs = max_runs
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def run_for(self, spec: ColoringSpec) -> ProgressiveRun:
        key = spec.cache_key()
        run = self._runs.get(key)
        if run is None:
            self.misses += 1
            _obs._active.count("pipeline.cache.miss")
            run = ProgressiveRun(spec)
            if (
                self.max_runs is not None
                and len(self._runs) >= self.max_runs
            ):
                # Dict order is recency order (hits re-append below),
                # so the first key is the least recently served.
                oldest = next(iter(self._runs))
                del self._runs[oldest]
                self.evictions += 1
                _obs._active.count("pipeline.cache.evict")
            self._runs[key] = run
        else:
            self.hits += 1
            _obs._active.count("pipeline.cache.hit")
            # Refresh recency: move the served run to the dict's end.
            del self._runs[key]
            self._runs[key] = run
        return run

    def clear(self) -> None:
        """Drop every cached run (and the engine memory each pins)."""
        self._runs.clear()

    def __len__(self) -> int:
        return len(self._runs)


class ReducedSolveCache:
    """LRU cache of reduce–solve–lift outputs, keyed per checkpoint.

    Keys are ``(spec.cache_key(), task.solve_key(), checkpoint)`` —
    everything that determines the reduced problem and its solution:
    the split sequence (spec), where along it we stopped (checkpoint),
    and every task knob shaping the three stages (solve key).  Tasks
    whose :meth:`~repro.pipeline.task.CompressionTask.solve_key`
    returns ``None`` are never cached; the runner consults this cache
    only after checkpoint *resolution*, so a hit skips the reduce,
    solve, and lift stages entirely while the coloring itself still
    comes from the (cheap, memoized) progressive run.

    Entries are ``(reduced, solution, lifted, value)`` tuples stored by
    reference — the same objects a cache-off run would have built, so
    served results are identical field for field.  ``max_entries``
    bounds the cache as an LRU exactly like
    :class:`ColoringCache.max_runs`; lookups mirror to the active
    observability recorder as ``pipeline.solve_cache.hit`` / ``.miss``
    / ``.evict`` counters.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._entries: dict[tuple, tuple] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> tuple | None:
        """The cached ``(reduced, solution, lifted, value)`` for ``key``,
        or ``None`` — every call counts as one hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _obs._active.count("pipeline.solve_cache.miss")
            return None
        self.hits += 1
        _obs._active.count("pipeline.solve_cache.hit")
        # Refresh recency: move the served entry to the dict's end.
        del self._entries[key]
        self._entries[key] = entry
        return entry

    def put(self, key: tuple, entry: tuple) -> None:
        if key in self._entries:
            del self._entries[key]
        elif (
            self.max_entries is not None
            and len(self._entries) >= self.max_entries
        ):
            # Dict order is recency order (get re-appends on hit), so
            # the first key is the least recently served.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
            _obs._active.count("pipeline.solve_cache.evict")
        self._entries[key] = entry

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
