"""The three paper applications as :class:`CompressionTask` adapters.

Each adapter wires an existing application substrate — the reduced flow
network (Sec. 4.2), the LP reduction (Sec. 4.1), color-pivot Brandes
(Sec. 4.3) — into the shared compress–solve–lift protocol.  The
``approx_*`` convenience functions in ``repro.flow.approx``,
``repro.lp.reduction`` and ``repro.centrality.approx`` are thin wrappers
over these adapters plus :func:`repro.pipeline.runner.run_task`.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.centrality.approx import pivot_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.core.partition import Coloring
from repro.flow.approx import (
    flow_initial_coloring,
    lift_flow,
    reduced_network,
)
from repro.flow.network import FlowNetwork, FlowResult, max_flow
from repro.lp.model import LinearProgram
from repro.lp.reduction import initial_bipartite_coloring, reduce_lp
from repro.lp.solve import solve_lp
from repro.graphs.digraph import WeightedDiGraph
from repro.pipeline.task import ColoringSpec, CompressionTask
from repro.utils.rng import SeedLike
from repro.utils.stats import ratio_error

__all__ = ["MaxFlowTask", "LPTask", "CentralityTask", "task_for"]


class MaxFlowTask(CompressionTask):
    """Reduced max-flow (Theorem 6): color with ``s``/``t`` pinned,
    reduce to block capacities, solve on the reduced network.

    ``bound="upper"`` uses the block capacity sums ``c_hat_2`` (the
    deployed over-approximation — its reduce stage is exactly the block
    weights the progressive runner maintains); ``bound="lower"``
    uses the uniform-flow capacities ``c_hat_1``.  With
    ``lift_solution=True`` (lower bound only) the reduced flow is
    lifted to a valid flow on the original network.  ``engine`` picks
    the exact solver core the reduced network is solved with (the flat
    arc-store engine by default, the legacy Python solvers with
    ``"python"`` — the CLI's ``repro solve --engine`` cross-check).
    """

    name = "maxflow"

    def __init__(
        self,
        network: FlowNetwork,
        bound: str = "upper",
        algorithm: str = "push_relabel",
        split_mean: str = "arithmetic",
        lift_solution: bool = False,
        engine: str = "arcstore",
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.problem = network
        self.bound = bound
        self.algorithm = algorithm
        self.split_mean = split_mean
        self.lift_solution = lift_solution
        self.engine = engine
        self.backend = backend
        self.workers = workers
        self._spec: ColoringSpec | None = None

    def coloring_spec(self) -> ColoringSpec:
        if self._spec is None:
            initial, frozen = flow_initial_coloring(self.problem)
            self._spec = ColoringSpec(
                self.problem.graph.to_csr(),
                alpha=0.0,
                beta=0.0,
                split_mean=self.split_mean,
                initial=initial,
                frozen=frozen,
                backend=self.backend,
                workers=self.workers,
            )
        return self._spec

    def solve_key(self) -> tuple:
        # The coloring spec's adjacency hash pins the network (graph and
        # capacities); source/sink are pinned by the spec's initial
        # coloring.  Everything else shaping reduce/solve/lift is here.
        return (
            self.name,
            self.bound,
            self.algorithm,
            self.engine,
            self.lift_solution,
        )

    def reduce(
        self,
        problem: FlowNetwork,
        coloring: Coloring,
        *,
        block_weights: np.ndarray | None = None,
        max_q_err: float | None = None,
    ) -> FlowNetwork:
        return reduced_network(
            problem, coloring, bound=self.bound, block_weights=block_weights
        )

    def solve(self, reduced: FlowNetwork) -> FlowResult:
        return max_flow(
            reduced,
            algorithm=self.algorithm,
            engine=self.engine,
            backend=self.backend,
        )

    def lift(
        self, coloring: Coloring, reduced: FlowNetwork, solution: FlowResult
    ) -> FlowResult:
        if not self.lift_solution:
            return solution
        return lift_flow(self.problem, coloring, solution)

    def value(
        self, reduced: FlowNetwork, solution: FlowResult, lifted: FlowResult
    ) -> float:
        return solution.value

    def exact_reference(self) -> float:
        """Exact max-flow value on the original network."""
        return max_flow(
            self.problem,
            algorithm=self.algorithm,
            engine=self.engine,
            backend=self.backend,
        ).value

    def certified_error(self, exact: float, result) -> float:
        """Paper Sec. 6.1 ratio error, shifted so 0.0 is exact."""
        return ratio_error(exact, result.value) - 1.0


class LPTask(CompressionTask):
    """Reduced linear programs (Eq. 6): color the extended matrix's
    bipartite graph, scale the block sums by class sizes, solve the
    reduced LP, and lift ``x = V^T x_hat`` (Eq. 10)."""

    name = "lp"

    def __init__(
        self,
        lp: LinearProgram,
        mode: str = "sqrt",
        method: str = "scipy",
        alpha: float = 1.0,
        beta: float = 0.0,
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.problem = lp
        self.mode = mode
        self.method = method
        self.alpha = alpha
        self.beta = beta
        self.backend = backend
        self.workers = workers
        self._spec: ColoringSpec | None = None

    def coloring_spec(self) -> ColoringSpec:
        if self._spec is None:
            initial, frozen = initial_bipartite_coloring(
                self.problem.n_rows, self.problem.n_cols
            )
            self._spec = ColoringSpec(
                self.problem.bipartite_adjacency(),
                alpha=self.alpha,
                beta=self.beta,
                split_mean="arithmetic",
                initial=initial,
                frozen=frozen,
                backend=self.backend,
                workers=self.workers,
            )
        return self._spec

    def solve_key(self) -> tuple:
        # The spec's adjacency hash covers the extended matrix's sparsity
        # pattern and stored values, but b/c entries that happen to be
        # zero leave no stored trace there — hash them outright so two
        # LPs differing only in unstored coefficients never alias.
        digest = hashlib.sha1()
        digest.update(np.ascontiguousarray(self.problem.b).tobytes())
        digest.update(np.ascontiguousarray(self.problem.c).tobytes())
        return (self.name, self.mode, self.method, digest.hexdigest())

    def reduce(
        self,
        problem: LinearProgram,
        coloring: Coloring,
        *,
        block_weights: np.ndarray | None = None,
        max_q_err: float | None = None,
    ):
        return reduce_lp(
            problem,
            mode=self.mode,
            coloring=coloring,
            block_weights=block_weights,
            max_q_err=max_q_err,
        )

    def solve(self, reduced):
        return solve_lp(reduced.reduced, method=self.method)

    def lift(self, coloring: Coloring, reduced, solution) -> np.ndarray:
        return reduced.lift(solution.x)

    def value(self, reduced, solution, lifted) -> float:
        return solution.objective

    def exact_reference(self) -> float:
        """Exact optimal objective of the original LP."""
        return solve_lp(self.problem, method=self.method).objective

    def certified_error(self, exact: float, result) -> float:
        """Paper Sec. 6.1 ratio error, shifted so 0.0 is exact."""
        return ratio_error(exact, result.value) - 1.0


class CentralityTask(CompressionTask):
    """Color-pivot betweenness (Sec. 4.3): ``alpha = beta = 1``
    coloring, one weighted Brandes pass per color representative.

    The reduce stage is the coloring itself (the pivot set *is* the
    compression), solving runs the weighted dependency accumulation,
    and the scores already live in node space, so lifting selects them.
    Each solve draws representatives from a fresh ``seed``-keyed
    generator, so results at a given checkpoint are reproducible and
    independent of sweep order.  ``engine`` picks the Brandes core the
    restricted passes run on (arcstore by default).
    """

    name = "centrality"
    uses_block_weights = False

    def __init__(
        self,
        graph: WeightedDiGraph,
        seed: SeedLike = 0,
        pivots_per_color: int = 1,
        split_mean: str = "geometric",
        engine: str = "arcstore",
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.problem = graph
        self.seed = seed
        self.pivots_per_color = pivots_per_color
        self.split_mean = split_mean
        self.engine = engine
        self.backend = backend
        self.workers = workers
        self._spec: ColoringSpec | None = None

    def coloring_spec(self) -> ColoringSpec:
        if self._spec is None:
            self._spec = ColoringSpec(
                self.problem.to_csr(),
                alpha=1.0,
                beta=1.0,
                split_mean=self.split_mean,
                backend=self.backend,
                workers=self.workers,
            )
        return self._spec

    def solve_key(self) -> tuple | None:
        # Representative draws come from a fresh ``seed``-keyed generator
        # per solve, so results at a checkpoint are a pure function of
        # (coloring, seed, pivots) — cacheable only for a fixed integer
        # seed.  ``None`` (fresh entropy) and live Generator seeds draw
        # different pivots each call, so those tasks stay uncacheable.
        if not isinstance(self.seed, (int, np.integer)):
            return None
        return (self.name, int(self.seed), self.pivots_per_color, self.engine)

    def reduce(
        self,
        problem: WeightedDiGraph,
        coloring: Coloring,
        *,
        block_weights: np.ndarray | None = None,
        max_q_err: float | None = None,
    ) -> Coloring:
        return coloring

    def solve(self, reduced: Coloring) -> tuple[np.ndarray, np.ndarray]:
        return pivot_betweenness(
            self.problem,
            reduced,
            seed=self.seed,
            pivots_per_color=self.pivots_per_color,
            engine=self.engine,
            backend=self.backend,
            workers=self.workers,
        )

    def lift(self, coloring: Coloring, reduced: Coloring, solution) -> np.ndarray:
        scores, _ = solution
        return scores

    def value(self, reduced, solution, lifted: np.ndarray) -> float:
        # No single objective exists for centrality; the score total is
        # a deterministic checksum used by equality tests and the CLI.
        return float(lifted.sum())

    def exact_reference(self) -> np.ndarray:
        """Exact (unnormalized) betweenness scores, all sources."""
        return betweenness_centrality(
            self.problem,
            engine=self.engine,
            backend=self.backend,
            workers=self.workers,
        )

    def certified_error(self, exact: np.ndarray, result) -> float:
        """Normalized L1 distance between score vectors.

        Centrality has no single objective for the ratio error, so the
        certified dial is total absolute score deviation relative to
        total exact score mass (0.0 = every node's score exact).
        """
        total = float(np.abs(exact).sum())
        deviation = float(np.abs(exact - result.lifted).sum())
        if total == 0.0:
            return 0.0 if deviation == 0.0 else float("inf")
        return deviation / total


def task_for(kind: str, problem: Any, **options: Any) -> CompressionTask:
    """Build the adapter for a task kind (the CLI entry point)."""
    adapters = {
        "maxflow": MaxFlowTask,
        "lp": LPTask,
        "centrality": CentralityTask,
    }
    if kind not in adapters:
        raise ValueError(
            f"task must be one of {sorted(adapters)}, got {kind!r}"
        )
    return adapters[kind](problem, **options)
