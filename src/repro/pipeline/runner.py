"""Drivers for :class:`~repro.pipeline.task.CompressionTask`.

``run_task`` executes one compress–solve–lift pass; ``progressive_sweep``
evaluates a whole schedule of color budgets off a *single* Rothko run.
Both route the coloring through a :class:`~repro.pipeline.cache.
ColoringCache`, so passing the same cache to many calls shares engines
across tasks, weight modes, and checkpoints.

The progressive sweep is the Fig. 7/8 access pattern: instead of
re-coloring from scratch for every budget ``k`` (the naive loop the
experiments used to run), the cached engine refines once toward the
largest budget, pausing at every checkpoint to reduce–solve–lift with
the block weights the runner maintains incrementally per split.
Rothko's determinism makes the two strategies *equivalent*: every
checkpoint reproduces exactly the coloring, q-error, and solution of a
fresh per-k run (``tests/pipeline/test_progressive.py`` asserts this;
``benchmarks/bench_pipeline_progressive.py`` measures the speedup).
"""

from __future__ import annotations

from typing import Iterable

from repro.obs import recorder as _obs
from repro.obs import trace as _trace
from repro.pipeline.cache import ColoringCache, ReducedSolveCache
from repro.pipeline.task import CompressionTask, TaskResult
from repro.utils.timing import StageTimer

__all__ = ["run_task", "progressive_sweep"]


def run_task(
    task: CompressionTask,
    n_colors: int | None = None,
    q: float | None = None,
    cache: ColoringCache | None = None,
    solve_cache: ReducedSolveCache | None = None,
) -> TaskResult:
    """One color → reduce → solve → lift pass for ``task``.

    Exactly one stopping knob is required: a color budget ``n_colors``
    and/or a target maximum q-error ``q``.  With a shared ``cache`` the
    coloring work is incremental across calls; the reported
    ``timings.coloring`` covers only the refinement this call caused.
    A shared ``solve_cache`` additionally skips the reduce/solve/lift
    stages whenever this (spec, task configuration, checkpoint) triple
    has been solved before — stopping knobs are consulted *after*
    checkpoint resolution, so distinct budgets resolving to one state
    (e.g. a q-target met early) pay for exactly one solve.
    """
    if n_colors is None and q is None:
        raise ValueError(f"{task.name} pipeline needs n_colors and/or q")
    if cache is None:
        cache = ColoringCache()
    with _trace.span(
        "pipeline.task", task=task.name, n_colors=n_colors, q=q
    ) as task_span:
        run = cache.run_for(task.coloring_spec())
        timer = StageTimer()
        with timer.stage("coloring"):
            checkpoint = run.resolve(
                max_colors=n_colors,
                q_tolerance=q if q is not None else 0.0,
            )
            coloring = run.coloring(checkpoint)
            q_err = run.q_err(checkpoint)
        solve_key = None
        entry = None
        if solve_cache is not None:
            task_key = task.solve_key()
            if task_key is not None:
                solve_key = (run.spec.cache_key(), task_key, checkpoint)
                entry = solve_cache.get(solve_key)
        if entry is not None:
            reduced, solution, lifted, value = entry
        else:
            with timer.stage("reduce"):
                weights = (
                    run.weights(checkpoint)
                    if task.uses_block_weights
                    else None
                )
                reduced = task.reduce(
                    task.problem, coloring, block_weights=weights,
                    max_q_err=q_err,
                )
            with timer.stage("solve"):
                solution = task.solve(reduced)
            with timer.stage("lift"):
                lifted = task.lift(coloring, reduced, solution)
            value = task.value(reduced, solution, lifted)
            if solve_key is not None:
                solve_cache.put(
                    solve_key, (reduced, solution, lifted, value)
                )
        task_span.set(
            checkpoint=checkpoint,
            max_q_err=q_err,
            solve_cache_hit=entry is not None,
        )
    timings = timer.freeze()
    _obs._active.observe("pipeline.checkpoint_s", timings.total)
    return TaskResult(
        task=task.name,
        coloring=coloring,
        max_q_err=q_err,
        reduced=reduced,
        solution=solution,
        lifted=lifted,
        value=value,
        timings=timings,
    )


def progressive_sweep(
    task: CompressionTask,
    checkpoints: Iterable[int],
    q: float | None = None,
    cache: ColoringCache | None = None,
    solve_cache: ReducedSolveCache | None = None,
) -> list[TaskResult]:
    """Solve ``task`` at every color budget in ``checkpoints``.

    Budgets are visited in the given order; an ascending schedule (the
    normal case) performs one Rothko run total, with block weights
    patched per split rather than recomputed per budget.  Descending or
    repeated budgets still work — they are served from the run's
    recorded history.  An optional ``q`` caps every checkpoint exactly
    as it would a standalone run: refinement stops early once the
    q-error target is met, so later budgets all resolve to that state —
    and, through the sweep-local :class:`ReducedSolveCache` (pass
    ``solve_cache`` to share one across sweeps), are *solved* exactly
    once rather than once per budget.
    """
    if cache is None:
        cache = ColoringCache()
    if solve_cache is None:
        solve_cache = ReducedSolveCache()
    budgets = list(checkpoints)
    with _trace.span(
        "pipeline.sweep", task=task.name, checkpoints=len(budgets), q=q
    ):
        return [
            run_task(
                task,
                n_colors=budget,
                q=q,
                cache=cache,
                solve_cache=solve_cache,
            )
            for budget in budgets
        ]
