"""Fig. 2 / Sec. 6.3 "Robustness": stable vs q-stable under edge noise.

A synthetic graph with a planted 100-color equitable partition
(|V| = 1000, |E| ~ 21 600) is perturbed by adding random edges (up to
~1.5% of |E|).  The stable coloring degenerates almost immediately —
most nodes end up in singleton colors — while a q-stable coloring
(q = 4) keeps the color count near the planted 100.
"""

from __future__ import annotations

from repro.core.refinement import stable_coloring
from repro.core.rothko import Rothko
from repro.graphs.generators import lifted_biregular
from repro.graphs.ops import perturb_add_random_edges


def run_fig2(
    n_groups: int = 100,
    group_size: int = 10,
    template_edges: int = 1080,
    lift_degree: int = 2,
    q: float = 4.0,
    fractions: tuple[float, ...] = (0.0, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015),
    seed: int = 7,
) -> list[dict]:
    """Rows: edges added -> #colors for stable and for q-stable coloring."""
    graph, _ = lifted_biregular(
        n_groups=n_groups,
        group_size=group_size,
        template_edges=template_edges,
        lift_degree=lift_degree,
        seed=seed,
    )
    base_edges = graph.n_edges
    rows = []
    for fraction in fractions:
        count = int(round(base_edges * fraction))
        perturbed = (
            graph
            if count == 0
            else perturb_add_random_edges(graph, count, seed=seed + count)
        )
        adjacency = perturbed.to_csr()
        stable = stable_coloring(adjacency)
        # q-stable: refine until max q-error <= q (no color cap).
        engine = Rothko(adjacency)
        q_result = engine.run(q_tolerance=q, max_colors=perturbed.n_nodes)
        rows.append(
            {
                "edges_added": count,
                "fraction": fraction,
                "stable_colors": stable.n_colors,
                "qstable_colors": q_result.n_colors,
                "stable_compression": perturbed.n_nodes / stable.n_colors,
                "qstable_compression": perturbed.n_nodes / q_result.n_colors,
            }
        )
    return rows
