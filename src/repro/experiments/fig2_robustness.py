"""Fig. 2 / Sec. 6.3 "Robustness": stable vs q-stable under edge noise.

A synthetic graph with a planted 100-color equitable partition
(|V| = 1000, |E| ~ 21 600) is perturbed by adding random edges (up to
~1.5% of |E|).  The stable coloring degenerates almost immediately —
most nodes end up in singleton colors — while a q-stable coloring
(q = 4) keeps the color count near the planted 100.
"""

from __future__ import annotations

from repro.core.qerror import max_q_err
from repro.core.refinement import stable_coloring
from repro.core.rothko import Rothko
from repro.datasets.churn import random_churn
from repro.dynamic.engine import DynamicColoring
from repro.graphs.generators import lifted_biregular
from repro.graphs.ops import perturb_add_random_edges


def run_fig2(
    n_groups: int = 100,
    group_size: int = 10,
    template_edges: int = 1080,
    lift_degree: int = 2,
    q: float = 4.0,
    fractions: tuple[float, ...] = (0.0, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015),
    seed: int = 7,
) -> list[dict]:
    """Rows: edges added -> #colors for stable and for q-stable coloring."""
    graph, _ = lifted_biregular(
        n_groups=n_groups,
        group_size=group_size,
        template_edges=template_edges,
        lift_degree=lift_degree,
        seed=seed,
    )
    base_edges = graph.n_edges
    rows = []
    for fraction in fractions:
        count = int(round(base_edges * fraction))
        perturbed = (
            graph
            if count == 0
            else perturb_add_random_edges(graph, count, seed=seed + count)
        )
        adjacency = perturbed.to_csr()
        stable = stable_coloring(adjacency)
        # q-stable: refine until max q-error <= q (no color cap).
        engine = Rothko(adjacency)
        q_result = engine.run(q_tolerance=q, max_colors=perturbed.n_nodes)
        rows.append(
            {
                "edges_added": count,
                "fraction": fraction,
                "stable_colors": stable.n_colors,
                "qstable_colors": q_result.n_colors,
                "stable_compression": perturbed.n_nodes / stable.n_colors,
                "qstable_compression": perturbed.n_nodes / q_result.n_colors,
            }
        )
    return rows


def run_fig2_incremental(
    n_groups: int = 100,
    group_size: int = 10,
    template_edges: int = 1080,
    lift_degree: int = 2,
    q: float = 4.0,
    fractions: tuple[float, ...] = (0.0, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015),
    seed: int = 7,
    drift_budget: float = 0.25,
) -> list[dict]:
    """The Fig. 2 sweep with *incremental repair* instead of recoloring.

    The same growing edge-noise stream is fed to one
    :class:`DynamicColoring` instance; each row reports the maintained
    color count (and repair statistics) next to the from-scratch Rothko
    count on the identical perturbed graph, so the drift of local repair
    is directly visible.
    """
    graph, _ = lifted_biregular(
        n_groups=n_groups,
        group_size=group_size,
        template_edges=template_edges,
        lift_degree=lift_degree,
        seed=seed,
    )
    base_edges = graph.n_edges
    n = graph.n_nodes
    # One insert-only churn trace (shared generator), consumed cumulatively.
    total_inserts = int(round(base_edges * max(fractions)))
    trace = random_churn(
        graph, total_inserts, seed=seed + 1, insert_fraction=1.0
    )
    dynamic = DynamicColoring(
        graph, q_tolerance=q, drift_budget=drift_budget, max_colors=n
    )
    rows = []
    added_so_far = 0
    for fraction in fractions:
        target = int(round(base_edges * fraction))
        batch = trace[added_so_far:target]
        dynamic.apply_batch(batch)
        added_so_far = target
        snapshot = dynamic.snapshot()
        adjacency = graph.to_csr()
        scratch = Rothko(adjacency).run(q_tolerance=q, max_colors=n)
        rows.append(
            {
                "edges_added": added_so_far,
                "fraction": fraction,
                "incremental_colors": snapshot.n_colors,
                "scratch_colors": scratch.n_colors,
                "incremental_max_q": max_q_err(adjacency, snapshot),
                "splits": dynamic.stats.splits,
                "merges": dynamic.stats.merges,
                "rebuilds": dynamic.stats.rebuilds,
            }
        )
    dynamic.detach()
    return rows
