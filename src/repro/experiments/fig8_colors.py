"""Fig. 8: accuracy as a function of the number of colors.

The paper's observation: across all three tasks no more than ~150 colors
are needed to converge, with diminishing returns — the first splits buy
large accuracy gains.  These drivers sweep a finer color grid than
Fig. 7's and report accuracy only.

The fine grid rides the same progressive runner as Fig. 7: one Rothko
run per dataset serves all eleven checkpoints, and a shared
:class:`~repro.pipeline.ColoringCache` (created here, forwarded to the
Fig. 7 drivers) would let a combined Fig. 7 + Fig. 8 session reuse the
coloring across both sweeps.
"""

from __future__ import annotations

from repro.experiments.fig7_tradeoff import (
    DEFAULT_CENTRALITY_DATASETS,
    DEFAULT_FLOW_DATASETS,
    DEFAULT_LP_DATASETS,
    centrality_tradeoff,
    lp_tradeoff,
    maxflow_tradeoff,
)
from repro.pipeline import ColoringCache

FINE_BUDGETS = (4, 6, 8, 12, 16, 24, 32, 48, 64, 100, 150)


def accuracy_vs_colors(
    task: str,
    scale: float | None = None,
    datasets: tuple[str, ...] | None = None,
    color_budgets: tuple[int, ...] = FINE_BUDGETS,
    cache: ColoringCache | None = None,
) -> list[dict]:
    """Rows of Fig. 8 for one task ('maxflow' | 'lp' | 'centrality')."""
    cache = cache if cache is not None else ColoringCache()
    if task == "maxflow":
        return maxflow_tradeoff(
            datasets=datasets or DEFAULT_FLOW_DATASETS,
            scale=scale if scale is not None else 0.01,
            color_budgets=color_budgets,
            cache=cache,
        )
    if task == "lp":
        return lp_tradeoff(
            datasets=datasets or DEFAULT_LP_DATASETS,
            scale=scale if scale is not None else 0.05,
            color_budgets=tuple(max(6, b) for b in color_budgets),
            cache=cache,
        )
    if task == "centrality":
        return centrality_tradeoff(
            datasets=datasets or DEFAULT_CENTRALITY_DATASETS,
            scale=scale if scale is not None else 0.02,
            color_budgets=color_budgets,
            cache=cache,
        )
    raise ValueError(f"unknown task {task!r}")
