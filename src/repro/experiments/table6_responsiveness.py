"""Table 6: latency and responsiveness of the anytime Rothko loop.

Because Rothko refines one color at a time, an application can consume
intermediate colorings: the paper reports the time to the first usable
result, the average time between updates, and the time to convergence.
We drive :meth:`Rothko.steps` directly, re-evaluating the downstream
approximation at every snapshot; "converged" is the first time the
approximation comes within ``convergence_tol`` of its final value.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.partition import Coloring
from repro.core.rothko import Rothko
from repro.centrality.approx import pivot_betweenness
from repro.datasets.registry import load_flow, load_graph, load_lp
from repro.flow.approx import reduced_network
from repro.flow.network import FlowNetwork, max_flow
from repro.lp.reduction import reduce_lp
from repro.lp.solve import solve_lp
from repro.utils.stats import spearman_rho

import numpy as np


def _responsiveness(
    engine: Rothko,
    evaluate: Callable[[Coloring], float],
    max_colors: int,
    min_colors: int = 3,
    convergence_tol: float = 0.01,
) -> dict:
    """Drive the anytime loop, timing first result / updates / convergence."""
    start = time.perf_counter()
    update_times: list[float] = []
    values: list[float] = []
    first_result: float | None = None
    for step in engine.steps(max_colors=max_colors):
        if step.n_colors < min_colors:
            continue
        value = evaluate(step.coloring)
        now = time.perf_counter() - start
        if first_result is None:
            first_result = now
        update_times.append(now)
        values.append(value)
    if not values:
        raise RuntimeError("anytime loop produced no evaluations")
    final = values[-1]
    converge_time = update_times[-1]
    for t, value in zip(update_times, values):
        if final == 0:
            close = abs(value) <= convergence_tol
        else:
            close = abs(value - final) <= convergence_tol * abs(final)
        if close:
            converge_time = t
            break
    gaps = np.diff([0.0] + update_times)
    return {
        "time_to_first_s": first_result,
        "update_freq_s": float(np.mean(gaps)),
        "time_to_converge_s": converge_time,
        "updates": len(update_times),
    }


def responsiveness_rows(
    flow_dataset: str = "tsukuba0",
    lp_dataset: str = "qap15",
    centrality_dataset: str = "facebook",
    flow_scale: float = 0.005,
    lp_scale: float = 0.05,
    centrality_scale: float = 0.01,
    max_colors: int = 30,
    seed: int = 0,
) -> list[dict]:
    """One row per task type, as in Table 6."""
    rows = []

    # --- max-flow ------------------------------------------------------
    network = load_flow(flow_dataset, scale=flow_scale)
    labels = np.full(network.graph.n_nodes, 2, dtype=np.int64)
    labels[network.source_index] = 0
    labels[network.sink_index] = 1
    initial = Coloring(labels)
    frozen = (
        initial.color_of(network.source_index),
        initial.color_of(network.sink_index),
    )
    engine = Rothko(network.graph, initial=initial, frozen=frozen)

    def eval_flow(coloring: Coloring) -> float:
        reduced = reduced_network(network, coloring, bound="upper")
        return max_flow(reduced, algorithm="dinic").value

    row = _responsiveness(engine, eval_flow, max_colors=max_colors)
    rows.append({"task": "maxflow", "dataset": flow_dataset, **row})

    # --- linear program --------------------------------------------------
    lp = load_lp(lp_dataset, scale=lp_scale)
    from repro.lp.reduction import initial_bipartite_coloring

    lp_initial, lp_frozen = initial_bipartite_coloring(lp.n_rows, lp.n_cols)
    engine = Rothko(
        lp.bipartite_adjacency(),
        initial=lp_initial,
        alpha=1.0,
        frozen=lp_frozen,
    )

    def eval_lp(coloring: Coloring) -> float:
        reduction = reduce_lp(lp, coloring=coloring)
        try:
            return solve_lp(reduction.reduced, method="scipy").objective
        except Exception:
            return 0.0

    row = _responsiveness(engine, eval_lp, max_colors=max_colors)
    rows.append({"task": "lp", "dataset": lp_dataset, **row})

    # --- centrality ------------------------------------------------------
    graph = load_graph(centrality_dataset, scale=centrality_scale)
    engine = Rothko(graph, alpha=1.0, beta=1.0, split_mean="geometric")
    exact_proxy: list[np.ndarray] = []

    def eval_centrality(coloring: Coloring) -> float:
        scores, _ = pivot_betweenness(graph, coloring, seed=seed)
        # Track rank stability against the previous snapshot: once the
        # ranking stops moving, the approximation has converged.
        if exact_proxy:
            rho = spearman_rho(exact_proxy[-1], scores)
        else:
            rho = 0.0
        exact_proxy.append(scores)
        return rho

    row = _responsiveness(engine, eval_centrality, max_colors=max_colors)
    rows.append({"task": "centrality", "dataset": centrality_dataset, **row})
    return rows
