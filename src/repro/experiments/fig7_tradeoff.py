"""Fig. 7: speed-accuracy trade-offs for the three task types.

For every dataset the exact baseline is solved once (push-relabel for
flow, the LP solver for LPs, Brandes for centrality); then the coloring
approximation runs at a sweep of color budgets.  Every row reports the
end-to-end approximation time (coloring + reduction + solving, matching
the paper's measurement), the fraction of baseline time, and the
task-appropriate accuracy: ratio error (flow/LP, 1.0 ideal) or Spearman's
rho (centrality, 1.0 ideal).
"""

from __future__ import annotations

from repro.centrality.approx import approx_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.datasets.registry import load_flow, load_graph, load_lp
from repro.flow.approx import approx_max_flow
from repro.flow.network import max_flow
from repro.lp.reduction import approx_lp_opt
from repro.lp.solve import solve_lp
from repro.utils.stats import ratio_error, spearman_rho
from repro.utils.timing import time_call

DEFAULT_FLOW_DATASETS = ("tsukuba0", "venus0", "sawtooth0")
DEFAULT_LP_DATASETS = ("qap15", "supportcase10", "ex10")
DEFAULT_CENTRALITY_DATASETS = ("astroph", "facebook", "deezer")


def maxflow_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_FLOW_DATASETS,
    scale: float = 0.01,
    color_budgets: tuple[int, ...] = (5, 10, 20, 35),
) -> list[dict]:
    """Fig. 7(a): max-flow ratio error vs end-to-end time."""
    rows = []
    for name in datasets:
        network = load_flow(name, scale=scale)
        exact, exact_seconds = time_call(max_flow, network, "push_relabel")
        for budget in color_budgets:
            result = approx_max_flow(network, n_colors=budget)
            rows.append(
                {
                    "dataset": name,
                    "task": "maxflow",
                    "colors": result.n_colors,
                    "exact_value": exact.value,
                    "approx_value": result.value,
                    "accuracy": ratio_error(exact.value, result.value),
                    "time_s": result.total_seconds,
                    "exact_time_s": exact_seconds,
                    "time_fraction": result.total_seconds / exact_seconds
                    if exact_seconds > 0
                    else float("inf"),
                }
            )
    return rows


def lp_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_LP_DATASETS,
    scale: float = 0.05,
    color_budgets: tuple[int, ...] = (10, 25, 50, 100),
    method: str = "scipy",
) -> list[dict]:
    """Fig. 7(b): LP objective ratio error vs end-to-end time."""
    rows = []
    for name in datasets:
        lp = load_lp(name, scale=scale)
        exact, exact_seconds = time_call(solve_lp, lp, method)
        for budget in color_budgets:
            result = approx_lp_opt(lp, n_colors=budget, method=method)
            rows.append(
                {
                    "dataset": name,
                    "task": "lp",
                    "colors": result.reduction.n_colors,
                    "exact_value": exact.objective,
                    "approx_value": result.value,
                    "accuracy": ratio_error(exact.objective, result.value),
                    "time_s": result.total_seconds,
                    "exact_time_s": exact_seconds,
                    "time_fraction": result.total_seconds / exact_seconds
                    if exact_seconds > 0
                    else float("inf"),
                }
            )
    return rows


def centrality_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_CENTRALITY_DATASETS,
    scale: float = 0.02,
    color_budgets: tuple[int, ...] = (10, 25, 50, 100),
    seed: int = 0,
) -> list[dict]:
    """Fig. 7(c): Spearman rho vs end-to-end time."""
    rows = []
    for name in datasets:
        graph = load_graph(name, scale=scale)
        exact, exact_seconds = time_call(betweenness_centrality, graph)
        for budget in color_budgets:
            result = approx_betweenness(graph, n_colors=budget, seed=seed)
            rows.append(
                {
                    "dataset": name,
                    "task": "centrality",
                    "colors": result.n_colors,
                    "accuracy": spearman_rho(exact, result.scores),
                    "time_s": result.total_seconds,
                    "exact_time_s": exact_seconds,
                    "time_fraction": result.total_seconds / exact_seconds
                    if exact_seconds > 0
                    else float("inf"),
                }
            )
    return rows
