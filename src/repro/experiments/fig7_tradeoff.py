"""Fig. 7: speed-accuracy trade-offs for the three task types.

For every dataset the exact baseline is solved once (push-relabel for
flow, the LP solver for LPs, Brandes for centrality); then the coloring
approximation is evaluated at a sweep of color budgets, reporting the
task-appropriate accuracy per budget: ratio error (flow/LP, 1.0 ideal)
or Spearman's rho (centrality, 1.0 ideal).

The sweep runs through :func:`repro.pipeline.progressive_sweep`: one
Rothko run per dataset is refined toward the largest budget, pausing at
every checkpoint, with the block-weight matrix maintained incrementally
instead of recomputed per budget.  Checkpoint accuracies are identical
to re-coloring from scratch at each budget (Rothko is deterministic and
only ever refines).  Two timing columns tell the sweep's story:
``time_s`` is the *incremental* cost a checkpoint added on top of the
previous one (coloring since the last checkpoint + reduce + solve), and
``cum_time_s`` is the running total — the end-to-end cost of reaching
that budget through the progressive pipeline, the paper-comparable
per-point measurement (it upper-bounds a standalone run at that budget
by the earlier checkpoints' reduce/solve work).  ``time_fraction``
compares ``cum_time_s`` to the exact baseline.  Passing a shared
``cache`` reuses colorings across calls (e.g. Fig. 8's finer sweep over
the same datasets).
"""

from __future__ import annotations

from repro.centrality.brandes import betweenness_centrality
from repro.datasets.registry import load_flow, load_graph, load_lp
from repro.flow.network import max_flow
from repro.lp.solve import solve_lp
from repro.pipeline import (
    CentralityTask,
    ColoringCache,
    LPTask,
    MaxFlowTask,
    progressive_sweep,
)
from repro.utils.stats import ratio_error, spearman_rho
from repro.utils.timing import time_call

DEFAULT_FLOW_DATASETS = ("tsukuba0", "venus0", "sawtooth0")
DEFAULT_LP_DATASETS = ("qap15", "supportcase10", "ex10")
DEFAULT_CENTRALITY_DATASETS = ("astroph", "facebook", "deezer")


def _sweep_rows(name: str, results, exact_seconds: float, extras) -> list[dict]:
    """Rows for one dataset's sweep: id/timing columns + per-row extras.

    ``extras(result)`` supplies the task-specific accuracy columns.
    """
    rows = []
    cum_seconds = 0.0
    for result in results:
        cum_seconds += result.total_seconds
        rows.append(
            {
                "dataset": name,
                "task": result.task,
                "colors": result.n_colors,
                **extras(result),
                "time_s": result.total_seconds,
                "cum_time_s": cum_seconds,
                "exact_time_s": exact_seconds,
                "time_fraction": cum_seconds / exact_seconds
                if exact_seconds > 0
                else float("inf"),
            }
        )
    return rows


def maxflow_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_FLOW_DATASETS,
    scale: float = 0.01,
    color_budgets: tuple[int, ...] = (5, 10, 20, 35),
    cache: ColoringCache | None = None,
    engine: str = "arcstore",
) -> list[dict]:
    """Fig. 7(a): max-flow ratio error vs end-to-end time.

    Both the exact baseline and the reduced-network solves run on the
    selected engine, so the reported ``time_fraction`` compares like
    with like.
    """
    cache = cache if cache is not None else ColoringCache()
    rows = []
    for name in datasets:
        network = load_flow(name, scale=scale)
        exact, exact_seconds = time_call(
            max_flow, network, "push_relabel", engine
        )
        results = progressive_sweep(
            MaxFlowTask(network, engine=engine), color_budgets, cache=cache
        )
        rows += _sweep_rows(
            name,
            results,
            exact_seconds,
            lambda result: {
                "exact_value": exact.value,
                "approx_value": result.value,
                "accuracy": ratio_error(exact.value, result.value),
            },
        )
    return rows


def lp_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_LP_DATASETS,
    scale: float = 0.05,
    color_budgets: tuple[int, ...] = (10, 25, 50, 100),
    method: str = "scipy",
    cache: ColoringCache | None = None,
) -> list[dict]:
    """Fig. 7(b): LP objective ratio error vs end-to-end time."""
    cache = cache if cache is not None else ColoringCache()
    rows = []
    for name in datasets:
        lp = load_lp(name, scale=scale)
        exact, exact_seconds = time_call(solve_lp, lp, method)
        results = progressive_sweep(
            LPTask(lp, method=method), color_budgets, cache=cache
        )
        rows += _sweep_rows(
            name,
            results,
            exact_seconds,
            lambda result: {
                "exact_value": exact.objective,
                "approx_value": result.value,
                "accuracy": ratio_error(exact.objective, result.value),
            },
        )
    return rows


def centrality_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_CENTRALITY_DATASETS,
    scale: float = 0.02,
    color_budgets: tuple[int, ...] = (10, 25, 50, 100),
    seed: int = 0,
    cache: ColoringCache | None = None,
    engine: str = "arcstore",
) -> list[dict]:
    """Fig. 7(c): Spearman rho vs end-to-end time.

    Exact Brandes and the pivot passes share the selected engine, so
    ``time_fraction`` stays an apples-to-apples comparison.
    """
    cache = cache if cache is not None else ColoringCache()
    rows = []
    for name in datasets:
        graph = load_graph(name, scale=scale)
        exact, exact_seconds = time_call(
            betweenness_centrality, graph, engine=engine
        )
        results = progressive_sweep(
            CentralityTask(graph, seed=seed, engine=engine),
            color_budgets,
            cache=cache,
        )
        rows += _sweep_rows(
            name,
            results,
            exact_seconds,
            lambda result: {
                "accuracy": spearman_rho(exact, result.lifted),
            },
        )
    return rows
