"""Table 4: coloring size, q statistics, and runtime vs stable coloring.

For each dataset: the exact stable coloring (q = 0, the prior work
baseline), then Rothko run to maximum q targets {64, 32, 16, 8}.
Reported per row: achieved mean q, number of colors, compression ratio
``|V| / colors``, and wall-clock time — mirroring the paper's table
(where stable coloring compresses only ~1.3:1 while q = 16 already buys
two orders of magnitude).
"""

from __future__ import annotations

from repro.core.qerror import mean_q_err
from repro.core.refinement import stable_coloring
from repro.core.rothko import Rothko
from repro.datasets.registry import load_graph
from repro.utils.timing import time_call

DEFAULT_DATASETS = ("openflights", "epinions", "dblp")
DEFAULT_QS = (64.0, 32.0, 16.0, 8.0)


def compression_rows(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: float = 0.02,
    q_targets: tuple[float, ...] = DEFAULT_QS,
    include_stable: bool = True,
    split_mean: str = "geometric",
) -> list[dict]:
    """Rows of Table 4 for our stand-in datasets at the given scale."""
    rows = []
    for name in datasets:
        graph = load_graph(name, scale=scale)
        adjacency = graph.to_csr()
        n = graph.n_nodes
        if include_stable:
            stable, seconds = time_call(stable_coloring, adjacency)
            rows.append(
                {
                    "dataset": name,
                    "max_q": 0.0,
                    "mean_q": 0.0,
                    "colors": stable.n_colors,
                    "compression": n / stable.n_colors,
                    "time_s": seconds,
                }
            )
        for q in q_targets:
            engine = Rothko(adjacency, split_mean=split_mean)
            result, seconds = time_call(
                engine.run, None, q, None
            )
            rows.append(
                {
                    "dataset": name,
                    "max_q": result.max_q_err,
                    "mean_q": mean_q_err(adjacency, result.coloring),
                    "colors": result.n_colors,
                    "compression": n / result.n_colors,
                    "time_s": seconds,
                }
            )
    return rows
