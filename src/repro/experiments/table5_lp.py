"""Table 5: characteristics of the compressed constraint matrices.

For each LP and color budget: the reduced matrix's rows, columns and
nonzeros, the nnz compression ratio, and the relative (ratio) error of
the reduced optimum — the paper reports 10^2-10^3 compression at a
geometric-mean error around 1.2, with tiny budgets (5-10 colors) showing
huge errors that collapse as colors are added.

All budgets of one LP come off a single progressive coloring run
(:func:`repro.pipeline.progressive_sweep`): the engine refines once to
the largest budget and the reduced LP at each checkpoint is built from
the incrementally maintained block weights.
"""

from __future__ import annotations

from repro.datasets.registry import load_lp
from repro.lp.solve import solve_lp
from repro.pipeline import ColoringCache, LPTask, progressive_sweep
from repro.utils.stats import ratio_error

DEFAULT_DATASETS = ("qap15", "nug08-3rd", "supportcase10", "ex10")
DEFAULT_BUDGETS = (10, 50, 100)


def lp_compression_rows(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: float = 0.05,
    color_budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    method: str = "scipy",
    cache: ColoringCache | None = None,
) -> list[dict]:
    """Rows of Table 5 at the given scale."""
    cache = cache if cache is not None else ColoringCache()
    rows = []
    for name in datasets:
        lp = load_lp(name, scale=scale)
        exact = solve_lp(lp, method=method)
        results = progressive_sweep(
            LPTask(lp, method=method), color_budgets, cache=cache
        )
        for budget, result in zip(color_budgets, results):
            reduced = result.reduced.reduced
            rows.append(
                {
                    "dataset": name,
                    "colors": budget,
                    "rows": reduced.n_rows,
                    "cols": reduced.n_cols,
                    "nnz": reduced.nnz,
                    "compression": lp.nnz / max(reduced.nnz, 1),
                    "rel_error": ratio_error(exact.objective, result.value),
                }
            )
    return rows
