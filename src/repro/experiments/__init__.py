"""Experiment drivers regenerating the paper's tables and figures."""

from repro.experiments.common import ExperimentRow, print_rows

__all__ = ["ExperimentRow", "print_rows"]
