"""Slim Graph-style lossy-compression evaluation harness.

Slim Graph (Besta et al., SC'19) argues that a lossy graph-compression
claim is only credible when it reports *accuracy per byte* (and per
second) against cheap sparsification baselines on real downstream
tasks.  This harness runs that comparison for quasi-stable coloring on
the paper's three pipeline tasks — max-flow, LP, and betweenness
centrality — against two standard baselines:

``quasi-stable``
    the compress-solve-lift pipeline (color budget chosen to hit the
    byte budget: ``k^2`` block weights + ``n`` labels);
``degree-sampling``
    keep each arc with probability proportional to
    ``1/sqrt(deg(u) * deg(v))`` (degree-weighted edge sampling),
    Horvitz-Thompson reweighting ``w/p`` keeps totals unbiased;
``spanner``
    a deterministic local filter in the spirit of spanner/backbone
    sparsifiers: keep the ``ceil(level * out_degree)`` strongest arcs
    of every node (weights unchanged).

Every scheme is scored by the same task-level error against the exact
solution on the uncompressed problem; ``accuracy = 1 / (1 + err)`` maps
that onto ``(0, 1]`` so accuracy-per-MB and accuracy-per-second are
comparable across tasks.  A failed solve (a sparsified LP can become
unbounded) scores accuracy 0 — the baseline's failure is part of the
comparison, not an excuse to drop the row.

Run directly for the JSON artifact the CI smoke job uploads::

    python -m repro.experiments.compression_harness --smoke --out out.json
"""

from __future__ import annotations

import math
import time
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.exceptions import LPError

__all__ = [
    "degree_weighted_sample",
    "spanner_sparsify",
    "sparsify_lp",
    "harness_rows",
]

SCHEMES = ("quasi-stable", "degree-sampling", "spanner")

#: task -> (dataset, default scale, smoke scale)
_PROBLEMS = {
    "maxflow": ("tsukuba0", 0.01, 0.003),
    "lp": ("qap15", 0.04, 0.015),
    "centrality": ("deezer", 0.015, 0.005),
}

_DEFAULT_LEVELS = (0.05, 0.15, 0.4)


# ----------------------------------------------------------------------
# sparsification baselines
# ----------------------------------------------------------------------
def _arc_arrays(graph):
    csr = graph.to_csr()
    n = csr.shape[0]
    src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(csr.indptr)
    )
    dst = csr.indices.astype(np.int64)
    weight = np.asarray(csr.data, dtype=np.float64)
    return n, src, dst, weight


def _rebuild(graph, n, src, dst, weight):
    from repro.graphs.digraph import WeightedDiGraph

    return WeightedDiGraph.from_arrays(
        src, dst, weight, n_nodes=n, directed=graph.directed
    )


def degree_weighted_sample(graph, level: float, seed: int = 0):
    """Keep ~``level`` of the arcs, biased against high-degree pairs.

    Inclusion probability is proportional to
    ``1/sqrt(deg(u) * deg(v))`` — redundant arcs inside dense
    neighborhoods go first, bridges survive — and every kept arc is
    reweighted by ``1/p`` so expected weighted degrees are preserved.
    """
    n, src, dst, weight = _arc_arrays(graph)
    if not src.size:
        return graph.copy()
    degree = (
        np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
    ).astype(np.float64)
    if not graph.directed:
        keep_canonical = src <= dst
        src, dst, weight = (
            src[keep_canonical], dst[keep_canonical],
            weight[keep_canonical],
        )
    score = 1.0 / np.sqrt(degree[src] * degree[dst])
    p = np.clip(level * src.size * score / score.sum(), 0.0, 1.0)
    rng = np.random.default_rng(seed)
    kept = rng.random(src.size) < p
    return _rebuild(
        graph, n, src[kept], dst[kept], weight[kept] / p[kept]
    )


def spanner_sparsify(graph, level: float):
    """Keep the ``ceil(level * out_degree)`` strongest arcs per node.

    Deterministic; weights are unchanged, so the sparsified graph is a
    subgraph (the spanner-style "keep the backbone" baseline).
    """
    n, src, dst, weight = _arc_arrays(graph)
    if not src.size:
        return graph.copy()
    if not graph.directed:
        keep_canonical = src <= dst
        src, dst, weight = (
            src[keep_canonical], dst[keep_canonical],
            weight[keep_canonical],
        )
    order = np.lexsort((-np.abs(weight), src))
    src, dst, weight = src[order], dst[order], weight[order]
    counts = np.bincount(src, minlength=n)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    rank = np.arange(src.size) - np.repeat(offsets[:-1], counts)
    quota = np.maximum(1, np.ceil(level * counts)).astype(np.int64)
    kept = rank < quota[src]
    return _rebuild(graph, n, src[kept], dst[kept], weight[kept])


def sparsify_lp(lp, scheme: str, level: float, seed: int = 0):
    """Apply a sparsification baseline to an LP's constraint matrix.

    The nonzeros of ``A`` are the arcs of its row-column bipartite
    graph; the same keep rules as the graph baselines apply, and the
    sparsified LP keeps ``b``/``c`` unchanged.
    """
    from repro.lp.model import LinearProgram

    coo = lp.a_matrix.tocoo()
    row = coo.row.astype(np.int64)
    col = coo.col.astype(np.int64)
    val = coo.data.astype(np.float64)
    if scheme == "degree-sampling":
        deg_row = np.bincount(row, minlength=lp.n_rows).astype(np.float64)
        deg_col = np.bincount(col, minlength=lp.n_cols).astype(np.float64)
        score = 1.0 / np.sqrt(deg_row[row] * deg_col[col])
        p = np.clip(level * row.size * score / score.sum(), 0.0, 1.0)
        rng = np.random.default_rng(seed)
        kept = rng.random(row.size) < p
        row, col, val = row[kept], col[kept], val[kept] / p[kept]
    elif scheme == "spanner":
        order = np.lexsort((-np.abs(val), row))
        row, col, val = row[order], col[order], val[order]
        counts = np.bincount(row, minlength=lp.n_rows)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        rank = np.arange(row.size) - np.repeat(offsets[:-1], counts)
        quota = np.maximum(1, np.ceil(level * counts)).astype(np.int64)
        kept = rank < quota[row]
        row, col, val = row[kept], col[kept], val[kept]
    else:
        raise ValueError(f"unknown sparsification scheme {scheme!r}")
    a_new = sp.csr_matrix(
        (val, (row, col)), shape=lp.a_matrix.shape
    )
    return LinearProgram(a_new, lp.b, lp.c, name=f"{lp.name}-{scheme}")


# ----------------------------------------------------------------------
# byte accounting
# ----------------------------------------------------------------------
def _index_bytes(n: int) -> int:
    return 4 if n <= np.iinfo(np.int32).max else 8


def _graph_bytes(n: int, arcs: int) -> int:
    """Resident bytes of an arc list: two index columns + one float64."""
    return int(arcs) * (2 * _index_bytes(n) + 8)


def _coloring_bytes(n: int, k: int) -> int:
    """Reduced representation: ``k x k`` block weights + per-node labels."""
    return k * k * 8 + n * 4


def _budget_colors(n: int, original_bytes: int, level: float) -> int:
    """Color budget whose reduced bytes approximate ``level`` of the
    original arc-list bytes."""
    budget = max(level * original_bytes - n * 4, 8.0)
    return max(4, int(math.sqrt(budget / 8.0)))


# ----------------------------------------------------------------------
# per-task drivers
# ----------------------------------------------------------------------
def _relative_error(value: float, exact: float) -> float:
    if not np.isfinite(value):
        return float("inf")
    return abs(value - exact) / max(abs(exact), 1e-12)


def _vector_error(scores: np.ndarray, exact: np.ndarray) -> float:
    return float(
        np.abs(scores - exact).sum() / max(np.abs(exact).sum(), 1e-12)
    )


def _accuracy(err: float) -> float:
    return 0.0 if not np.isfinite(err) else 1.0 / (1.0 + err)


def _run_quasi_stable(kind: str, task, n_colors: int, caches):
    """One compress-solve-lift pass; returns (err_fn_input, seconds).

    ``caches`` is the task-scoped ``(ColoringCache, ReducedSolveCache)``
    pair: successive levels extend one Rothko run instead of recoloring,
    and levels whose byte budget resolves to an already-solved
    checkpoint skip the solve outright.
    """
    from repro.pipeline import run_task

    coloring_cache, solve_cache = caches
    start = time.perf_counter()
    result = run_task(
        task, n_colors=n_colors, cache=coloring_cache,
        solve_cache=solve_cache,
    )
    elapsed = time.perf_counter() - start
    output = result.lifted if kind == "centrality" else result.value
    return output, result.n_colors, elapsed


def _task_rows(
    kind: str,
    problem,
    dataset: str,
    levels: Iterable[float],
    seed: int,
) -> list[dict]:
    from repro.centrality.brandes import betweenness_centrality
    from repro.flow.network import FlowNetwork, max_flow
    from repro.lp.solve import solve_lp
    from repro.pipeline import ColoringCache, ReducedSolveCache, task_for

    options = {"seed": seed} if kind == "centrality" else {}
    qs_task = task_for(kind, problem, **options)
    qs_caches = (ColoringCache(), ReducedSolveCache())

    if kind == "maxflow":
        graph = problem.graph
        source, sink = problem.source_index, problem.sink_index
        start = time.perf_counter()
        exact = float(max_flow(problem).value)
        exact_seconds = time.perf_counter() - start

        def solve_sparse(sparse_graph):
            network = FlowNetwork(sparse_graph, source, sink)
            return float(max_flow(network).value)

    elif kind == "lp":
        graph = None
        start = time.perf_counter()
        exact = float(solve_lp(problem).objective)
        exact_seconds = time.perf_counter() - start
    else:
        graph = problem
        start = time.perf_counter()
        exact = betweenness_centrality(problem)
        exact_seconds = time.perf_counter() - start

    if kind == "lp":
        n = problem.n_rows + problem.n_cols
        arcs = problem.nnz
    else:
        n = graph.n_nodes
        arcs = graph.n_arcs
    original_bytes = _graph_bytes(n, arcs)

    def error_of(output) -> float:
        if kind == "centrality":
            return _vector_error(np.asarray(output), exact)
        return _relative_error(float(output), float(exact))

    rows = [
        {
            "task": kind,
            "dataset": dataset,
            "scheme": "exact",
            "level": 1.0,
            "bytes": original_bytes,
            "seconds": round(exact_seconds, 4),
            "rel_err": 0.0,
            "accuracy": 1.0,
            "acc_per_mb": round(1.0 / (original_bytes / 1e6), 4),
            "acc_per_s": round(1.0 / max(exact_seconds, 1e-9), 4),
        }
    ]
    for level in levels:
        for scheme in SCHEMES:
            start = time.perf_counter()
            err: float
            colors = None
            try:
                if scheme == "quasi-stable":
                    budget = _budget_colors(n, original_bytes, level)
                    output, colors, _ = _run_quasi_stable(
                        kind, qs_task, budget, qs_caches
                    )
                    nbytes = _coloring_bytes(n, colors)
                    err = error_of(output)
                elif kind == "lp":
                    sparse_lp = sparsify_lp(problem, scheme, level, seed)
                    nbytes = _graph_bytes(n, sparse_lp.nnz)
                    err = error_of(solve_lp(sparse_lp).objective)
                else:
                    if scheme == "degree-sampling":
                        sparse = degree_weighted_sample(
                            graph, level, seed
                        )
                    else:
                        sparse = spanner_sparsify(graph, level)
                    nbytes = _graph_bytes(n, sparse.n_arcs)
                    if kind == "maxflow":
                        err = error_of(solve_sparse(sparse))
                    else:
                        err = _vector_error(
                            betweenness_centrality(sparse), exact
                        )
            except (LPError, ValueError) as exc:
                # An over-sparsified problem can stop being solvable
                # (unbounded LP, disconnected network) — that failure
                # IS the baseline's score, so record it as accuracy 0.
                nbytes = 0
                err = float("inf")
                rows_error = f"{type(exc).__name__}: {exc}"
            seconds = time.perf_counter() - start
            accuracy = _accuracy(err)
            row = {
                "task": kind,
                "dataset": dataset,
                "scheme": scheme,
                "level": level,
                "bytes": int(nbytes),
                "seconds": round(seconds, 4),
                "rel_err": (
                    round(err, 6) if np.isfinite(err) else "inf"
                ),
                "accuracy": round(accuracy, 4),
                "acc_per_mb": (
                    round(accuracy / (nbytes / 1e6), 4) if nbytes else 0.0
                ),
                "acc_per_s": round(accuracy / max(seconds, 1e-9), 4),
            }
            if colors is not None:
                row["colors"] = colors
            if not np.isfinite(err):
                row["error"] = rows_error if nbytes == 0 else "inf"
            rows.append(row)
    return rows


def harness_rows(
    tasks: Iterable[str] = ("maxflow", "lp", "centrality"),
    levels: Iterable[float] | None = None,
    scale: float | None = None,
    seed: int = 0,
    smoke: bool = False,
) -> list[dict]:
    """Accuracy-per-byte/-second rows for every (task, level, scheme).

    ``smoke=True`` shrinks the datasets and runs a single level — the
    CI configuration, a few seconds end to end.
    """
    from repro.datasets.registry import load_flow, load_graph, load_lp

    if levels is None:
        levels = (0.15,) if smoke else _DEFAULT_LEVELS
    loaders = {
        "maxflow": load_flow, "lp": load_lp, "centrality": load_graph,
    }
    rows: list[dict] = []
    for kind in tasks:
        if kind not in _PROBLEMS:
            raise ValueError(
                f"task must be one of {sorted(_PROBLEMS)}, got {kind!r}"
            )
        dataset, full_scale, smoke_scale = _PROBLEMS[kind]
        task_scale = scale if scale is not None else (
            smoke_scale if smoke else full_scale
        )
        problem = loaders[kind](dataset, scale=task_scale)
        rows.extend(_task_rows(kind, problem, dataset, levels, seed))
    return rows


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    from repro.utils.tables import render_rows

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tasks", default="maxflow,lp,centrality",
        help="comma-separated subset of maxflow,lp,centrality",
    )
    parser.add_argument(
        "--levels", default=None,
        help="comma-separated compression levels (fractions of the "
             "original arc-list bytes)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale override")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="small datasets, single level (CI mode)")
    parser.add_argument("--out", default=None,
                        help="also write the rows as JSON to this file")
    args = parser.parse_args(argv)

    tasks = tuple(part for part in args.tasks.split(",") if part)
    levels = (
        tuple(float(part) for part in args.levels.split(",") if part)
        if args.levels else None
    )
    rows = harness_rows(
        tasks=tasks,
        levels=levels,
        scale=args.scale,
        seed=args.seed,
        smoke=args.smoke,
    )
    print(
        render_rows(
            rows,
            title="Accuracy per byte/second: quasi-stable coloring vs "
                  "sparsification baselines",
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"smoke": args.smoke, "rows": rows}, handle, indent=2)
        print(f"rows written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
