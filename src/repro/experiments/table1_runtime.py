"""Table 1: runtime to reach a target approximation quality.

Top block — betweenness centrality: ours (quasi-stable color-pivot) vs
the Riondato–Kornaropoulos sampler vs exact Brandes; target is Spearman
correlation with the exact scores.

Bottom block — linear optimization: ours (reduced LP) vs early-stopping
the interior-point solver vs a full interior-point solve; target is the
ratio error of the objective.

"Runtime to achieve a target" is measured the way the paper does: run the
method at increasing budgets (colors / samples / iterations) and report
the end-to-end time of the first configuration meeting the target; a
method that never meets it within the budget ladder scores ``inf``
(rendered as the paper's "x" timeout).
"""

from __future__ import annotations

import time

from repro.centrality.approx import approx_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.centrality.sampling import riondato_kornaropoulos_betweenness
from repro.datasets.registry import load_graph, load_lp
from repro.lp.interior_point import early_stopping_solve, interior_point_solve
from repro.lp.reduction import approx_lp_opt
from repro.utils.stats import ratio_error, spearman_rho
from repro.utils.timing import time_call

CENTRALITY_TARGETS = (0.90, 0.95, 0.97)
LP_TARGETS = (3.0, 2.0, 1.5)


def _first_time_to_target(attempts) -> float:
    """First attempt's time meeting its target, else inf.

    ``attempts`` yields ``(seconds, met)`` pairs in increasing-budget
    order; evaluation cost is excluded by the callers (the paper times the
    approximation itself, not the quality measurement).
    """
    for seconds, met in attempts:
        if met:
            return seconds
    return float("inf")


def centrality_runtime_rows(
    datasets: tuple[str, ...] = ("astroph", "facebook", "deezer"),
    scale: float = 0.02,
    color_ladder: tuple[int, ...] = (10, 20, 40, 80, 160),
    sample_ladder: tuple[int, ...] = (100, 400, 1600, 6400),
    targets: tuple[float, ...] = CENTRALITY_TARGETS,
    seed: int = 0,
    engine: str = "arcstore",
) -> list[dict]:
    """Table 1 (top): ours vs Riondato–Kornaropoulos vs exact Brandes."""
    rows = []
    for name in datasets:
        graph = load_graph(name, scale=scale)
        exact, exact_seconds = time_call(
            betweenness_centrality, graph, engine=engine
        )

        ours_runs = []
        for budget in color_ladder:
            result = approx_betweenness(
                graph, n_colors=budget, seed=seed, engine=engine
            )
            rho = spearman_rho(exact, result.scores)
            ours_runs.append((result.total_seconds, rho))
        prior_runs = []
        for samples in sample_ladder:
            scores, seconds = time_call(
                riondato_kornaropoulos_betweenness,
                graph,
                n_samples=samples,
                seed=seed,
            )
            prior_runs.append((seconds, spearman_rho(exact, scores)))

        row = {"dataset": name, "exact_s": exact_seconds}
        for target in targets:
            row[f"ours_rho{target}"] = _first_time_to_target(
                (seconds, rho >= target) for seconds, rho in ours_runs
            )
            row[f"prior_rho{target}"] = _first_time_to_target(
                (seconds, rho >= target) for seconds, rho in prior_runs
            )
        rows.append(row)
    return rows


def lp_runtime_rows(
    datasets: tuple[str, ...] = ("qap15", "supportcase10", "ex10"),
    scale: float = 0.05,
    color_ladder: tuple[int, ...] = (8, 16, 32, 64, 128),
    targets: tuple[float, ...] = LP_TARGETS,
) -> list[dict]:
    """Table 1 (bottom): ours vs early-stopped IPM vs exact IPM."""
    rows = []
    for name in datasets:
        lp = load_lp(name, scale=scale)
        exact, exact_seconds = time_call(
            interior_point_solve, lp, 1e-8, 200
        )
        optimum = exact.objective

        ours_runs = []
        for budget in color_ladder:
            result = approx_lp_opt(lp, n_colors=budget, method="scipy")
            ours_runs.append(
                (result.total_seconds, ratio_error(optimum, result.value))
            )

        row = {"dataset": name, "exact_s": exact_seconds}
        for target in targets:
            row[f"ours_err{target}"] = _first_time_to_target(
                (seconds, err <= target) for seconds, err in ours_runs
            )
            start = time.perf_counter()
            stopped = early_stopping_solve(lp, target_ratio=target)
            prior_seconds = time.perf_counter() - start
            # Stopping early or converging outright both meet the target;
            # only an iteration-limited run that missed it scores inf.
            met = ratio_error(optimum, stopped.objective) <= target * 1.05
            row[f"prior_err{target}"] = prior_seconds if met else float("inf")
        rows.append(row)
    return rows
