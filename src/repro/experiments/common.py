"""Shared experiment plumbing: row records and table printing."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.utils.tables import render_rows

ExperimentRow = Mapping[str, Any]


def print_rows(
    rows: Sequence[ExperimentRow],
    title: str,
    columns: Sequence[str] | None = None,
) -> str:
    """Render and print experiment rows; returns the rendered text."""
    text = render_rows(rows, columns=columns, title=title)
    print(text)
    return text


def geometric_budgets(
    start: int, stop: int, steps: int
) -> list[int]:
    """Geometrically spaced color budgets in ``[start, stop]``."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if steps == 1:
        return [start]
    ratio = (stop / start) ** (1.0 / (steps - 1))
    budgets = sorted({max(start, round(start * ratio**i)) for i in range(steps)})
    budgets[-1] = stop
    return budgets
