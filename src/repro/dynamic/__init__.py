"""Streaming-update engine: quasi-stable colorings under graph churn.

:class:`DynamicColoring` maintains a coloring (and its degree/error
matrices) across edge insertions, deletions, and weight changes via
local repair, falling back to full Rothko recoloring past a drift
budget.  :class:`EdgeUpdate` is the update vocabulary; traces serialize
to plain text (see :mod:`repro.dynamic.updates`).
"""

from repro.dynamic.engine import DynamicColoring, DynamicStats
from repro.dynamic.updates import (
    EdgeUpdate,
    parse_update,
    read_updates,
    write_updates,
)

__all__ = [
    "DynamicColoring",
    "DynamicStats",
    "EdgeUpdate",
    "parse_update",
    "read_updates",
    "write_updates",
]
