"""Streaming graph updates: the vocabulary of the dynamic subsystem.

An :class:`EdgeUpdate` is one mutation of a :class:`WeightedDiGraph` —
an insertion, a deletion, or a weight change — expressed in node
*labels* so traces survive serialization and can be replayed against a
fresh copy of the graph.  Traces are plain text, one update per line::

    + u v [weight]     insert (default weight 1.0)
    - u v              delete
    ~ u v weight       reweight (set the weight; 0 deletes)

Lines starting with ``#`` and blank lines are ignored.  Node labels are
parsed as ints when possible so traces round-trip against graphs with
integer labels (every registry dataset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, TextIO

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.labels import coerce_label

INSERT = "insert"
DELETE = "delete"
REWEIGHT = "reweight"

_KIND_TO_OP = {INSERT: "+", DELETE: "-", REWEIGHT: "~"}
_OP_TO_KIND = {op: kind for kind, op in _KIND_TO_OP.items()}


@dataclass(frozen=True)
class EdgeUpdate:
    """One streaming mutation of an edge ``u -> v``."""

    kind: str
    u: Hashable
    v: Hashable
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_TO_OP:
            raise ValueError(
                f"kind must be one of {sorted(_KIND_TO_OP)}, got {self.kind!r}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def insert(cls, u: Hashable, v: Hashable, weight: float = 1.0) -> "EdgeUpdate":
        return cls(INSERT, u, v, float(weight))

    @classmethod
    def delete(cls, u: Hashable, v: Hashable) -> "EdgeUpdate":
        return cls(DELETE, u, v, 0.0)

    @classmethod
    def reweight(cls, u: Hashable, v: Hashable, weight: float) -> "EdgeUpdate":
        return cls(REWEIGHT, u, v, float(weight))

    # -- application ----------------------------------------------------
    def apply_to(self, graph: WeightedDiGraph) -> None:
        """Mutate ``graph`` in place (listeners fire as usual)."""
        if self.kind == DELETE:
            graph.remove_edge(self.u, self.v, missing_ok=True)
        else:
            # add_edge overwrites; weight 0 deletes (Sec. 3 convention).
            graph.add_edge(self.u, self.v, self.weight)

    # -- serialization --------------------------------------------------
    def to_line(self) -> str:
        op = _KIND_TO_OP[self.kind]
        if self.kind == DELETE:
            return f"{op} {self.u} {self.v}"
        return f"{op} {self.u} {self.v} {self.weight:g}"


def parse_update(line: str) -> EdgeUpdate | None:
    """Parse one trace line; returns ``None`` for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    op = parts[0]
    if op not in _OP_TO_KIND:
        raise GraphError(f"unknown update op {op!r} in line {line!r}")
    kind = _OP_TO_KIND[op]
    if kind == DELETE:
        if len(parts) != 3:
            raise GraphError(f"delete needs 'u v': {line!r}")
        return EdgeUpdate.delete(coerce_label(parts[1]), coerce_label(parts[2]))
    if kind == REWEIGHT:
        if len(parts) != 4:
            raise GraphError(f"reweight needs 'u v weight': {line!r}")
        return EdgeUpdate.reweight(
            coerce_label(parts[1]), coerce_label(parts[2]), float(parts[3])
        )
    if len(parts) not in (3, 4):
        raise GraphError(f"insert needs 'u v [weight]': {line!r}")
    weight = float(parts[3]) if len(parts) == 4 else 1.0
    return EdgeUpdate.insert(coerce_label(parts[1]), coerce_label(parts[2]), weight)


def read_updates(source: str | TextIO) -> Iterator[EdgeUpdate]:
    """Yield updates from a trace file path or an open text stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_updates(handle)
        return
    for line in source:
        update = parse_update(line)
        if update is not None:
            yield update


def write_updates(updates: Iterable[EdgeUpdate], target: str | TextIO) -> None:
    """Write a trace file (one line per update)."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            write_updates(updates, handle)
        return
    for update in updates:
        target.write(update.to_line() + "\n")
