"""Incremental maintenance of quasi-stable colorings under updates.

The paper's robustness results (Fig. 2) show that quasi-stable colorings
degrade *gracefully* under edge noise — a few extra colors absorb a few
extra edges.  :class:`DynamicColoring` exploits exactly that slack to
keep a coloring valid while the graph changes, without recoloring from
scratch:

1. **Patch** — an arc change ``u -> v`` with weight delta ``d`` only
   moves ``D_out[u, color(v)]`` and ``D_in[v, color(u)]``; both degree
   matrices are maintained incrementally in ``O(1)`` per arc event.
2. **Re-check** — only the touched color pair ``(color(u), color(v))``
   can newly violate the tolerance; untouched pairs keep their old block
   degrees, so the maintained invariant (max q-error <= tolerance) needs
   re-verification on a handful of pairs, not ``k^2``.
3. **Repair** — a violated pair re-enters the Rothko split rule
   (:func:`repro.core.rothko.split_eject_mask`) locally: the witnessing
   color is split, the two affected degree columns are rebuilt from the
   graph in ``O(nnz(column))``, and every pair involving a changed color
   is re-queued until the invariant holds again.
4. **Coarsen** — deletions can make colors mergeable again; repair ends
   with a bounded pass that merges color pairs whose join keeps every
   affected block within tolerance (the lattice direction Rothko never
   takes).
5. **Rebuild** — when accumulated churn or color drift exceeds a
   configurable budget, fall back to a full Rothko recoloring and adopt
   its state wholesale; local repair resumes from there.

The engine plugs into :class:`~repro.graphs.digraph.WeightedDiGraph`
mutation hooks (``add_listener``), so graphs mutated directly — not just
through :meth:`DynamicColoring.apply` — stay covered; repair is deferred
until the next :meth:`repair`, :meth:`apply`, or :meth:`snapshot`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import (
    color_degree_matrices,
    grouped_minmax_by_labels,
    relative_spread,
    scatter_add,
)
from repro.core.partition import Coloring
from repro.core.rothko import Rothko, split_eject_mask
from repro.dynamic.updates import EdgeUpdate
from repro.exceptions import ColoringError
from repro.obs import recorder as _obs
from repro.graphs.digraph import WeightedDiGraph

#: float slack for tolerance comparisons on incrementally-patched sums
_EPS = 1e-9


@dataclass
class DynamicStats:
    """Counters describing how much work maintenance did.

    ``splits + merges`` against ``rebuilds`` is the repair-vs-rebuild
    story the benchmarks report; ``repair_seconds`` excludes the seed
    coloring but includes budget-triggered rebuilds.
    """

    updates: int = 0  #: EdgeUpdates applied through apply()/apply_batch()
    arcs_changed: int = 0  #: arc-weight events seen (incl. direct mutations)
    nodes_added: int = 0
    repair_passes: int = 0
    pairs_checked: int = 0
    splits: int = 0
    merges: int = 0
    merge_tests: int = 0
    rebuilds: int = 0
    columns_refreshed: int = 0
    repair_seconds: float = 0.0
    rebuild_seconds: float = 0.0

    def as_row(self) -> dict:
        return {
            "updates": self.updates,
            "arcs": self.arcs_changed,
            "splits": self.splits,
            "merges": self.merges,
            "rebuilds": self.rebuilds,
            "pairs_checked": self.pairs_checked,
            "repair_s": self.repair_seconds,
            "rebuild_s": self.rebuild_seconds,
        }


@dataclass
class _PinState:
    """Never-split/never-merge classes (e.g. max-flow source and sink)."""

    labels: np.ndarray  # per-node pin group id, -1 = unpinned
    n_groups: int = 0
    anchors: list = field(default_factory=list)  # one member per group


class DynamicColoring:
    """Maintain a quasi-stable coloring of a mutating graph.

    Parameters
    ----------
    graph:
        A :class:`WeightedDiGraph` (sparse/dense adjacency is converted;
        converted graphs use integer labels ``0..n-1``).
    q_tolerance:
        The invariant to maintain: max q-error (absolute mode) or max
        relative error (relative mode) of the coloring stays at or below
        this value, exactly as the seed Rothko run achieves it.
    coloring:
        Optional starting partition.  The seed coloring is produced by a
        Rothko run *from* this partition (zero splits if it is already
        within tolerance), so special classes survive.
    frozen:
        Color ids of ``coloring`` that must never be split or merged.
        Requires ``coloring``.
    max_colors:
        Optional cap passed to every (re)coloring run; local repair also
        falls back to a rebuild when it would exceed the cap.  With a cap
        the tolerance is best-effort, exactly as in static Rothko.
    drift_budget:
        Fraction controlling the fallback to full recoloring: rebuild
        when arc churn since the last rebuild exceeds ``drift_budget *
        n_arcs``, or when repair has grown the color count more than
        ``drift_budget`` (relative) above the last rebuild's count.
    merge_attempts:
        Cap on coarsening tests per repair pass (each is ``O(n + |P| k)``).
    attach:
        Subscribe to the graph's mutation hooks so direct ``add_edge`` /
        ``remove_edge`` calls are tracked too.  Use :meth:`detach` (or a
        ``with`` block) to unsubscribe.
    backend:
        Kernel backend for the seed coloring and budget-triggered
        rebuilds (see :mod:`repro.core.backends`); the per-arc repair
        kernels dispatch through the process default regardless.
    """

    def __init__(
        self,
        graph,
        q_tolerance: float,
        coloring: Coloring | None = None,
        *,
        error_mode: str = "absolute",
        split_mean: str = "arithmetic",
        max_colors: int | None = None,
        drift_budget: float = 0.25,
        merge_attempts: int = 64,
        frozen: Iterable[int] = (),
        attach: bool = True,
        backend: str | None = None,
    ) -> None:
        if q_tolerance < 0:
            raise ValueError(f"q_tolerance must be non-negative, got {q_tolerance}")
        if drift_budget <= 0:
            raise ValueError(f"drift_budget must be positive, got {drift_budget}")
        if not isinstance(graph, WeightedDiGraph):
            graph = WeightedDiGraph.from_scipy(
                sp.csr_matrix(graph, dtype=np.float64), directed=True
            )
        frozen = tuple(frozen)
        if frozen and coloring is None:
            raise ColoringError("frozen color ids require an explicit coloring")
        self.graph = graph
        self.q_tolerance = float(q_tolerance)
        self.error_mode = error_mode
        self.split_mean = "geometric" if error_mode == "relative" else split_mean
        self.max_colors = max_colors
        self.drift_budget = float(drift_budget)
        self.merge_attempts = int(merge_attempts)
        self.backend = backend
        self.stats = DynamicStats()

        self.n = graph.n_nodes
        self._pins = self._build_pins(coloring, frozen)
        self._dirty: set[tuple[int, int]] = set()
        self._merge_candidates: set[int] = set()
        self._pending = False
        self._churn = 0
        self._attached = False

        self._seed(coloring, frozen)
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # seeding, rebuilding, state adoption
    # ------------------------------------------------------------------
    def _build_pins(self, coloring: Coloring | None, frozen: tuple) -> _PinState:
        pin_labels = np.full(self.n, -1, dtype=np.int64)
        pins = _PinState(labels=pin_labels)
        if not frozen:
            return pins
        assert coloring is not None
        bad = [c for c in frozen if not 0 <= c < coloring.n_colors]
        if bad:
            raise ColoringError(f"frozen color ids out of range: {bad}")
        for pin_id, color in enumerate(sorted(set(frozen))):
            members = coloring.members(color)
            pin_labels[members] = pin_id
            pins.anchors.append(int(members[0]))
            pins.n_groups += 1
        return pins

    def _pin_initial(self) -> tuple[Coloring | None, tuple[int, ...]]:
        """Rebuild starting point: pinned groups as classes, rest lumped."""
        if self._pins.n_groups == 0:
            return None, ()
        raw = np.where(
            self._pins.labels[: self.n] < 0,
            self._pins.n_groups,
            self._pins.labels[: self.n],
        )
        initial = Coloring(raw)
        frozen_ids = tuple(
            initial.color_of(anchor) for anchor in self._pins.anchors
        )
        return initial, frozen_ids

    def _seed(self, coloring: Coloring | None, frozen: tuple) -> None:
        if coloring is not None and coloring.n != self.n:
            raise ColoringError(
                f"coloring has {coloring.n} nodes, graph has {self.n}"
            )
        self._adopt(self._run_rothko(coloring, frozen))

    def _run_rothko(
        self, initial: Coloring | None, frozen: tuple[int, ...]
    ) -> Rothko:
        engine = Rothko(
            self.graph,
            initial=initial,
            split_mean=self.split_mean,
            frozen=frozen,
            error_mode=self.error_mode,
            backend=self.backend,
        )
        engine.run(max_colors=self.max_colors, q_tolerance=self.q_tolerance)
        return engine

    def _adopt(self, engine: Rothko) -> None:
        """Take over a static engine's labels and members, then build the
        dense degree matrices from the graph.

        The memory-flat static engine keeps no degree matrices at all;
        this engine patches per-node entries on every arc event, so it
        rebuilds its own node-major ``n x k`` storage with one ``O(m)``
        bincount pass over the CSR/CSC snapshots.
        """
        self.k = engine.k
        self._labels_buf = engine.labels.copy()
        self._members: list[np.ndarray] = [m.copy() for m in engine._members]
        capacity = max(16, 2 * self.k)
        self._d_out = np.zeros((engine.n, capacity), dtype=np.float64)
        self._d_in = np.zeros((engine.n, capacity), dtype=np.float64)
        d_out, d_in = color_degree_matrices(
            self.graph.to_csr(), self._labels_buf, self.k
        )
        self._d_out[:, : self.k] = d_out
        self._d_in[:, : self.k] = d_in
        self._row_capacity = engine.n
        self._color_pin = [
            int(self._pins.labels[int(members[0])]) if members.size else -1
            for members in self._members
        ]
        self._baseline_k = self.k
        self._churn = 0
        self._dirty.clear()
        self._merge_candidates.clear()
        self._pending = False

    def _rebuild(self) -> None:
        start = time.perf_counter()
        initial, frozen_ids = self._pin_initial()
        self._adopt(self._run_rothko(initial, frozen_ids))
        self.stats.rebuilds += 1
        _obs._active.count("dynamic.updates.rebuild")
        self.stats.rebuild_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # hook plumbing
    # ------------------------------------------------------------------
    def attach(self) -> None:
        if not self._attached:
            self.graph.add_listener(self)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.graph.remove_listener(self)
            self._attached = False

    def __enter__(self) -> "DynamicColoring":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    @property
    def labels(self) -> np.ndarray:
        """Current (non-canonical) label array, one entry per node."""
        return self._labels_buf[: self.n]

    def on_node_added(self, index: int) -> None:
        """Hook: a new node starts as its own singleton color."""
        if index < self.n:
            return
        self._grow_rows(index + 1)
        self.n = index + 1
        color = self._new_color(np.array([index], dtype=np.int64), pin=-1)
        self._labels_buf[index] = color
        self._pins.labels[index] = -1
        # A fresh node has no edges: its row and column are all zero, so
        # the invariant still holds; just offer the color for coarsening.
        self._merge_candidates.add(color)
        self.stats.nodes_added += 1
        self._pending = True

    def on_arc_changed(self, ui: int, vi: int, old: float, new: float) -> None:
        """Hook: patch the degree matrices and mark the touched pair."""
        delta = new - old
        cu = int(self._labels_buf[ui])
        cv = int(self._labels_buf[vi])
        self._d_out[ui, cv] += delta
        self._d_in[vi, cu] += delta
        self._dirty.add((cu, cv))
        if delta < 0:
            # Deletions create coarsening opportunities.
            self._merge_candidates.update((cu, cv))
        self._churn += 1
        self.stats.arcs_changed += 1
        self._pending = True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def apply(self, update: EdgeUpdate) -> DynamicStats:
        """Apply one update to the graph and repair immediately."""
        self._apply_mutation(update)
        self.stats.updates += 1
        self.repair()
        return self.stats

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> DynamicStats:
        """Apply a batch of updates, then repair once."""
        count = 0
        for update in updates:
            self._apply_mutation(update)
            count += 1
        self.stats.updates += count
        self.repair()
        return self.stats

    def _apply_mutation(self, update: EdgeUpdate) -> None:
        if self._attached:
            update.apply_to(self.graph)
            return
        # Detached engines still track updates routed through apply().
        self.graph.add_listener(self)
        try:
            update.apply_to(self.graph)
        finally:
            self.graph.remove_listener(self)

    def snapshot(self) -> Coloring:
        """Repair if needed, then return an immutable canonical coloring."""
        self.repair()
        return Coloring(self.labels.copy())

    def max_q_err(self) -> float:
        """Current max (absolute or relative) error from the maintained
        degree matrices — ``O(n k)``, no graph traversal."""
        if self.k == 0 or self.n == 0:
            return 0.0
        upper_out, lower_out = self._grouped_minmax(self._d_out[: self.n, : self.k])
        upper_in, lower_in = self._grouped_minmax(self._d_in[: self.n, : self.k])
        out_err = self._spread(upper_out, lower_out)
        in_err = self._spread(upper_in, lower_in)
        return float(max(out_err.max(initial=0.0), in_err.max(initial=0.0)))

    def repair(self) -> DynamicStats:
        """Restore the tolerance invariant after pending mutations."""
        if not self._pending:
            return self.stats
        start = time.perf_counter()
        self.stats.repair_passes += 1
        if self._churn > self.drift_budget * max(self.graph.n_arcs, 16):
            self._rebuild()
        else:
            hit_cap = self._local_repair()
            self._coarsen()
            drift = self.k - self._baseline_k
            if hit_cap or drift > max(1.0, self.drift_budget * self._baseline_k):
                self._rebuild()
        self._pending = False
        self._dirty.clear()
        self.stats.repair_seconds += time.perf_counter() - start
        return self.stats

    # ------------------------------------------------------------------
    # local repair: split loop over dirty pairs
    # ------------------------------------------------------------------
    def _spread(self, upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
        if self.error_mode == "absolute":
            return upper - lower
        return relative_spread(upper, lower)

    def _pair_spread(self, values: np.ndarray) -> float:
        if values.size == 0:
            return 0.0
        upper = float(values.max())
        lower = float(values.min())
        return float(
            self._spread(np.array([upper]), np.array([lower]))[0]
        )

    def _grouped_minmax(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return grouped_minmax_by_labels(values, self.labels, self.k)

    def _local_repair(self) -> bool:
        """Drain the dirty-pair worklist; returns True when the color cap
        stopped repair before the invariant was restored."""
        worklist = list(self._dirty)
        queued = set(self._dirty)
        self._dirty.clear()
        cap = self.max_colors if self.max_colors is not None else self.n
        tolerance = self.q_tolerance + _EPS
        while worklist:
            pair = worklist.pop()
            queued.discard(pair)
            i, j = pair
            self.stats.pairs_checked += 1
            # Outgoing direction: spread of w(x, P_j) over x in P_i.
            out_values = self._d_out[self._members[i], j]
            if self._pair_spread(out_values) > tolerance:
                if self.k >= cap:
                    return True
                # A pinned color refuses the split (best-effort there);
                # the in-direction below may still be repairable.
                self._split_color(i, out_values, worklist, queued)
            # Membership of i may have changed; derive the in-direction
            # values from the updated members.
            in_values = self._d_in[self._members[j], i]
            if self._pair_spread(in_values) > tolerance:
                if self.k >= cap:
                    return True
                self._split_color(j, in_values, worklist, queued)
        return False

    def _split_color(
        self,
        color: int,
        degrees: np.ndarray,
        worklist: list,
        queued: set,
    ) -> bool:
        """Split ``color`` at the Rothko threshold; False when pinned."""
        if self._color_pin[color] >= 0:
            return False  # frozen: tolerance is best-effort here
        members = self._members[color]
        eject_mask = split_eject_mask(
            degrees, self.split_mean, relative=self.error_mode == "relative"
        )
        retain = members[~eject_mask]
        eject = members[eject_mask]
        new_color = self._new_color(eject, pin=self._color_pin[color])
        self._members[color] = retain
        self._labels_buf[eject] = new_color
        self._refresh_color(new_color)
        # Old column = old contributions minus what the ejected members
        # took with them; cheaper than re-scanning the retained members.
        n = self.n
        self._d_out[:n, color] -= self._d_out[:n, new_color]
        self._d_in[:n, color] -= self._d_in[:n, new_color]
        self.stats.splits += 1
        _obs._active.count("dynamic.updates.split")
        self._mark_color_pairs((color, new_color), worklist, queued)
        return True

    def _mark_color_pairs(
        self, colors: Sequence[int], worklist: list, queued: set
    ) -> None:
        """Queue every ordered pair involving the given colors."""
        for s in colors:
            for c in range(self.k):
                for pair in ((s, c), (c, s)):
                    if pair not in queued:
                        queued.add(pair)
                        worklist.append(pair)

    def _new_color(self, members: np.ndarray, pin: int) -> int:
        color = self.k
        self._grow_cols(color + 1)
        self.k += 1
        self._members.append(members)
        self._color_pin.append(pin)
        n = self.n
        self._d_out[:n, color] = 0.0
        self._d_in[:n, color] = 0.0
        return color

    def _refresh_color(self, color: int) -> None:
        """Rebuild both degree columns for one color from the live graph.

        The members' neighborhoods are gathered into flat index/weight
        arrays and accumulated with the shared
        :func:`repro.core.kernels.scatter_add` bincount kernel —
        ``O(nnz(members))`` with no per-edge Python arithmetic.
        """
        n = self.n
        members = self._members[color]
        self._d_out[:n, color] = self._gathered_column(
            members, self.graph.in_items
        )
        self._d_in[:n, color] = self._gathered_column(
            members, self.graph.out_items
        )
        self.stats.columns_refreshed += 2

    def _gathered_column(self, members: np.ndarray, neighbors_of) -> np.ndarray:
        """One degree-matrix column: total weight between each node and
        the member set, accumulated via the shared bincount kernel."""
        index_chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        for v in members.tolist():
            items = neighbors_of(v)
            if items:
                index_chunks.append(
                    np.fromiter(items.keys(), dtype=np.int64, count=len(items))
                )
                weight_chunks.append(
                    np.fromiter(
                        items.values(), dtype=np.float64, count=len(items)
                    )
                )
        if not index_chunks:
            return np.zeros(self.n, dtype=np.float64)
        return scatter_add(
            np.concatenate(index_chunks),
            np.concatenate(weight_chunks),
            self.n,
        )

    # ------------------------------------------------------------------
    # coarsening: bounded merge pass over the lattice
    # ------------------------------------------------------------------
    def _coarsen(self) -> None:
        attempts = 0
        merged_any = True
        while merged_any and attempts < self.merge_attempts:
            merged_any = False
            for a in sorted(self._merge_candidates):
                if a >= self.k or self._color_pin[a] >= 0:
                    self._merge_candidates.discard(a)
                    continue
                for b in range(self.k):
                    if b == a or self._color_pin[b] >= 0:
                        continue
                    attempts += 1
                    self.stats.merge_tests += 1
                    lo, hi = (a, b) if a < b else (b, a)
                    if self._merge_error(lo, hi) <= self.q_tolerance + _EPS:
                        self._merge(lo, hi)
                        self.stats.merges += 1
                        _obs._active.count("dynamic.updates.merge")
                        merged_any = True
                        break
                    if attempts >= self.merge_attempts:
                        break
                if merged_any or attempts >= self.merge_attempts:
                    break
        self._merge_candidates.clear()

    def _merge_error(self, a: int, b: int) -> float:
        """Max error among the pairs a merge of ``a`` and ``b`` affects.

        All other pairs keep their exact block degrees, so the merged
        coloring is within tolerance iff this value is.
        """
        n, k = self.n, self.k
        rows = np.concatenate([self._members[a], self._members[b]])
        merged_out = self._d_out[:n, a] + self._d_out[:n, b]
        merged_in = self._d_in[:n, a] + self._d_in[:n, b]

        # Row blocks: the merged class against every color (merged column
        # substituted in place of a, column b dropped).
        out_block = self._d_out[rows][:, :k]
        in_block = self._d_in[rows][:, :k]
        out_block[:, a] = merged_out[rows]
        in_block[:, a] = merged_in[rows]
        keep = np.arange(k) != b
        out_block = out_block[:, keep]
        in_block = in_block[:, keep]
        row_err = max(
            float(self._spread(out_block.max(axis=0), out_block.min(axis=0)).max()),
            float(self._spread(in_block.max(axis=0), in_block.min(axis=0)).max()),
        )

        # Column direction: every class's spread over the merged column.
        # (Classes a and b appear as subsets of the merged class here;
        # their spread is dominated by the row-block check above.)
        upper_out, lower_out = self._grouped_minmax(merged_out)
        upper_in, lower_in = self._grouped_minmax(merged_in)
        col_err = max(
            float(self._spread(upper_out, lower_out).max()),
            float(self._spread(upper_in, lower_in).max()),
        )
        return max(row_err, col_err)

    def _merge(self, a: int, b: int) -> None:
        """Merge color ``b`` into ``a`` (the lattice join of the pairing)."""
        n = self.n
        self._labels_buf[self._members[b]] = a
        self._members[a] = np.concatenate([self._members[a], self._members[b]])
        self._d_out[:n, a] += self._d_out[:n, b]
        self._d_in[:n, a] += self._d_in[:n, b]
        self._swap_remove(b)

    def _swap_remove(self, color: int) -> None:
        """Drop ``color`` keeping ids contiguous (move the last id down)."""
        last = self.k - 1
        n = self.n
        if color != last:
            self._labels_buf[self._members[last]] = color
            self._members[color] = self._members[last]
            self._d_out[:n, color] = self._d_out[:n, last]
            self._d_in[:n, color] = self._d_in[:n, last]
            self._color_pin[color] = self._color_pin[last]
            if last in self._merge_candidates:
                self._merge_candidates.discard(last)
                self._merge_candidates.add(color)
            else:
                self._merge_candidates.discard(color)
        else:
            self._merge_candidates.discard(color)
        self._members.pop()
        self._color_pin.pop()
        self._d_out[:n, last] = 0.0
        self._d_in[:n, last] = 0.0
        self.k -= 1

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------
    def _grow_cols(self, needed: int) -> None:
        capacity = self._d_out.shape[1]
        if needed <= capacity:
            return
        new_capacity = max(2 * capacity, needed)
        for name in ("_d_out", "_d_in"):
            old = getattr(self, name)
            grown = np.zeros((self._row_capacity, new_capacity), dtype=np.float64)
            grown[:, :capacity] = old
            setattr(self, name, grown)

    def _grow_rows(self, needed: int) -> None:
        if needed <= self._row_capacity:
            # Label/pin buffers are exact-size; extend them regardless.
            self._extend_label_buffers(needed)
            return
        new_capacity = max(2 * self._row_capacity, needed)
        cols = self._d_out.shape[1]
        for name in ("_d_out", "_d_in"):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, cols), dtype=np.float64)
            grown[: self._row_capacity] = old
            setattr(self, name, grown)
        self._row_capacity = new_capacity
        self._extend_label_buffers(needed)

    def _extend_label_buffers(self, needed: int) -> None:
        if self._labels_buf.size < needed:
            extra = needed - self._labels_buf.size
            self._labels_buf = np.concatenate(
                [self._labels_buf, np.zeros(extra, dtype=np.int64)]
            )
        if self._pins.labels.size < needed:
            extra = needed - self._pins.labels.size
            self._pins.labels = np.concatenate(
                [self._pins.labels, np.full(extra, -1, dtype=np.int64)]
            )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def verify_consistency(self, atol: float = 1e-6) -> None:
        """Recompute the degree matrices from the graph and compare.

        Raises :class:`ColoringError` on divergence — used by tests to
        certify the incremental patches against ground truth.
        """
        n, k = self.n, self.k
        labels = self.labels
        if sorted(np.unique(labels).tolist()) != list(range(k)):
            raise ColoringError("color ids are not contiguous")
        for color, members in enumerate(self._members):
            if not np.array_equal(np.sort(members), np.flatnonzero(labels == color)):
                raise ColoringError(f"member list of color {color} is stale")
        csr = self.graph.to_csr()
        d_out, d_in = color_degree_matrices(csr, labels, k)
        if not np.allclose(self._d_out[:n, :k], d_out, atol=atol):
            raise ColoringError("maintained D_out diverged from the graph")
        if not np.allclose(self._d_in[:n, :k], d_in, atol=atol):
            raise ColoringError("maintained D_in diverged from the graph")

    def __repr__(self) -> str:
        return (
            f"<DynamicColoring n={self.n} k={self.k} "
            f"tol={self.q_tolerance:g} splits={self.stats.splits} "
            f"merges={self.stats.merges} rebuilds={self.stats.rebuilds}>"
        )
