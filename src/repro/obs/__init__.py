"""Zero-dependency observability: tracing, metrics, exporters.

One subsystem answers "where did the time go and what did the engines
do" across the whole compress–solve–lift stack:

* **Spans** (:mod:`repro.obs.trace`) — nested, wall+CPU-timed sections
  with attributes: ``with obs.trace.span("rothko.split", witness=w):``.
* **Metrics** (:mod:`repro.obs.metrics`) — named counters, gauges, and
  fixed-bucket histograms: ``obs.count("rothko.splits")``,
  ``obs.gauge("rothko.max_q_err", q)``,
  ``obs.observe("pipeline.checkpoint_s", dt)``.
* **Exporters** (:mod:`repro.obs.export`) — JSONL trace/metric dumps
  and per-span-name count/total/p50/p99 summaries (the
  ``repro profile`` output, also embedded in benchmark results JSON).

Instrumentation is **on by default and off by default**: the calls are
always in the code, but they route to a process-wide
:class:`NullRecorder` whose every operation is a no-op — enabling
tracing is installing a :class:`Recorder` via :func:`set_recorder` or
the scoped :func:`recording` context manager, no re-plumbing:

>>> from repro import obs
>>> with obs.recording() as rec:
...     with obs.trace.span("example", size=3):
...         obs.count("example.events")
>>> rec.spans[0].name, rec.snapshot()["counters"]["example.events"]
('example', 1)

Everything here is standard library only; nothing outside this package
may import anything heavier through it.
"""

from __future__ import annotations

from repro.obs import export, metrics, trace
from repro.obs import recorder as _recorder_mod
from repro.obs.export import (
    aggregate_spans,
    render_summary,
    root_coverage,
    summary_rows,
    write_jsonl,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
    active_recorder,
    recording,
    set_recorder,
)
from repro.obs.trace import current_span, span

__all__ = [
    "trace",
    "metrics",
    "export",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_BUCKETS",
    "active_recorder",
    "set_recorder",
    "recording",
    "span",
    "current_span",
    "count",
    "gauge",
    "observe",
    "enabled",
    "aggregate_spans",
    "summary_rows",
    "render_summary",
    "root_coverage",
    "write_jsonl",
]


def count(name: str, value: float = 1) -> None:
    """Increment counter ``name`` on the active recorder."""
    _recorder_mod._active.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active recorder."""
    _recorder_mod._active.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the active recorder."""
    _recorder_mod._active.observe(name, value)


def enabled() -> bool:
    """True when a real recorder is installed (tracing is on)."""
    return _recorder_mod._active.enabled
