"""Named counters, gauges, and fixed-bucket histograms.

The registry is deliberately primitive: three dicts keyed by metric
name, no labels, no exposition format — just enough to answer "how many
splits / relabels / cache hits did this run perform" and "how were the
checkpoint latencies distributed", snapshot-able to a plain dict that
``json.dumps`` accepts as-is (the shape the benchmark results JSON and
the JSONL exporter embed).

The module-level helpers instrumented code actually calls
(``obs.count`` / ``obs.gauge`` / ``obs.observe``) live in
:mod:`repro.obs` and route through the active recorder, so hot paths
stay recorder-agnostic and cost near-nothing while the null recorder is
installed.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]

#: default histogram bucket upper bounds: log-spaced from 100 us to
#: 100 s, a natural range for the per-checkpoint / per-phase latencies
#: the pipeline observes (values above the last edge land in +inf)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
    100.0,
)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/min/max.

    Bucket ``i`` counts observations ``<= bounds[i]``; one implicit
    overflow bucket catches the rest.  Quantiles are estimated from the
    bucket counts (upper-bound rule), which is exactly as much precision
    as a fixed layout can honestly claim.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return float("nan")
        rank = q * self.total
        seen = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return bound
        return self.max

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
            "p50": self.quantile(0.5) if self.total else None,
            "p99": self.quantile(0.99) if self.total else None,
        }


class MetricsRegistry:
    """Mutable bag of named counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self._gauges[name] = value

    def observe(
        self, name: str, value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``.

        ``buckets`` only applies on first touch; later observations
        reuse the histogram's existing layout.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(buckets)
        histogram.observe(value)

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram_for(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict, json-serializable view of every metric."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self._histograms.items()
            },
        }
