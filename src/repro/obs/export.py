"""Exporters: JSONL trace dumps and aggregated span summaries.

Two consumers, two shapes:

* :func:`write_jsonl` streams one json object per line — a ``meta``
  header, every finished span (nested via ``parent_id``), and one
  ``metric`` row per counter/gauge/histogram — the format
  ``repro profile`` and ``--trace-out`` emit and tests replay.
* :func:`aggregate_spans` folds spans into a per-name table
  (count / total wall / p50 / p99 / CPU), the compact view printed
  after a profiled run and embedded in the benchmark results JSON.

Percentiles here are exact (computed from the recorded durations, not
histogram buckets): a trace holds every span, so there is nothing to
estimate.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence, TextIO

from repro.obs.recorder import Recorder, SpanRecord

__all__ = [
    "aggregate_spans",
    "root_coverage",
    "summary_rows",
    "render_summary",
    "write_jsonl",
]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def aggregate_spans(
    spans: Iterable[SpanRecord],
) -> dict[str, dict[str, float]]:
    """Per-span-name summary: count, total/p50/p99 wall, total CPU."""
    durations: dict[str, list[float]] = {}
    cpu: dict[str, float] = {}
    errors: dict[str, int] = {}
    for record in spans:
        durations.setdefault(record.name, []).append(record.wall_seconds)
        cpu[record.name] = cpu.get(record.name, 0.0) + record.cpu_seconds
        if record.status != "ok":
            errors[record.name] = errors.get(record.name, 0) + 1
    summary: dict[str, dict[str, float]] = {}
    for name, walls in durations.items():
        walls.sort()
        summary[name] = {
            "count": len(walls),
            "total_s": sum(walls),
            "p50_s": _percentile(walls, 0.50),
            "p99_s": _percentile(walls, 0.99),
            "cpu_s": cpu[name],
        }
        if errors.get(name):
            summary[name]["errors"] = errors[name]
    return summary


def root_coverage(spans: Sequence[SpanRecord]) -> tuple[float, float]:
    """``(root_wall_s, fraction)`` of the root span's wall time covered
    by its direct children.

    The root is the longest parentless span; coverage near 1.0 means the
    instrumentation accounts for essentially all of the run (the
    acceptance bar for ``repro profile``).  Returns ``(0.0, 0.0)`` when
    the trace has no parentless span.
    """
    roots = [record for record in spans if record.parent_id is None]
    if not roots:
        return 0.0, 0.0
    root = max(roots, key=lambda record: record.wall_seconds)
    child_wall = sum(
        record.wall_seconds
        for record in spans
        if record.parent_id == root.span_id
    )
    if root.wall_seconds <= 0.0:
        return 0.0, 0.0
    return root.wall_seconds, min(child_wall / root.wall_seconds, 1.0)


def summary_rows(spans: Sequence[SpanRecord]) -> list[dict[str, Any]]:
    """Aggregate spans into printable rows, largest total first."""
    summary = aggregate_spans(spans)
    rows = [
        {
            "span": name,
            "count": int(stats["count"]),
            "total_s": stats["total_s"],
            "p50_ms": stats["p50_s"] * 1000.0,
            "p99_ms": stats["p99_s"] * 1000.0,
            "cpu_s": stats["cpu_s"],
        }
        for name, stats in summary.items()
    ]
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def render_summary(recorder: Recorder, title: str = "trace summary") -> str:
    """Human-readable per-span-name table plus the headline counters."""
    from repro.utils.tables import render_rows

    parts = []
    if recorder.spans:
        parts.append(render_rows(summary_rows(recorder.spans), title=title))
        root_wall, coverage = root_coverage(recorder.spans)
        if root_wall:
            parts.append(
                f"root span: {root_wall:.3f}s wall, "
                f"{coverage:.0%} covered by direct child spans"
            )
    counters = recorder.snapshot()["counters"]
    if counters:
        rendered = ", ".join(
            f"{name}={counters[name]:g}" for name in sorted(counters)
        )
        parts.append(f"counters: {rendered}")
    return "\n".join(parts) if parts else "(no spans or metrics recorded)"


def write_jsonl(recorder: Recorder, destination: str | TextIO) -> int:
    """Dump the recorder's trace and metrics as JSONL; returns the line
    count.  Attributes that are not json-native are stringified rather
    than rejected (a trace dump must never crash the traced run)."""
    if hasattr(destination, "write"):
        return _write_jsonl_handle(recorder, destination)
    with open(destination, "w", encoding="utf-8") as handle:
        return _write_jsonl_handle(recorder, handle)


def _write_jsonl_handle(recorder: Recorder, handle: TextIO) -> int:
    def dump(obj: dict[str, Any]) -> None:
        handle.write(json.dumps(obj, default=str) + "\n")

    snapshot = recorder.snapshot()
    lines = 1
    dump(
        {
            "type": "meta",
            "version": 1,
            "spans": len(recorder.spans),
            "counters": len(snapshot["counters"]),
            "gauges": len(snapshot["gauges"]),
            "histograms": len(snapshot["histograms"]),
        }
    )
    for record in recorder.spans:
        row = record.as_dict()
        # Export start offsets relative to the recorder's epoch: stable
        # across runs and immune to perf_counter's arbitrary origin.
        row["start_s"] = row["start_s"] - recorder.epoch
        dump(row)
        lines += 1
    for kind in ("counters", "gauges"):
        for name, value in snapshot[kind].items():
            dump({"type": "metric", "kind": kind[:-1], "name": name,
                  "value": value})
            lines += 1
    for name, histogram in snapshot["histograms"].items():
        dump({"type": "metric", "kind": "histogram", "name": name,
              **histogram})
        lines += 1
    return lines
