"""Structured tracing entry points.

``trace.span("rothko.split", color=c)`` is the one call instrumented
code makes: it opens a context-managed span on whatever recorder is
active.  Under the default :class:`~repro.obs.recorder.NullRecorder`
the returned handle is a shared no-op object, so leaving spans in hot
loops is effectively free; under a real recorder spans capture wall and
CPU time, nest via a thread-local stack, and carry arbitrary
json-serializable attributes (add more mid-span with ``handle.set()``).
"""

from __future__ import annotations

from typing import Any

from repro.obs import recorder as _recorder

__all__ = ["span", "current_span"]


def span(name: str, **attrs: Any):
    """Open a span named ``name`` on the active recorder.

    Usage::

        with trace.span("rothko.split", witness=witness) as handle:
            ...
            handle.set(q_err=q_err)
    """
    return _recorder._active.span(name, **attrs)


def current_span():
    """The innermost live span on this thread (None when untraced)."""
    return _recorder._active.current_span()
