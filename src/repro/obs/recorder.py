"""Span recording: the tracer's data model and the recorder swap point.

The observability layer has exactly one piece of mutable global state —
the *active recorder* — and two implementations of it:

* :class:`Recorder` keeps finished :class:`SpanRecord` rows and a
  :class:`~repro.obs.metrics.MetricsRegistry`; spans carry wall *and*
  CPU time, attributes, and a parent id from a thread-local active-span
  stack, so traces reconstruct the full nesting.
* :class:`NullRecorder` (the default) turns every call into a no-op:
  ``span()`` hands back one shared, attribute-free context manager and
  the metric methods return immediately, so instrumentation left in hot
  loops costs a couple of attribute lookups and nothing else.

Instrumented code never imports a concrete recorder; it calls the
module-level helpers in :mod:`repro.obs.trace` / :mod:`repro.obs.
metrics`, which read the active recorder at call time.  Enabling
tracing is therefore one :func:`set_recorder` (or the scoped
:func:`recording` context manager) — no re-plumbing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "active_recorder",
    "set_recorder",
    "recording",
]


class SpanRecord:
    """One finished span: timing, nesting, attributes, outcome."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread_id",
        "start_wall",
        "end_wall",
        "cpu_seconds",
        "attrs",
        "status",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        thread_id: int,
        start_wall: float,
        end_wall: float,
        cpu_seconds: float,
        attrs: dict[str, Any],
        status: str,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start_wall = start_wall
        self.end_wall = end_wall
        self.cpu_seconds = cpu_seconds
        self.attrs = attrs
        self.status = status

    @property
    def wall_seconds(self) -> float:
        return self.end_wall - self.start_wall

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (the JSONL exporter's row shape)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_s": self.start_wall,
            "wall_s": self.wall_seconds,
            "cpu_s": self.cpu_seconds,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, wall={self.wall_seconds:.6f}s, "
            f"status={self.status!r})"
        )


class _SpanHandle:
    """Context manager for one live span of a :class:`Recorder`.

    Timing starts at ``__enter__`` (not construction) so building the
    handle inside a ``with`` statement costs the span nothing.  Extra
    attributes can be attached mid-span via :meth:`set`; an exception
    propagating through marks ``status="error"`` but the span always
    closes and always pops exactly itself off the stack.
    """

    __slots__ = (
        "_recorder",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(
        self, recorder: "Recorder", name: str, attrs: dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: int | None = None
        self._start_wall = 0.0
        self._start_cpu = 0.0

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach or overwrite span attributes; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        recorder = self._recorder
        stack = recorder._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = recorder._next_id()
        stack.append(self)
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_cpu = time.process_time()
        end_wall = time.perf_counter()
        stack = self._recorder._stack()
        # Unwind to *this* span even if an inner span leaked (e.g. a
        # generator holding one open was dropped): nesting stays sound.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        self._recorder._finish(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread_id=threading.get_ident(),
                start_wall=self._start_wall,
                end_wall=end_wall,
                cpu_seconds=end_cpu - self._start_cpu,
                attrs=self.attrs,
                status="ok" if exc_type is None else "error",
            )
        )
        return False


class Recorder:
    """Collects finished spans and metrics for one profiled run.

    Thread-safe: the active-span stack is thread-local (concurrent
    threads nest independently) and finished spans append under a lock.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._id = 0
        #: wall-clock origin, so exported start offsets are relative
        self.epoch = time.perf_counter()

    # -- span plumbing --------------------------------------------------
    def _stack(self) -> list[_SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    # -- public API ------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a context-managed span nested under the current one."""
        return _SpanHandle(self, name, attrs)

    def current_span(self) -> _SpanHandle | None:
        """The innermost live span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of all metrics (see MetricsRegistry.snapshot)."""
        return self.metrics.snapshot()

    def clear(self) -> None:
        """Drop recorded spans and metrics (live span stacks survive)."""
        with self._lock:
            self.spans = []
        self.metrics = MetricsRegistry()


class _NullSpan:
    """Shared do-nothing span handle (one instance per process)."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Default recorder: every operation is a no-op.

    ``span()`` returns one shared handle whose ``__enter__``/``__exit__``
    do nothing, so instrumentation under the null recorder costs a
    method call and an attribute lookup — no allocation, no clock read.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def clear(self) -> None:
        return None


NULL_RECORDER = NullRecorder()

#: the process-wide active recorder; swapped via set_recorder()
_active: Recorder | NullRecorder = NULL_RECORDER


def active_recorder() -> Recorder | NullRecorder:
    """The recorder instrumentation is currently routed to."""
    return _active


def set_recorder(
    recorder: Recorder | NullRecorder | None,
) -> Recorder | NullRecorder:
    """Install ``recorder`` (None = the null recorder); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(
    recorder: Recorder | None = None,
) -> Iterator[Recorder]:
    """Scoped tracing: install a recorder, restore the previous one.

    >>> from repro import obs
    >>> with obs.recording() as rec:
    ...     with obs.trace.span("work"):
    ...         pass
    >>> [span.name for span in rec.spans]
    ['work']
    """
    rec = recorder if recorder is not None else Recorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
