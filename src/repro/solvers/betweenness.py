"""Frontier-batched Brandes betweenness on flat CSR arrays.

The per-source pass of Brandes (2001) is two sweeps over the shortest-
path DAG.  On the arc-store representation both sweeps vectorize:

* **forward** — a frontier-batched BFS (all of level ``d`` expanded in
  one gather via :func:`~repro.core.kernels.take_ranges`); the DAG arcs
  discovered at each level are kept, and the path counts ``sigma``
  accumulate with one ``bincount`` scatter per level;
* **backward** — the dependency accumulation replays the saved levels
  deepest-first, again one ``bincount`` per level:
  ``delta[v] += sigma[v] / sigma[w] * (1 + delta[w])`` summed over the
  level's DAG arcs ``v -> w``.

Sources are processed in *batches* through the backend layer's
``solve_brandes_batch`` kernel (reference:
:mod:`repro.core.backends.solver_numpy`; numba fuses the whole batch
into one compiled pass).  In the numpy reference all lanes of a batch
run in lock-step flat BFS (node ``v`` of lane ``b`` is key
``b * n + v``), so every per-level gather/scatter serves a whole block
of sources at once and the numpy call overhead amortizes across the
batch.  On small-diameter graphs (the paper's social networks) the
combination is several times faster than the list-based legacy pass —
``benchmarks/bench_solver_core.py`` records the ratio.

Batches are also the parallel unit: sources are independent and the
weighted dependency vectors sum associatively, so
:func:`betweenness_centrality_csr` fans batches across a
:class:`~repro.core.backends.RoundExecutor` (``workers=`` /
``REPRO_WORKERS``; threads when the backend's kernels release the GIL,
a shared-memory process pool otherwise) and reduces the results in
fixed submission order.  Batch boundaries never depend on the worker
count, so serial and parallel runs add the same partial vectors in the
same order — bit-identical on any single backend.

For weighted graphs (positive lengths), :func:`weighted_dependencies`
runs an array-heap Dijkstra over the CSR slices — a binary heap of
``(distance, node)`` pairs with a settled mask, path counts accumulated
on distance ties exactly like the legacy variant (1e-12 tolerance) —
followed by the same reversed dependency accumulation over the settle
order.

Entry point :func:`betweenness_centrality_csr` mirrors the legacy
``repro.centrality.brandes.betweenness_centrality`` signature
(``sources`` / ``source_weights`` restriction, networkx conventions for
directed/undirected and normalization) so the two engines are
interchangeable and cross-checkable to 1e-9.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.obs import recorder as _obs
from repro.core.backends import Backend, RoundExecutor
from repro.core.backends.executor import _WORKER_STATE
from repro.core.kernels import scatter_add, take_ranges
from repro.solvers.arcstore import resolve_solver_backend, unique_int

__all__ = [
    "bfs_dag",
    "single_source_dependencies_csr",
    "weighted_dependencies",
    "betweenness_centrality_csr",
]


def bfs_dag(
    indptr: np.ndarray, indices: np.ndarray, source: int, n: int
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
    """Frontier-batched BFS: ``(dist, sigma, levels)``.

    ``levels[d]`` holds the DAG arcs ``(tails, heads)`` crossing from
    depth ``d`` to ``d + 1`` — everything the backward sweep needs.
    """
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels: List[Tuple[np.ndarray, np.ndarray]] = []
    depth = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        positions = take_ranges(starts, counts)
        heads = indices[positions]
        tails = np.repeat(frontier, counts)
        # An arc crosses into depth + 1 exactly when its head was
        # undiscovered at gather time (depth + 1 labels are only
        # assigned below), so one gather serves discovery and the
        # sigma scatter alike.
        crossing = dist[heads] < 0
        tails, heads = tails[crossing], heads[crossing]
        if tails.size == 0:
            break
        dist[heads] = depth + 1
        sigma += scatter_add(heads, sigma[tails], n)
        levels.append((tails, heads))
        frontier = unique_int(heads)
        depth += 1
    return dist, sigma, levels


def _accumulate(
    sigma: np.ndarray,
    levels: List[Tuple[np.ndarray, np.ndarray]],
    source: int,
    n: int,
) -> np.ndarray:
    """Backward sweep: dependency vector from saved per-level DAG arcs."""
    delta = np.zeros(n)
    for tails, heads in reversed(levels):
        contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
        delta += scatter_add(tails, contributions, n)
    delta[source] = 0.0
    return delta


def single_source_dependencies_csr(
    indptr: np.ndarray, indices: np.ndarray, source: int, n: int
) -> np.ndarray:
    """Brandes' dependency vector ``delta_s(v)`` for one BFS source."""
    _, sigma, levels = bfs_dag(indptr, indices, source, n)
    return _accumulate(sigma, levels, source, n)


#: soft bound on flat lane-state entries (lanes x nodes / lanes x arcs);
#: keeps the batched pass within a few tens of MB on the large graphs
_BATCH_CELLS = 4_000_000


def _batch_size(n: int, m: int, n_sources: int) -> int:
    lanes = min(
        n_sources,
        max(1, _BATCH_CELLS // max(n, 1)),
        max(1, _BATCH_CELLS // max(m, 1)),
    )
    return max(1, min(lanes, 256))


def _worker_brandes_batch(job: tuple) -> np.ndarray:
    """Process-pool body: one source batch against the attached CSR.

    The adjacency arrays come from the executor's shared-memory mirror
    (``_WORKER_STATE``); only the batch's sources/weights and the
    backend spec cross the pickle boundary.
    """
    from repro.core.backends import resolve_backend

    sources, weights, backend_spec, n = job
    return resolve_backend(backend_spec).solve_brandes_batch(
        _WORKER_STATE["brandes_indptr"],
        _WORKER_STATE["brandes_indices"],
        sources,
        weights,
        n,
    )


def weighted_dependencies(
    indptr: List[int],
    indices: List[int],
    weights: List[float],
    source: int,
    n: int,
) -> np.ndarray:
    """Dependency vector of one array-heap Dijkstra pass.

    Arrays arrive as flat lists (CSR ``indptr``/``indices``/``data``)
    because the heap loop is scalar-bound; distance ties accumulate path
    counts with the same 1e-12 tolerance as the legacy solver, so both
    engines count identical shortest-path DAGs.
    """
    distance = [np.inf] * n
    distance[source] = 0.0
    sigma = np.zeros(n)
    sigma[source] = 1.0
    predecessors: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    settled = [False] * n
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        order.append(u)
        sigma_u = sigma[u]
        for position in range(indptr[u], indptr[u + 1]):
            v = indices[position]
            candidate = dist_u + weights[position]
            dist_v = distance[v]
            if candidate < dist_v - 1e-12:
                distance[v] = candidate
                sigma[v] = sigma_u
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, v))
            elif not settled[v] and abs(candidate - dist_v) <= 1e-12:
                sigma[v] += sigma_u
                predecessors[v].append(u)
    delta = np.zeros(n)
    for w in reversed(order):
        coefficient = (1.0 + delta[w]) / sigma[w]
        for v in predecessors[w]:
            delta[v] += sigma[v] * coefficient
    delta[source] = 0.0
    return delta


def betweenness_centrality_csr(
    matrix: sp.csr_matrix,
    directed: bool,
    normalized: bool = False,
    sources: Iterable[int] | None = None,
    source_weights: Iterable[float] | None = None,
    weighted: bool = False,
    backend: "str | Backend | None" = None,
    workers: int | None = None,
    parallel_mode: str | None = None,
) -> np.ndarray:
    """Betweenness of every node from a CSR adjacency (arcstore engine).

    Same conventions as the legacy engine: unnormalized scores follow
    networkx (undirected graphs report each unordered pair once);
    ``sources``/``source_weights`` restrict and weight the per-source
    passes; ``weighted=True`` treats arc weights as positive lengths.

    The unweighted path batches sources through the backend's
    ``solve_brandes_batch`` kernel and, with ``workers > 1`` (or
    ``REPRO_WORKERS``), fans the batches across a
    :class:`~repro.core.backends.RoundExecutor` — sources are
    independent, and the partial vectors are reduced in submission
    order, so batch boundaries (and therefore results on a given
    backend) do not depend on the worker count.  ``parallel_mode``
    picks ``"serial"``/``"threads"``/``"processes"`` explicitly;
    ``None`` auto-selects from the backend's ``parallel_kernels`` flag.
    """
    n = matrix.shape[0]
    indptr = matrix.indptr.astype(np.int64)
    indices = matrix.indices.astype(np.int64)
    if weighted and matrix.nnz and matrix.data.min() <= 0:
        raise ValueError("weighted betweenness requires positive weights")
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = [int(s) for s in sources]
    if source_weights is None:
        weight_list = [1.0] * len(source_list)
    else:
        weight_list = [float(w) for w in source_weights]
        if len(weight_list) != len(source_list):
            raise ValueError(
                f"{len(source_list)} sources but {len(weight_list)} weights"
            )

    centrality = np.zeros(n)
    n_batches = 0
    if weighted:
        indptr_list = indptr.tolist()
        indices_list = indices.tolist()
        data_list = matrix.data.tolist()
        for source, weight in zip(source_list, weight_list):
            centrality += weight * weighted_dependencies(
                indptr_list, indices_list, data_list, source, n
            )
    elif source_list:
        active = resolve_solver_backend(backend)
        source_array = np.asarray(source_list, dtype=np.int64)
        weight_array = np.asarray(weight_list)
        lanes = _batch_size(n, int(matrix.nnz), len(source_list))
        batches = [
            (source_array[start : start + lanes],
             weight_array[start : start + lanes])
            for start in range(0, len(source_list), lanes)
        ]
        n_batches = len(batches)

        def compute_batch(batch: tuple) -> np.ndarray:
            return active.solve_brandes_batch(
                indptr, indices, batch[0], batch[1], n
            )

        executor = RoundExecutor.resolve(
            workers, parallel_mode, active.parallel_kernels
        )
        if executor.mode == "serial" or n_batches == 1:
            for batch in batches:
                centrality += compute_batch(batch)
        else:
            try:
                if executor.mode == "processes":
                    executor.attach_arrays(
                        {"brandes_indptr": indptr,
                         "brandes_indices": indices}
                    )
                spec = f"{active.name}:{active.device}"
                jobs = [
                    (batch[0], batch[1], spec, n) for batch in batches
                ]
                # Submission-order reduce: same partial vectors, same
                # addition order as the serial loop above.
                for partial in executor.run_jobs(
                    _worker_brandes_batch, jobs, compute_batch
                ):
                    centrality += partial
            finally:
                executor.release()

    recorder = _obs._active
    recorder.count("solvers.brandes.sources", len(source_list))
    if n_batches:
        recorder.count("solvers.brandes.batches", n_batches)
    if not directed:
        centrality /= 2.0
    if normalized:
        scale = (n - 1) * (n - 2) if directed else (n - 1) * (n - 2) / 2.0
        if scale > 0:
            centrality /= scale
    return centrality
