"""Frontier-batched Brandes betweenness on flat CSR arrays.

The per-source pass of Brandes (2001) is two sweeps over the shortest-
path DAG.  On the arc-store representation both sweeps vectorize:

* **forward** — a frontier-batched BFS (all of level ``d`` expanded in
  one gather via :func:`~repro.core.kernels.take_ranges`); the DAG arcs
  discovered at each level are kept, and the path counts ``sigma``
  accumulate with one ``bincount`` scatter per level;
* **backward** — the dependency accumulation replays the saved levels
  deepest-first, again one ``bincount`` per level:
  ``delta[v] += sigma[v] / sigma[w] * (1 + delta[w])`` summed over the
  level's DAG arcs ``v -> w``.

Both sweeps run on the :func:`~repro.core.kernels.take_ranges` /
:func:`~repro.core.kernels.scatter_add` wrappers, which dispatch
through the process-default backend (:mod:`repro.core.backends`) — the
frontier gathers and sigma/delta scatters are accelerated, with
bit-identical results, whenever a numba/torch backend is active.

On top of that, sources are processed in *batches* of flat BFS lanes
(node ``v`` of lane ``b`` is key ``b * n + v``), so every per-level
gather/scatter serves a whole block of sources at once and the numpy
call overhead amortizes across the batch.  On small-diameter graphs
(the paper's social networks) the combination is several times faster
than the list-based legacy pass — ``benchmarks/bench_solver_core.py``
records the ratio.

For weighted graphs (positive lengths), :func:`weighted_dependencies`
runs an array-heap Dijkstra over the CSR slices — a binary heap of
``(distance, node)`` pairs with a settled mask, path counts accumulated
on distance ties exactly like the legacy variant (1e-12 tolerance) —
followed by the same reversed dependency accumulation over the settle
order.

Entry point :func:`betweenness_centrality_csr` mirrors the legacy
``repro.centrality.brandes.betweenness_centrality`` signature
(``sources`` / ``source_weights`` restriction, networkx conventions for
directed/undirected and normalization) so the two engines are
interchangeable and cross-checkable to 1e-9.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.obs import recorder as _obs
from repro.core.kernels import scatter_add, take_ranges
from repro.solvers.arcstore import unique_int

__all__ = [
    "bfs_dag",
    "single_source_dependencies_csr",
    "weighted_dependencies",
    "betweenness_centrality_csr",
]


def bfs_dag(
    indptr: np.ndarray, indices: np.ndarray, source: int, n: int
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
    """Frontier-batched BFS: ``(dist, sigma, levels)``.

    ``levels[d]`` holds the DAG arcs ``(tails, heads)`` crossing from
    depth ``d`` to ``d + 1`` — everything the backward sweep needs.
    """
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels: List[Tuple[np.ndarray, np.ndarray]] = []
    depth = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        positions = take_ranges(starts, counts)
        heads = indices[positions]
        tails = np.repeat(frontier, counts)
        # An arc crosses into depth + 1 exactly when its head was
        # undiscovered at gather time (depth + 1 labels are only
        # assigned below), so one gather serves discovery and the
        # sigma scatter alike.
        crossing = dist[heads] < 0
        tails, heads = tails[crossing], heads[crossing]
        if tails.size == 0:
            break
        dist[heads] = depth + 1
        sigma += scatter_add(heads, sigma[tails], n)
        levels.append((tails, heads))
        frontier = unique_int(heads)
        depth += 1
    return dist, sigma, levels


def _accumulate(
    sigma: np.ndarray,
    levels: List[Tuple[np.ndarray, np.ndarray]],
    source: int,
    n: int,
) -> np.ndarray:
    """Backward sweep: dependency vector from saved per-level DAG arcs."""
    delta = np.zeros(n)
    for tails, heads in reversed(levels):
        contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
        delta += scatter_add(tails, contributions, n)
    delta[source] = 0.0
    return delta


def single_source_dependencies_csr(
    indptr: np.ndarray, indices: np.ndarray, source: int, n: int
) -> np.ndarray:
    """Brandes' dependency vector ``delta_s(v)`` for one BFS source."""
    _, sigma, levels = bfs_dag(indptr, indices, source, n)
    return _accumulate(sigma, levels, source, n)


#: soft bound on flat lane-state entries (lanes x nodes / lanes x arcs);
#: keeps the batched pass within a few tens of MB on the large graphs
_BATCH_CELLS = 4_000_000


def _batch_size(n: int, m: int, n_sources: int) -> int:
    lanes = min(
        n_sources,
        max(1, _BATCH_CELLS // max(n, 1)),
        max(1, _BATCH_CELLS // max(m, 1)),
    )
    return max(1, min(lanes, 256))


def _batched_dependencies(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    weights: np.ndarray,
    n: int,
) -> np.ndarray:
    """Weighted sum of dependency vectors over a block of BFS sources.

    All lanes run in lock-step: node ``v`` of lane ``b`` is the flat key
    ``b * n + v``, so one gather/scatter per global depth serves every
    source in the block — the numpy call overhead of the per-level sweep
    amortizes across lanes, which is where the bulk of the arcstore
    engine's speedup over the per-source Python passes comes from.
    """
    lanes = len(sources)
    size = lanes * n
    dist = np.full(size, -1, dtype=np.int32)
    sigma = np.zeros(size)
    keys = np.arange(lanes, dtype=np.int64) * n + sources
    dist[keys] = 0
    sigma[keys] = 1.0
    frontier = keys
    levels: List[Tuple[np.ndarray, np.ndarray]] = []
    depth = 0
    while frontier.size:
        nodes = frontier % n
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        positions = take_ranges(starts, counts)
        heads = (
            np.repeat(frontier - nodes, counts) + indices[positions]
        )
        tails = np.repeat(frontier, counts)
        # Crossing arcs == arcs whose head was undiscovered at gather
        # time (see bfs_dag); one gather serves discovery and sigma.
        crossing = dist[heads] < 0
        tails, heads = tails[crossing], heads[crossing]
        if tails.size == 0:
            break
        dist[heads] = depth + 1
        sigma += scatter_add(heads, sigma[tails], size)
        levels.append((tails, heads))
        frontier = unique_int(heads)
        depth += 1
    delta = np.zeros(size)
    for tails, heads in reversed(levels):
        contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
        delta += scatter_add(tails, contributions, size)
    delta[keys] = 0.0
    return weights @ delta.reshape(lanes, n)


def weighted_dependencies(
    indptr: List[int],
    indices: List[int],
    weights: List[float],
    source: int,
    n: int,
) -> np.ndarray:
    """Dependency vector of one array-heap Dijkstra pass.

    Arrays arrive as flat lists (CSR ``indptr``/``indices``/``data``)
    because the heap loop is scalar-bound; distance ties accumulate path
    counts with the same 1e-12 tolerance as the legacy solver, so both
    engines count identical shortest-path DAGs.
    """
    distance = [np.inf] * n
    distance[source] = 0.0
    sigma = np.zeros(n)
    sigma[source] = 1.0
    predecessors: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    settled = [False] * n
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        order.append(u)
        sigma_u = sigma[u]
        for position in range(indptr[u], indptr[u + 1]):
            v = indices[position]
            candidate = dist_u + weights[position]
            dist_v = distance[v]
            if candidate < dist_v - 1e-12:
                distance[v] = candidate
                sigma[v] = sigma_u
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, v))
            elif not settled[v] and abs(candidate - dist_v) <= 1e-12:
                sigma[v] += sigma_u
                predecessors[v].append(u)
    delta = np.zeros(n)
    for w in reversed(order):
        coefficient = (1.0 + delta[w]) / sigma[w]
        for v in predecessors[w]:
            delta[v] += sigma[v] * coefficient
    delta[source] = 0.0
    return delta


def betweenness_centrality_csr(
    matrix: sp.csr_matrix,
    directed: bool,
    normalized: bool = False,
    sources: Iterable[int] | None = None,
    source_weights: Iterable[float] | None = None,
    weighted: bool = False,
) -> np.ndarray:
    """Betweenness of every node from a CSR adjacency (arcstore engine).

    Same conventions as the legacy engine: unnormalized scores follow
    networkx (undirected graphs report each unordered pair once);
    ``sources``/``source_weights`` restrict and weight the per-source
    passes; ``weighted=True`` treats arc weights as positive lengths.
    """
    n = matrix.shape[0]
    indptr = matrix.indptr.astype(np.int64)
    indices = matrix.indices.astype(np.int64)
    if weighted and matrix.nnz and matrix.data.min() <= 0:
        raise ValueError("weighted betweenness requires positive weights")
    if sources is None:
        source_list = list(range(n))
    else:
        source_list = [int(s) for s in sources]
    if source_weights is None:
        weight_list = [1.0] * len(source_list)
    else:
        weight_list = [float(w) for w in source_weights]
        if len(weight_list) != len(source_list):
            raise ValueError(
                f"{len(source_list)} sources but {len(weight_list)} weights"
            )

    centrality = np.zeros(n)
    if weighted:
        indptr_list = indptr.tolist()
        indices_list = indices.tolist()
        data_list = matrix.data.tolist()
        for source, weight in zip(source_list, weight_list):
            centrality += weight * weighted_dependencies(
                indptr_list, indices_list, data_list, source, n
            )
    elif source_list:
        source_array = np.asarray(source_list, dtype=np.int64)
        weight_array = np.asarray(weight_list)
        lanes = _batch_size(n, int(matrix.nnz), len(source_list))
        for start in range(0, len(source_list), lanes):
            centrality += _batched_dependencies(
                indptr,
                indices,
                source_array[start : start + lanes],
                weight_array[start : start + lanes],
                n,
            )

    recorder = _obs._active
    recorder.count("solvers.brandes.sources", len(source_list))
    if not weighted and source_list:
        recorder.count(
            "solvers.brandes.batches",
            -(-len(source_list) // _batch_size(n, int(matrix.nnz),
                                               len(source_list))),
        )
    if not directed:
        centrality /= 2.0
    if normalized:
        scale = (n - 1) * (n - 2) if directed else (n - 1) * (n - 2) / 2.0
        if scale > 0:
            centrality /= scale
    return centrality
