"""Exact max-flow and min-cut on the flat arc store.

All three solvers operate on one :class:`~repro.solvers.arcstore.
ArcStore` and a residual capacity vector from ``store.residual()``:

* :func:`dinic` — vectorized level BFS (:func:`~repro.solvers.arcstore.
  bfs_levels`), then a blocking flow found by an iterative current-arc
  DFS over the *compacted* level graph: the admissible arcs are
  extracted with one numpy mask over all arc ids, pruned to the
  sink-reaching core by a backward BFS, regrouped by tail, and the DFS
  runs on plain Python lists of just those arcs (no per-arc level
  checks in the hot loop); augmentations are written back to the
  residual vector in one scatter per phase, and one/two-level phases
  (most of the arc volume on the stereo instances) solve in closed form
  with no DFS at all.
* :func:`push_relabel` — highest-label selection with per-height bucket
  arrays and the gap heuristic; discharge loops run on flat lists
  sliced by the store's ``indptr``.
* :func:`edmonds_karp` — shortest augmenting paths where the BFS is the
  vectorized :func:`~repro.solvers.arcstore.bfs_parents` and only the
  O(path) augmentation walks arc ids in Python.
* :func:`min_cut` — runs :func:`dinic`, then reads reachability
  straight off the final residual arrays (one more vectorized BFS) and
  collects the saturated forward arcs leaving the source side.

Each solver returns ``(value, cap)`` — the final residual vector is the
flow witness; :meth:`ArcStore.extract_flow_arrays` turns it into per-arc
flows.

Every solver reports its work counters to :mod:`repro.obs` in one add
at return — ``solvers.dinic.phases``, ``solvers.pr.relabels`` /
``solvers.pr.pushes``, ``solvers.ek.augmentations`` — so profiled runs
can attribute flow time to algorithmic effort without any per-arc cost.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.core.kernels import take_ranges
from repro.solvers.arcstore import (
    ArcStore,
    bfs_levels,
    bfs_parents,
    unique_int,
)

_EPS = 1e-12

__all__ = ["dinic", "push_relabel", "edmonds_karp", "min_cut"]


# ----------------------------------------------------------------------
# Dinic
# ----------------------------------------------------------------------
def _blocking_flow(
    indptr: List[int],
    heads: List[int],
    caps: List[float],
    flows: List[float],
    source: int,
    sink: int,
) -> float:
    """Iterative current-arc DFS over a compacted level graph.

    ``indptr``/``heads``/``caps`` describe only the admissible arcs, so
    no level checks are needed while advancing.  A dead-ended node is
    removed from the level graph by zeroing the arc that led into it
    (``flows`` tracks real pushes separately, so the kill is invisible
    to the write-back).

    The level graph arrives pruned to arcs that can still reach the
    sink, so structural dead ends are gone before the DFS starts; the
    remaining (dynamic) dead ends — nodes whose last admissible arc
    saturates mid-phase — are killed by zeroing the arc that led in.
    """
    n = len(indptr) - 1
    cursor = indptr[:n]
    limit = indptr[1:]
    total = 0.0
    stack = [source]
    path: List[int] = []
    while stack:
        u = stack[-1]
        if u == sink:
            bottleneck = min(map(caps.__getitem__, path))
            total += bottleneck
            # Augment and retreat to the first saturated arc, fused in
            # one pass over the (short) path.
            cut = -1
            for index, a in enumerate(path):
                remaining = caps[a] - bottleneck
                caps[a] = remaining
                flows[a] += bottleneck
                if cut < 0 and remaining <= _EPS:
                    cut = index
            del stack[cut + 1 :]
            del path[cut:]
            continue
        position = cursor[u]
        end = limit[u]
        while position < end and caps[position] <= _EPS:
            position += 1
        cursor[u] = position
        if position < end:
            stack.append(heads[position])
            path.append(position)
        else:
            # Dead end: kill the arc into u so predecessors skip it.
            stack.pop()
            if path:
                caps[path.pop()] = 0.0
    return total


def _sink_side_prune(
    store: ArcStore,
    selected: np.ndarray,
    sink: int,
) -> np.ndarray:
    """Drop admissible arcs that cannot reach the sink.

    One backward BFS from the sink over the reversed admissible arcs:
    the reverse of arc ``a`` is ``a ^ 1``, and ``store.arcs`` is already
    grouped by tail, so the reversed level graph needs no sort — just a
    mask swap on the paired ids.  Arcs whose head is cut off would only
    ever feed dead-end DFS branches; pruning them up front makes every
    DFS advance part of a real augmenting path (until saturation).
    """
    n = store.n
    # reversed_mask[r] <=> forward twin r ^ 1 is admissible.
    admissible = np.zeros(2 * store.n_forward, dtype=bool)
    admissible[selected] = True
    reversed_mask = admissible.reshape(-1, 2)[:, ::-1].reshape(-1)
    reversed_sel = store.arcs[reversed_mask[store.arcs]]
    reversed_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(store.tail[reversed_sel], minlength=n),
        out=reversed_indptr[1:],
    )
    reversed_heads = store.head[reversed_sel]
    reaches = np.zeros(n, dtype=bool)
    reaches[sink] = True
    frontier = np.array([sink], dtype=np.int64)
    while frontier.size:
        starts = reversed_indptr[frontier]
        counts = reversed_indptr[frontier + 1] - starts
        heads = reversed_heads[take_ranges(starts, counts)]
        heads = heads[~reaches[heads]]
        if heads.size == 0:
            break
        reaches[heads] = True
        frontier = unique_int(heads)
    return selected[reaches[store.head[selected]]]


def _shallow_blocking_flow(
    store: ArcStore,
    cap: np.ndarray,
    selected: np.ndarray,
    source: int,
    sink_level: int,
) -> float:
    """Closed-form blocking flow for one- and two-level phases.

    After sink-side pruning a depth-1 phase holds only direct ``s -> t``
    arcs (saturate them all) and a depth-2 phase pairs each middle node
    ``u`` with exactly one admissible ``s -> u`` and one ``u -> t`` arc
    (the adjacency stores unique arcs), so the blocking flow is
    ``min(cap(s, u), cap(u, t))`` per middle — one vectorized pass, no
    DFS.  These shallow phases carry most of the arc volume on networks
    whose terminals fan out to every node (the stereo instances).
    """
    if sink_level == 1:
        flows = cap[selected].copy()
    else:
        from_source = store.tail[selected] == source
        source_arcs = selected[from_source]
        exit_arcs = selected[~from_source]
        position = np.full(store.n, -1, dtype=np.int64)
        position[store.tail[exit_arcs]] = np.arange(len(exit_arcs))
        aligned_exit = exit_arcs[position[store.head[source_arcs]]]
        flows = np.minimum(cap[source_arcs], cap[aligned_exit])
        selected = np.concatenate([source_arcs, aligned_exit])
        flows = np.concatenate([flows, flows])
    cap[selected] -= flows
    cap[selected ^ 1] += flows
    return float(flows.sum()) / (1.0 if sink_level == 1 else 2.0)


def dinic(
    store: ArcStore, source: int, sink: int
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by Dinic's algorithm on the arc store."""
    cap = store.residual()
    tail, head, arcs = store.tail, store.head, store.arcs
    total = 0.0
    phases = 0
    while True:
        level = bfs_levels(store, cap, source, sink)
        sink_level = level[sink]
        if sink_level < 0:
            break
        phases += 1
        # Compacted level graph: admissible arcs in tail-grouped order
        # (masks computed directly on the grouped endpoint arrays),
        # pruned to the sink-reaching core.
        level_tail = level[store.tail_by_arc]
        level_head = level[store.head_by_arc]
        admissible = (
            (cap[arcs] > _EPS)
            & (level_tail >= 0)
            & (level_head == level_tail + 1)
            & ((level_head < sink_level) | (store.head_by_arc == sink))
        )
        selected = arcs[admissible]
        selected = _sink_side_prune(store, selected, sink)
        if selected.size == 0:
            break
        if sink_level <= 2:
            pushed = _shallow_blocking_flow(
                store, cap, selected, source, sink_level
            )
            if pushed <= _EPS:
                break
            total += pushed
            continue
        local_indptr = np.zeros(store.n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(tail[selected], minlength=store.n),
            out=local_indptr[1:],
        )
        flows = [0.0] * len(selected)
        pushed = _blocking_flow(
            local_indptr.tolist(),
            head[selected].tolist(),
            cap[selected].tolist(),
            flows,
            source,
            sink,
        )
        if pushed <= _EPS:
            break
        flow_array = np.asarray(flows)
        positive = flow_array > 0
        changed = selected[positive]
        cap[changed] -= flow_array[positive]
        cap[changed ^ 1] += flow_array[positive]
        total += pushed
    _obs._active.count("solvers.dinic.phases", phases)
    return total, cap


# ----------------------------------------------------------------------
# push-relabel (highest-label, bucket arrays, gap heuristic)
# ----------------------------------------------------------------------
def push_relabel(
    store: ArcStore, source: int, sink: int
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by highest-label push-relabel on the arc store."""
    n = store.n
    cap_array = store.residual()
    cap = cap_array.tolist()
    head = store.head.tolist()
    arcs = store.arcs.tolist()
    indptr = store.indptr.tolist()

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)
    height[source] = n
    count_at_height[0] = n - 1
    count_at_height[n] += 1
    cursor = indptr[:n]
    buckets: List[List[int]] = [[] for _ in range(2 * n + 1)]
    in_queue = [False] * n
    highest = -1
    relabels = 0
    pushes = 0

    def activate(v: int) -> None:
        nonlocal highest
        if v != source and v != sink and not in_queue[v]:
            in_queue[v] = True
            buckets[height[v]].append(v)
            if height[v] > highest:
                highest = height[v]

    # Saturate every source arc (reverse twins start at zero capacity,
    # so the cap > eps filter keeps only real forward arcs).
    for position in range(indptr[source], indptr[source + 1]):
        a = arcs[position]
        delta = cap[a]
        if delta > _EPS:
            v = head[a]
            cap[a] = 0.0
            cap[a ^ 1] += delta
            excess[v] += delta
            activate(v)

    def relabel(u: int) -> None:
        nonlocal relabels
        relabels += 1
        old_height = height[u]
        min_height = 2 * n
        for position in range(indptr[u], indptr[u + 1]):
            a = arcs[position]
            if cap[a] > _EPS:
                h = height[head[a]]
                if h < min_height:
                    min_height = h
        if min_height >= 2 * n:
            # A node with excess always has a residual arc back toward
            # the source; hitting this means corrupted residual state.
            raise RuntimeError(f"relabel of node {u} found no residual arc")
        count_at_height[old_height] -= 1
        height[u] = min_height + 1
        count_at_height[min_height + 1] += 1
        cursor[u] = indptr[u]
        # Gap heuristic: an emptied level below n strands every node
        # above it (except s) — lift them past n in one sweep.
        if count_at_height[old_height] == 0 and old_height < n:
            for node in range(n):
                if node != source and old_height < height[node] <= n:
                    count_at_height[height[node]] -= 1
                    height[node] = n + 1
                    count_at_height[n + 1] += 1

    while highest >= 0:
        bucket = buckets[highest]
        if not bucket:
            highest -= 1
            continue
        u = bucket.pop()
        if height[u] != highest:
            # Stale entry (gap heuristic moved u): refile at its true
            # height so its excess still drains.
            buckets[height[u]].append(u)
            if height[u] > highest:
                highest = height[u]
            continue
        in_queue[u] = False
        # Discharge u completely.
        while excess[u] > _EPS:
            position = cursor[u]
            if position == indptr[u + 1]:
                relabel(u)
                continue
            a = arcs[position]
            v = head[a]
            if cap[a] > _EPS and height[u] == height[v] + 1:
                delta = excess[u]
                if cap[a] < delta:
                    delta = cap[a]
                cap[a] -= delta
                cap[a ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                pushes += 1
                activate(v)
            else:
                cursor[u] = position + 1

    recorder = _obs._active
    recorder.count("solvers.pr.relabels", relabels)
    recorder.count("solvers.pr.pushes", pushes)
    cap_array[:] = cap
    return excess[sink], cap_array


# ----------------------------------------------------------------------
# Edmonds–Karp
# ----------------------------------------------------------------------
def edmonds_karp(
    store: ArcStore, source: int, sink: int
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by shortest augmenting paths on the arc store."""
    cap = store.residual()
    tail = store.tail
    total = 0.0
    augmentations = 0
    while True:
        parent_arc = bfs_parents(store, cap, source, sink)
        if parent_arc is None:
            break
        augmentations += 1
        # Collect the path, then augment by its bottleneck.
        path = []
        v = sink
        while v != source:
            a = int(parent_arc[v])
            path.append(a)
            v = int(tail[a])
        path_array = np.asarray(path, dtype=np.int64)
        bottleneck = float(cap[path_array].min())
        cap[path_array] -= bottleneck
        cap[path_array ^ 1] += bottleneck
        total += bottleneck
    _obs._active.count("solvers.ek.augmentations", augmentations)
    return total, cap


# ----------------------------------------------------------------------
# min-cut
# ----------------------------------------------------------------------
def min_cut(
    store: ArcStore, source: int, sink: int
) -> Tuple[float, Set[int], List[Tuple[int, int]], np.ndarray]:
    """Minimum s-t cut read off Dinic's final residual arrays.

    Returns ``(capacity, source_side, cut_arcs, cap)`` where ``cap`` is
    the final residual vector (the max-flow witness).
    """
    _, cap = dinic(store, source, sink)
    reachable = bfs_levels(store, cap, source) >= 0
    forward_tail = store.tail[0::2]
    forward_head = store.head[0::2]
    forward_cap0 = store.cap0[0::2]
    crossing = reachable[forward_tail] & ~reachable[forward_head]
    capacity = float(forward_cap0[crossing].sum())
    cut_arcs = [
        (int(u), int(v))
        for u, v in zip(forward_tail[crossing], forward_head[crossing])
    ]
    source_side = {int(node) for node in np.nonzero(reachable)[0]}
    return capacity, source_side, cut_arcs, cap
