"""Exact max-flow and min-cut on the flat arc store.

All three solvers operate on one :class:`~repro.solvers.arcstore.
ArcStore` and a residual capacity vector from ``store.residual()``:

* :func:`dinic` — level BFS through the backend's
  ``solve_bfs_levels`` kernel, then a blocking flow over the
  *compacted* level graph: the admissible arcs are extracted with one
  numpy mask over all arc ids, pruned to the sink-reaching core by a
  backward BFS, regrouped by tail, and the current-arc DFS runs
  through ``solve_blocking_flow`` on just those arcs (no per-arc level
  checks in the hot loop); augmentations are written back to the
  residual vector in one scatter per phase, and one/two-level phases
  (most of the arc volume on the stereo instances) solve in closed form
  with no DFS at all.
* :func:`push_relabel` — highest-label selection with per-height bucket
  stacks and the gap heuristic, fused into the backend's
  ``solve_push_relabel`` kernel.
* :func:`edmonds_karp` — shortest augmenting paths, fused into the
  backend's ``solve_edmonds_karp`` kernel (first-occurrence parent BFS
  plus O(path) augmentation).
* :func:`min_cut` — runs :func:`dinic`, then reads reachability
  straight off the final residual arrays (one more vectorized BFS) and
  collects the saturated forward arcs leaving the source side.

Each solver takes ``backend=`` (:func:`~repro.solvers.arcstore.
resolve_solver_backend` rules: explicit wins, else the process
default) and returns ``(value, cap)`` — the final residual vector is
the flow witness; :meth:`ArcStore.extract_flow_arrays` turns it into
per-arc flows.  Results are bit-identical across backends: the kernel
contracts in :mod:`repro.core.backends.solver_numpy` pin the discovery
orders, so every backend augments along the same paths.

Every solver reports its work counters to :mod:`repro.obs` in one add
at return — ``solvers.dinic.phases``, ``solvers.pr.relabels`` /
``solvers.pr.pushes``, ``solvers.ek.augmentations`` — so profiled runs
can attribute flow time to algorithmic effort without any per-arc cost.
The kernels themselves are pure; the counters they tally come back in
their return values and are recorded here, once per solve.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.core.backends import Backend
from repro.core.kernels import take_ranges
from repro.solvers.arcstore import (
    ArcStore,
    bfs_levels,
    resolve_solver_backend,
    unique_int,
)

_EPS = 1e-12

__all__ = ["dinic", "push_relabel", "edmonds_karp", "min_cut"]


# ----------------------------------------------------------------------
# Dinic
# ----------------------------------------------------------------------
def _sink_side_prune(
    store: ArcStore,
    selected: np.ndarray,
    sink: int,
) -> np.ndarray:
    """Drop admissible arcs that cannot reach the sink.

    One backward BFS from the sink over the reversed admissible arcs:
    the reverse of arc ``a`` is ``a ^ 1``, and ``store.arcs`` is already
    grouped by tail, so the reversed level graph needs no sort — just a
    mask swap on the paired ids.  Arcs whose head is cut off would only
    ever feed dead-end DFS branches; pruning them up front makes every
    DFS advance part of a real augmenting path (until saturation).
    """
    n = store.n
    # reversed_mask[r] <=> forward twin r ^ 1 is admissible.
    admissible = np.zeros(2 * store.n_forward, dtype=bool)
    admissible[selected] = True
    reversed_mask = admissible.reshape(-1, 2)[:, ::-1].reshape(-1)
    reversed_sel = store.arcs[reversed_mask[store.arcs]]
    reversed_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(store.tail[reversed_sel], minlength=n),
        out=reversed_indptr[1:],
    )
    reversed_heads = store.head[reversed_sel]
    reaches = np.zeros(n, dtype=bool)
    reaches[sink] = True
    frontier = np.array([sink], dtype=np.int64)
    while frontier.size:
        starts = reversed_indptr[frontier]
        counts = reversed_indptr[frontier + 1] - starts
        heads = reversed_heads[take_ranges(starts, counts)]
        heads = heads[~reaches[heads]]
        if heads.size == 0:
            break
        reaches[heads] = True
        frontier = unique_int(heads)
    return selected[reaches[store.head[selected]]]


def _shallow_blocking_flow(
    store: ArcStore,
    cap: np.ndarray,
    selected: np.ndarray,
    source: int,
    sink_level: int,
) -> float:
    """Closed-form blocking flow for one- and two-level phases.

    After sink-side pruning a depth-1 phase holds only direct ``s -> t``
    arcs (saturate them all) and a depth-2 phase pairs each middle node
    ``u`` with exactly one admissible ``s -> u`` and one ``u -> t`` arc
    (the adjacency stores unique arcs), so the blocking flow is
    ``min(cap(s, u), cap(u, t))`` per middle — one vectorized pass, no
    DFS.  These shallow phases carry most of the arc volume on networks
    whose terminals fan out to every node (the stereo instances).
    """
    if sink_level == 1:
        flows = cap[selected].copy()
    else:
        from_source = store.tail[selected] == source
        source_arcs = selected[from_source]
        exit_arcs = selected[~from_source]
        position = np.full(store.n, -1, dtype=np.int64)
        position[store.tail[exit_arcs]] = np.arange(len(exit_arcs))
        aligned_exit = exit_arcs[position[store.head[source_arcs]]]
        flows = np.minimum(cap[source_arcs], cap[aligned_exit])
        selected = np.concatenate([source_arcs, aligned_exit])
        flows = np.concatenate([flows, flows])
    cap[selected] -= flows
    cap[selected ^ 1] += flows
    return float(flows.sum()) / (1.0 if sink_level == 1 else 2.0)


def dinic(
    store: ArcStore,
    source: int,
    sink: int,
    backend: "str | Backend | None" = None,
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by Dinic's algorithm on the arc store."""
    active = resolve_solver_backend(backend)
    cap = store.residual()
    tail, head, arcs = store.tail, store.head, store.arcs
    total = 0.0
    phases = 0
    while True:
        level = bfs_levels(store, cap, source, sink, backend=active)
        sink_level = level[sink]
        if sink_level < 0:
            break
        phases += 1
        # Compacted level graph: admissible arcs in tail-grouped order
        # (masks computed directly on the grouped endpoint arrays),
        # pruned to the sink-reaching core.
        level_tail = level[store.tail_by_arc]
        level_head = level[store.head_by_arc]
        admissible = (
            (cap[arcs] > _EPS)
            & (level_tail >= 0)
            & (level_head == level_tail + 1)
            & ((level_head < sink_level) | (store.head_by_arc == sink))
        )
        selected = arcs[admissible]
        selected = _sink_side_prune(store, selected, sink)
        if selected.size == 0:
            break
        if sink_level <= 2:
            pushed = _shallow_blocking_flow(
                store, cap, selected, source, sink_level
            )
            if pushed <= _EPS:
                break
            total += pushed
            continue
        local_indptr = np.zeros(store.n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(tail[selected], minlength=store.n),
            out=local_indptr[1:],
        )
        # The fancy-indexed caps slice is a fresh array the kernel may
        # consume; real pushes come back in the flows vector.
        pushed, flow_array = active.solve_blocking_flow(
            local_indptr,
            head[selected],
            cap[selected],
            int(source),
            int(sink),
        )
        if pushed <= _EPS:
            break
        positive = flow_array > 0
        changed = selected[positive]
        cap[changed] -= flow_array[positive]
        cap[changed ^ 1] += flow_array[positive]
        total += pushed
    _obs._active.count("solvers.dinic.phases", phases)
    return total, cap


# ----------------------------------------------------------------------
# push-relabel (highest-label, bucket stacks, gap heuristic)
# ----------------------------------------------------------------------
def push_relabel(
    store: ArcStore,
    source: int,
    sink: int,
    backend: "str | Backend | None" = None,
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by highest-label push-relabel on the arc store.

    The whole solver is one fused kernel call: bucket selection,
    discharge, relabel, and the gap heuristic all live in the backend's
    ``solve_push_relabel`` (reference in ``solver_numpy``), which
    mutates the residual vector in place and returns the work counters.
    """
    cap = store.residual()
    value, relabels, pushes = resolve_solver_backend(
        backend
    ).solve_push_relabel(
        store.indptr,
        store.arcs,
        store.head,
        cap,
        store.n,
        int(source),
        int(sink),
    )
    recorder = _obs._active
    recorder.count("solvers.pr.relabels", int(relabels))
    recorder.count("solvers.pr.pushes", int(pushes))
    return float(value), cap


# ----------------------------------------------------------------------
# Edmonds–Karp
# ----------------------------------------------------------------------
def edmonds_karp(
    store: ArcStore,
    source: int,
    sink: int,
    backend: "str | Backend | None" = None,
) -> Tuple[float, np.ndarray]:
    """Maximum s-t flow by shortest augmenting paths on the arc store.

    One fused kernel call (``solve_edmonds_karp``): every BFS follows
    the first-occurrence parent rule, so all backends augment along the
    identical path sequence and land on the same residual vector.
    """
    cap = store.residual()
    value, augmentations = resolve_solver_backend(
        backend
    ).solve_edmonds_karp(
        store.indptr,
        store.arcs,
        store.head,
        store.tail,
        cap,
        store.n,
        int(source),
        int(sink),
    )
    _obs._active.count("solvers.ek.augmentations", int(augmentations))
    return float(value), cap


# ----------------------------------------------------------------------
# min-cut
# ----------------------------------------------------------------------
def min_cut(
    store: ArcStore,
    source: int,
    sink: int,
    backend: "str | Backend | None" = None,
) -> Tuple[float, Set[int], List[Tuple[int, int]], np.ndarray]:
    """Minimum s-t cut read off Dinic's final residual arrays.

    Returns ``(capacity, source_side, cut_arcs, cap)`` where ``cap`` is
    the final residual vector (the max-flow witness).
    """
    active = resolve_solver_backend(backend)
    _, cap = dinic(store, source, sink, backend=active)
    reachable = bfs_levels(store, cap, source, backend=active) >= 0
    forward_tail = store.tail[0::2]
    forward_head = store.head[0::2]
    forward_cap0 = store.cap0[0::2]
    crossing = reachable[forward_tail] & ~reachable[forward_head]
    capacity = float(forward_cap0[crossing].sum())
    cut_arcs = [
        (int(u), int(v))
        for u, v in zip(forward_tail[crossing], forward_head[crossing])
    ]
    source_side = {int(node) for node in np.nonzero(reachable)[0]}
    return capacity, source_side, cut_arcs, cap
