"""The flat arc store: one contiguous residual representation for all
exact solvers.

``ArcStore`` encodes a flow network (or any weighted digraph) as paired
residual arcs in flat numpy arrays: original arc ``e`` gets id ``2e`` and
its zero-capacity residual twin id ``2e + 1``, so the reverse of any arc
is a single XOR away.  Per-arc attributes live in contiguous arrays
(``head``, ``tail``, ``cap0``), and a CSR-style index (``indptr`` +
``arcs``, arc ids grouped by tail node) provides O(1) slicing of a
node's incident arcs.  The store is built once from
``WeightedDiGraph.to_csr()`` — :func:`arc_store_for` memoizes it on the
graph's cached CSR snapshot, so repeated solves (max-flow, then min-cut,
then a parametric search) pay construction exactly once; graph mutations
invalidate the CSR cache and therefore the store.

On top of the arrays, this module provides the vectorized primitives the
solvers share:

* :func:`bfs_levels` — frontier-batched level BFS over residual arcs
  (the level graph of Dinic, reachability for min-cut);
* :func:`bfs_parents` — the same BFS recording discovery arcs (the
  augmenting-path search of Edmonds–Karp);
* :meth:`ArcStore.residual` — a fresh residual capacity vector, the one
  place residual state is created (retiring the per-solver
  ``ResidualGraph`` construction);
* :meth:`ArcStore.extract_flow_arrays` — per-arc flows of the forward
  arcs as ``(tails, heads, flows)`` arrays, ``flow = cap0 - cap``.

The traversals dispatch through the backend layer
(:mod:`repro.core.backends`): every solver entry point takes
``backend=`` and routes its BFS through
``backend.solve_bfs_levels`` / ``backend.solve_bfs_parents`` — the
numpy reference lives in ``core/backends/solver_numpy.py``, and the
numba backend fuses the whole frontier loop into one compiled pass
with identical discovery order (bit-identical levels and parents).
:func:`resolve_solver_backend` is the shared resolution rule: an
explicit request wins, otherwise the *process default*
(``set_default_backend`` / ``REPRO_BACKEND`` / auto) applies — the
same backend the coloring kernels are using.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends import Backend, default_backend, resolve_backend
from repro.core.kernels import take_ranges

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.digraph import WeightedDiGraph

_EPS = 1e-12


def resolve_solver_backend(backend: "str | Backend | None") -> Backend:
    """Backend for a solver call: explicit request, else process default.

    ``resolve_backend(None)`` consults only the environment, which would
    silently drop a CLI-level ``set_default_backend`` — so ``None`` maps
    to :func:`default_backend` here, keeping the solver tier on whatever
    the rest of the process (Rothko included) resolved to.
    """
    if backend is None:
        return default_backend()
    return resolve_backend(backend)

#: the two exact-solver implementations every dispatching entry point accepts
ENGINES = ("arcstore", "python")


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def unique_int(values: np.ndarray) -> np.ndarray:
    """Sorted unique of an int array (sort + diff mask).

    Several times faster than ``np.unique``'s hash path on the mid-size
    index arrays the BFS frontiers produce, and the solvers dedupe a
    frontier on every level — this is their hottest scalar kernel.
    """
    if values.size <= 1:
        return values
    values = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


class ArcStore:
    """Flat paired-arc residual representation of a weighted digraph.

    Forward arc ``2e`` carries the original capacity; its residual twin
    ``2e + 1`` starts at zero.  ``arcs[indptr[u]:indptr[u + 1]]`` lists
    every arc id (forward and reverse) whose tail is ``u`` — the
    residual adjacency all solvers traverse.
    """

    __slots__ = ("n", "n_forward", "head", "tail", "cap0", "indptr", "arcs",
                 "tail_by_arc", "head_by_arc", "__weakref__")

    def __init__(
        self,
        n: int,
        tails: np.ndarray,
        heads: np.ndarray,
        capacities: np.ndarray,
    ) -> None:
        m = len(capacities)
        self.n = int(n)
        self.n_forward = m
        head = np.empty(2 * m, dtype=np.int64)
        tail = np.empty(2 * m, dtype=np.int64)
        cap0 = np.zeros(2 * m, dtype=np.float64)
        head[0::2] = heads
        head[1::2] = tails
        tail[0::2] = tails
        tail[1::2] = heads
        cap0[0::2] = capacities
        self.head = head
        self.tail = tail
        self.cap0 = cap0
        # Arc ids grouped by tail: stable argsort keeps, within each
        # node, the original arc order (forward arcs before the reverse
        # twins of later arcs), matching iteration order of the legacy
        # adjacency lists.
        self.arcs = np.argsort(tail, kind="stable")
        counts = np.bincount(tail, minlength=n)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        # Endpoints in tail-grouped (``arcs``) order: per-phase masks
        # over the adjacency then gather sequentially instead of
        # permuting a mask computed in arc-id order.
        self.tail_by_arc = tail[self.arcs]
        self.head_by_arc = head[self.arcs]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, matrix: sp.csr_matrix) -> "ArcStore":
        """Build from a square CSR adjacency of positive capacities."""
        matrix = sp.csr_matrix(matrix)
        n = matrix.shape[0]
        tails = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(matrix.indptr)
        )
        heads = matrix.indices.astype(np.int64)
        capacities = matrix.data.astype(np.float64)
        positive = capacities > 0
        if not positive.all():
            tails = tails[positive]
            heads = heads[positive]
            capacities = capacities[positive]
        return cls(n, tails, heads, capacities)

    # ------------------------------------------------------------------
    # residual state
    # ------------------------------------------------------------------
    def residual(self) -> np.ndarray:
        """A fresh residual capacity vector (one per solver run).

        This is the single construction point for residual state: every
        arcstore solver starts from ``store.residual()`` and mutates its
        own copy, so the store itself stays immutable and shareable.
        """
        return self.cap0.copy()

    # ------------------------------------------------------------------
    # flow extraction
    # ------------------------------------------------------------------
    def extract_flow_arrays(
        self, cap: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward-arc flows of a final residual state, as flat arrays.

        ``flow(e) = cap0(e) - cap(e)`` on forward arcs; the paired-arc
        invariant ``cap(2e) + cap(2e + 1) = cap0(2e)`` keeps it
        non-negative.  Only strictly positive flows are returned.
        """
        pushed = self.cap0[0::2] - cap[0::2]
        mask = pushed > 0
        return (
            self.tail[0::2][mask],
            self.head[0::2][mask],
            pushed[mask],
        )

    def extract_flow(self, cap: np.ndarray) -> Dict[Tuple[int, int], float]:
        """Dict view of :meth:`extract_flow_arrays` (compat surface)."""
        tails, heads, flows = self.extract_flow_arrays(cap)
        return {
            (int(u), int(v)): float(f)
            for u, v, f in zip(tails, heads, flows)
        }


#: one ArcStore per graph, validated against the graph's cached CSR
#: snapshot by identity: a mutation invalidates the CSR (a new object is
#: built on the next to_csr()), which lazily invalidates the store too —
#: no explicit invalidation hook needed
_STORE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def arc_store_for(graph: "WeightedDiGraph") -> ArcStore:
    """The (memoized) arc store of a graph's current CSR snapshot."""
    matrix = graph.to_csr()
    cached = _STORE_CACHE.get(graph)
    if cached is not None and cached[0] is matrix:
        return cached[1]
    store = ArcStore.from_csr(matrix)
    try:
        _STORE_CACHE[graph] = (matrix, store)
    except TypeError:  # pragma: no cover - unweakrefable graph type
        pass
    return store


# ----------------------------------------------------------------------
# vectorized traversals
# ----------------------------------------------------------------------
def _frontier_arcs(
    store: ArcStore, cap: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All residual arcs (cap > eps) leaving the frontier nodes."""
    starts = store.indptr[frontier]
    counts = store.indptr[frontier + 1] - starts
    arcs = store.arcs[take_ranges(starts, counts)]
    return arcs[cap[arcs] > _EPS]


def bfs_levels(
    store: ArcStore,
    cap: np.ndarray,
    source: int,
    sink: int | None = None,
    backend: "str | Backend | None" = None,
) -> np.ndarray:
    """Frontier-batched BFS levels of the residual graph.

    Unreached nodes get ``-1``.  With a ``sink``, expansion stops as
    soon as the sink's level is assigned (the whole level is finished
    first, so every shortest admissible arc survives — exactly what
    Dinic's level graph needs).  Dispatches through the backend layer;
    levels are unique, so every backend agrees bit-for-bit.
    """
    return resolve_solver_backend(backend).solve_bfs_levels(
        store.indptr,
        store.arcs,
        store.head,
        cap,
        store.n,
        int(source),
        -1 if sink is None else int(sink),
    )


def bfs_parents(
    store: ArcStore,
    cap: np.ndarray,
    source: int,
    sink: int,
    backend: "str | Backend | None" = None,
) -> np.ndarray | None:
    """Shortest-path discovery arcs (Edmonds–Karp's BFS), or None.

    Returns ``parent_arc[v]`` = the arc that first reached ``v`` on some
    shortest residual path from the source — the *first occurrence* in
    (ascending frontier, adjacency position) order, an ordering every
    backend reproduces exactly; ``None`` when the sink is unreachable.
    """
    parent_arc = resolve_solver_backend(backend).solve_bfs_parents(
        store.indptr,
        store.arcs,
        store.head,
        store.tail,
        cap,
        store.n,
        int(source),
        int(sink),
    )
    if parent_arc[sink] < 0:
        return None
    return parent_arc
