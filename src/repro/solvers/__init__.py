"""CSR-native solver core: the flat arc-store engine for exact solving.

This package is the exact tier's compute substrate.  ``repro.flow`` and
``repro.centrality`` are thin views over it (their public functions
accept ``engine="arcstore" | "python"``; the legacy pure-Python solvers
are retained as the ``python`` engine for cross-checking).

* :mod:`repro.solvers.arcstore` — :class:`ArcStore` (paired residual
  arcs in contiguous arrays + CSR arc index) and the shared vectorized
  BFS primitives;
* :mod:`repro.solvers.maxflow` — Dinic, highest-label push-relabel,
  Edmonds–Karp, and min-cut over the store;
* :mod:`repro.solvers.betweenness` — frontier-batched Brandes and the
  array-heap Dijkstra variant for weighted graphs.
"""

from repro.solvers.arcstore import (
    ENGINES,
    ArcStore,
    arc_store_for,
    bfs_levels,
    bfs_parents,
    check_engine,
    resolve_solver_backend,
)
from repro.solvers.betweenness import (
    betweenness_centrality_csr,
    single_source_dependencies_csr,
)
from repro.solvers.maxflow import dinic, edmonds_karp, min_cut, push_relabel

__all__ = [
    "ENGINES",
    "ArcStore",
    "arc_store_for",
    "bfs_levels",
    "bfs_parents",
    "check_engine",
    "resolve_solver_backend",
    "betweenness_centrality_csr",
    "single_source_dependencies_csr",
    "dinic",
    "edmonds_karp",
    "min_cut",
    "push_relabel",
]
