"""Statistical helpers: error metrics, rank correlation, and split means.

The paper's evaluation uses two accuracy metrics:

* **relative (ratio) error** ``max(v / v_hat, v_hat / v)`` for max-flow and
  linear programs, where 1.0 is a perfect score (Sec. 6.1);
* **Spearman's rank correlation** between exact and approximate betweenness
  centrality vectors, where 1.0 is a perfect score.

Both are implemented here from first principles (the Spearman implementation
is cross-checked against :func:`scipy.stats.spearmanr` in the test suite).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def ratio_error(actual: float, predicted: float) -> float:
    """Return the paper's relative error ``max(v/v_hat, v_hat/v)``.

    Defined in Sec. 6.1 for max-flow and linear-optimization tasks; the
    ideal score is ``1.0``.  Signs must agree; a zero on exactly one side
    yields ``inf`` (the approximation missed entirely).
    """
    if actual == 0.0 and predicted == 0.0:
        return 1.0
    if actual == 0.0 or predicted == 0.0:
        return float("inf")
    ratio = actual / predicted
    if ratio < 0.0:
        return float("inf")
    return max(ratio, 1.0 / ratio)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used to aggregate ratio errors across datasets, mirroring the paper's
    "geometric-mean error" summary statistic.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(array <= 0.0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))


def log_mean_threshold(values: np.ndarray) -> float:
    """Shifted geometric mean ``expm1(mean(log1p(values)))``.

    This is the split threshold used by Rothko's geometric-mean mode
    (Sec. 5.2).  The shift by one keeps zero degrees well-defined: a plain
    geometric mean collapses to zero whenever any member has degree zero,
    which would make the split degenerate.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("threshold of an empty degree vector")
    if np.any(array < 0.0):
        raise ValueError("geometric-mean split requires non-negative degrees")
    return float(np.expm1(np.mean(np.log1p(array))))


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Return average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    sorted_values = values[order]
    i = 0
    n = len(values)
    while i < n:
        j = i
        while j + 1 < n and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        # Positions i..j (0-based) share the average of ranks i+1..j+1.
        average_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = average_rank
        i = j + 1
    return ranks


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rank correlation coefficient with tie handling.

    Computed as the Pearson correlation of the (average-tied) ranks, which
    is the textbook definition and what ``scipy.stats.spearmanr`` returns.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError(f"length mismatch: {ax.shape} vs {ay.shape}")
    if ax.size < 2:
        raise ValueError("spearman_rho requires at least two observations")
    rx = _rank_with_ties(ax)
    ry = _rank_with_ties(ay)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0.0:
        # One of the vectors is constant; correlation is undefined.  By
        # convention we return 1.0 when both are constant (identical
        # orderings) and 0.0 otherwise.
        return 1.0 if (rx == 0).all() and (ry == 0).all() else 0.0
    return float((rx * ry).sum() / denom)


def top_k_overlap(x: Sequence[float], y: Sequence[float], k: int) -> float:
    """Fraction of the top-``k`` items (by score) shared between two vectors.

    A secondary accuracy metric for centrality experiments: how many of the
    truly most-central vertices the approximation also ranks in its top k.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError(f"length mismatch: {ax.shape} vs {ay.shape}")
    if not 0 < k <= ax.size:
        raise ValueError(f"k must be in [1, {ax.size}], got {k}")
    top_x = set(np.argsort(-ax, kind="stable")[:k].tolist())
    top_y = set(np.argsort(-ay, kind="stable")[:k].tolist())
    return len(top_x & top_y) / k
