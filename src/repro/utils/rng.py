"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an existing :class:`numpy.random.Generator`.
:func:`ensure_rng` normalizes all three into a ``Generator`` so downstream
code never touches global random state, which keeps experiments reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed seed,
        or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the children are statistically independent
    regardless of how many draws each one performs.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
