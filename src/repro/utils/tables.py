"""Plain-text table rendering for the experiment harness.

The benchmark entry points print paper-style rows (Tables 1, 4, 5, 6); this
module renders them as aligned ASCII tables so the output is directly
comparable to the paper's tables without any plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _stringify(value: Any) -> str:
    """Render a cell: floats get a compact human-friendly format."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned ASCII table."""
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    lines = []
    if title:
        lines.append(title)
    header_line = render_line(list(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    lines.extend(render_line(row) for row in cells)
    return "\n".join(lines)


def render_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Format a list of dict rows; columns default to first row's keys."""
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    body = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(columns, body, title=title)
