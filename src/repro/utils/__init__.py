"""Shared utilities: seeded RNG helpers, timing, stats, and table rendering."""

from repro.utils.labels import coerce_label
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import (
    geometric_mean,
    log_mean_threshold,
    ratio_error,
    spearman_rho,
    top_k_overlap,
)
from repro.utils.tables import format_table, render_rows
from repro.utils.timing import Stopwatch, time_call

__all__ = [
    "coerce_label",
    "ensure_rng",
    "spawn_rngs",
    "geometric_mean",
    "log_mean_threshold",
    "ratio_error",
    "spearman_rho",
    "top_k_overlap",
    "format_table",
    "render_rows",
    "Stopwatch",
    "time_call",
]
