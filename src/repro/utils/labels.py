"""Node-label coercion shared by edge-list files and update traces.

Both surfaces serialize labels with ``str`` and must resolve them back
to the *same* objects, or replays create phantom string/int twin nodes.
"""

from __future__ import annotations

from typing import Hashable


def coerce_label(token: str) -> Hashable:
    """Int when the token parses as one, else the string itself."""
    try:
        return int(token)
    except ValueError:
        return token
