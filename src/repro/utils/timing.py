"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


class Stopwatch:
    """A restartable wall-clock stopwatch with lap support.

    Used by the responsiveness experiment (Table 6) to record the
    time-to-first-result and the inter-update latency of the anytime
    Rothko loop.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.laps: list[float] = []

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch and clear recorded laps."""
        self._start = time.perf_counter()
        self.laps = []
        return self

    def lap(self) -> float:
        """Record and return the elapsed time since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.lap() called before start()")
        elapsed = time.perf_counter() - self._start
        self.laps.append(elapsed)
        return elapsed

    def elapsed(self) -> float:
        """Return elapsed seconds since :meth:`start` without recording."""
        if self._start is None:
            raise RuntimeError("Stopwatch.elapsed() called before start()")
        return time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class Timings:
    """Accumulates named wall-clock measurements for an experiment row."""

    entries: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.entries[name] = self.entries.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.entries.values())
