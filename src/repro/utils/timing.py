"""Wall-clock timing helpers used by the experiment harness and the
compress–solve–lift pipeline.

:meth:`StageTimer.stage` is re-homed on the observability tracer: each
stage opens a ``pipeline.<name>`` span on the active recorder (a no-op
when tracing is disabled), so pipeline stage timings show up in trace
exports without any caller changes.  The accumulated
:class:`StageTimings` dataclass API is unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Tuple

from repro.obs import trace as _trace


class Stopwatch:
    """A restartable wall-clock stopwatch with lap support.

    Used by the responsiveness experiment (Table 6) to record the
    time-to-first-result and the inter-update latency of the anytime
    Rothko loop.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.laps: list[float] = []

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch and clear recorded laps."""
        self._start = time.perf_counter()
        self.laps = []
        return self

    def lap(self) -> float:
        """Record and return the elapsed time since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.lap() called before start()")
        elapsed = time.perf_counter() - self._start
        self.laps.append(elapsed)
        return elapsed

    def elapsed(self) -> float:
        """Return elapsed seconds since :meth:`start` without recording."""
        if self._start is None:
            raise RuntimeError("Stopwatch.elapsed() called before start()")
        return time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class StageTimings:
    """Per-stage wall-clock seconds of one compress–solve–lift run.

    The shared timing record of the pipeline: every task result — and,
    via compatibility properties, the per-application
    ``Approx*Result`` dataclasses — carries exactly one of these
    instead of ad-hoc ``*_seconds`` fields.

    ``coloring`` covers the (incremental) Rothko work attributable to
    the run, ``reduce`` the reduced-problem construction, ``solve`` the
    reduced solve, and ``lift`` mapping the solution back to the
    original problem.  Stages that do not apply stay ``0.0``.
    """

    coloring: float = 0.0
    reduce: float = 0.0
    solve: float = 0.0
    lift: float = 0.0

    @property
    def total(self) -> float:
        return self.coloring + self.reduce + self.solve + self.lift


class StageTimer:
    """Accumulates :class:`StageTimings` stages via a context manager.

    >>> timer = StageTimer()
    >>> with timer.stage("solve"):
    ...     pass
    >>> timer.freeze().solve >= 0.0
    True
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            with _trace.span(f"pipeline.{name}"):
                yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        if name not in StageTimings.__dataclass_fields__:
            raise ValueError(f"unknown pipeline stage {name!r}")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def freeze(self) -> StageTimings:
        return StageTimings(**self._seconds)


@dataclass
class Timings:
    """Accumulates named wall-clock measurements for an experiment row."""

    entries: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.entries[name] = self.entries.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.entries.values())
