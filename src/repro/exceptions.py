"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown node, bad weight...)."""


class StoreError(GraphError):
    """An on-disk edge store is missing, corrupt, or fails verification.

    Subclasses :class:`GraphError` so existing edge-store handlers keep
    working; the narrower type lets callers distinguish "bad store on
    disk" (retry after re-ingest / resume) from in-memory graph misuse.
    """


class FaultInjected(ReproError):
    """Raised by an armed :class:`repro.resilience.FaultPlan` rule.

    Tests and CI use it to simulate component failures at named
    injection points; production code never raises it (the default
    fault plan is a no-op).
    """


class ColoringError(ReproError):
    """Raised when a partition/coloring violates its invariants."""


class LPError(ReproError):
    """Base class for linear-programming errors."""


class LPInfeasibleError(LPError):
    """The linear program has no feasible point."""


class LPUnboundedError(LPError):
    """The linear program's objective is unbounded above."""


class SolverError(ReproError):
    """A numerical solver failed to converge or was misconfigured."""


class FlowError(ReproError):
    """Raised for malformed flow networks (missing source/sink, bad capacity)."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be constructed or is unknown."""
