"""scipy (HiGHS) backend: the cross-validation oracle for our solvers."""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.exceptions import LPError, LPInfeasibleError, LPUnboundedError
from repro.lp.model import LinearProgram


def scipy_solve(lp: LinearProgram) -> tuple[float, np.ndarray]:
    """Solve ``max c x, A x <= b, x >= 0`` with ``scipy.optimize.linprog``.

    Returns ``(optimal_value, x)``; raises the library's LP exceptions on
    infeasible/unbounded problems.
    """
    result = scipy.optimize.linprog(
        -lp.c,
        A_ub=lp.a_matrix,
        b_ub=lp.b,
        bounds=(0, None),
        method="highs",
    )
    if result.status == 2:
        raise LPInfeasibleError(f"{lp.name or 'LP'}: {result.message}")
    if result.status == 3:
        raise LPUnboundedError(f"{lp.name or 'LP'}: {result.message}")
    if not result.success:
        raise LPError(f"{lp.name or 'LP'}: linprog failed: {result.message}")
    return float(-result.fun), np.asarray(result.x, dtype=np.float64)
