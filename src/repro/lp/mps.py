"""Minimal MPS reader/writer.

Lets real Mittelmann/netlib instances (the paper's Table 3) be dropped in
whenever files are available locally.  Supported subset: ``NAME``,
``OBJSENSE``, ``ROWS`` (N/L/G/E), ``COLUMNS``, ``RHS``, ``BOUNDS``
(UP/LO/FX with LO = 0), free-format whitespace.  Everything is normalized
into the canonical ``max c x, A x <= b, x >= 0`` form:

* ``G`` rows are negated; ``E`` rows become a pair of inequalities;
* minimization objectives are negated;
* ``UP`` bounds become extra constraint rows; nonzero ``LO``/``FX``
  bounds and ``RANGES`` are rejected loudly rather than silently
  mis-read.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.exceptions import LPError
from repro.lp.model import LinearProgram


def read_mps(path: str | os.PathLike) -> LinearProgram:
    """Parse an MPS file into a :class:`LinearProgram`."""
    row_sense: "OrderedDict[str, str]" = OrderedDict()
    objective_row: str | None = None
    columns: "OrderedDict[str, dict[str, float]]" = OrderedDict()
    rhs: dict[str, float] = {}
    upper_bounds: dict[str, float] = {}
    maximize = False
    section = None

    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            if raw.startswith("*") or not raw.strip():
                continue
            if not raw[0].isspace():
                parts = raw.split()
                section = parts[0].upper()
                if section == "OBJSENSE" and len(parts) > 1:
                    maximize = parts[1].upper() in ("MAX", "MAXIMIZE")
                    section = "OBJSENSE_DONE"
                if section == "ENDATA":
                    break
                continue
            parts = raw.split()
            if section == "OBJSENSE":
                maximize = parts[0].upper() in ("MAX", "MAXIMIZE")
            elif section == "ROWS":
                sense, name = parts[0].upper(), parts[1]
                if sense == "N":
                    if objective_row is None:
                        objective_row = name
                elif sense in ("L", "G", "E"):
                    row_sense[name] = sense
                else:
                    raise LPError(f"{path}:{line_number}: bad row sense {sense}")
            elif section == "COLUMNS":
                if "MARKER" in raw:
                    raise LPError(
                        f"{path}:{line_number}: integer markers unsupported"
                    )
                column = parts[0]
                entries = columns.setdefault(column, {})
                for row_name, value in zip(parts[1::2], parts[2::2]):
                    entries[row_name] = float(value)
            elif section == "RHS":
                for row_name, value in zip(parts[1::2], parts[2::2]):
                    rhs[row_name] = float(value)
            elif section == "BOUNDS":
                kind, column = parts[0].upper(), parts[2]
                value = float(parts[3]) if len(parts) > 3 else 0.0
                if kind == "UP":
                    upper_bounds[column] = value
                elif kind in ("LO", "FX"):
                    if value != 0.0:
                        raise LPError(
                            f"{path}:{line_number}: nonzero {kind} bound "
                            "unsupported"
                        )
                    if kind == "FX":
                        upper_bounds[column] = 0.0
                elif kind == "MI" or kind == "FR":
                    raise LPError(
                        f"{path}:{line_number}: free variables unsupported"
                    )
                else:
                    raise LPError(f"{path}:{line_number}: bound {kind}")
            elif section == "RANGES":
                raise LPError(f"{path}:{line_number}: RANGES unsupported")

    if objective_row is None:
        raise LPError(f"{path}: no objective (N) row")

    column_names = list(columns.keys())
    column_index = {name: j for j, name in enumerate(column_names)}
    n = len(column_names)

    rows_out: list[tuple[dict[int, float], float]] = []
    for row_name, sense in row_sense.items():
        coefficients: dict[int, float] = {}
        for column_name, entries in columns.items():
            if row_name in entries:
                coefficients[column_index[column_name]] = entries[row_name]
        bound = rhs.get(row_name, 0.0)
        if sense == "L":
            rows_out.append((coefficients, bound))
        elif sense == "G":
            rows_out.append(
                ({j: -v for j, v in coefficients.items()}, -bound)
            )
        else:  # E: two inequalities
            rows_out.append((coefficients, bound))
            rows_out.append(
                ({j: -v for j, v in coefficients.items()}, -bound)
            )
    for column_name, upper in upper_bounds.items():
        rows_out.append(({column_index[column_name]: 1.0}, upper))

    data, row_ids, col_ids = [], [], []
    b = np.empty(len(rows_out))
    for i, (coefficients, bound) in enumerate(rows_out):
        b[i] = bound
        for j, value in coefficients.items():
            row_ids.append(i)
            col_ids.append(j)
            data.append(value)
    a_matrix = sp.csr_matrix(
        (data, (row_ids, col_ids)), shape=(len(rows_out), n)
    )
    c = np.zeros(n)
    for column_name, entries in columns.items():
        if objective_row in entries:
            c[column_index[column_name]] = entries[objective_row]
    if not maximize:
        c = -c
    name = os.path.splitext(os.path.basename(str(path)))[0]
    return LinearProgram(a_matrix, b, c, name=name)


def write_mps(lp: LinearProgram, path: str | os.PathLike) -> None:
    """Write the LP as a maximization MPS file (all rows ``L``)."""
    coo = lp.a_matrix.tocoo()
    entries_by_column: dict[int, list[tuple[int, float]]] = {}
    for i, j, value in zip(coo.row, coo.col, coo.data):
        entries_by_column.setdefault(int(j), []).append((int(i), float(value)))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"NAME          {lp.name or 'REPRO'}\n")
        handle.write("OBJSENSE\n    MAX\n")
        handle.write("ROWS\n")
        handle.write(" N  COST\n")
        for i in range(lp.n_rows):
            handle.write(f" L  R{i}\n")
        handle.write("COLUMNS\n")
        for j in range(lp.n_cols):
            if lp.c[j] != 0.0:
                handle.write(f"    X{j}  COST  {lp.c[j]:.17g}\n")
            for i, value in entries_by_column.get(j, []):
                handle.write(f"    X{j}  R{i}  {value:.17g}\n")
        handle.write("RHS\n")
        for i in range(lp.n_rows):
            if lp.b[i] != 0.0:
                handle.write(f"    RHS  R{i}  {lp.b[i]:.17g}\n")
        handle.write("ENDATA\n")
