"""Quasi-stable LP reduction (Sec. 4.1, Eqs. 3-6).

The constraint matrix, right-hand side and objective are packed into the
extended matrix **A** (Eq. 3), viewed as a weighted bipartite graph between
the ``m+1`` rows and ``n+1`` columns.  Rothko colors this graph with the
last row (the objective) and last column (the RHS) pinned to singleton
colors; the color classes then define the reduced LP (Eq. 6):

    A_hat(r, s) = A(P_r, Q_s) / sqrt(|P_r| |Q_s|)
    b_hat(r)    = b(P_r) / sqrt(|P_r|)
    c_hat(s)    = c(Q_s) / sqrt(|Q_s|)

Theorem 2: for a well-behaved LP there are ``q0, Delta`` such that any
q-quasi-stable coloring with ``q <= q0`` satisfies
``|OPT - OPT_hat| <= q * Delta``; for a stable coloring (q = 0) the
optima agree exactly — the Grohe et al. result, recovered by the
``mode="grohe"`` variant ``A(P_r, Q_s) / |Q_s|`` (Sec. 4.1 discussion).

Solutions lift back by ``x = V^T x_hat`` (Eq. 10): each original column
gets its color's reduced value scaled by ``1/sqrt(|Q_s|)`` (sqrt mode) or
copied (grohe mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring, first_occurrence_values
from repro.core.rothko import Rothko, RothkoResult
from repro.exceptions import LPError
from repro.lp.model import LinearProgram
from repro.lp.solve import LPSolution, solve_lp
from repro.utils.timing import StageTimings

MODES = ("sqrt", "grohe")


@dataclass(frozen=True)
class LPReduction:
    """A colored, reduced LP plus everything needed to lift solutions."""

    original: LinearProgram
    reduced: LinearProgram
    row_coloring: Coloring  # over the m+1 extended rows
    col_coloring: Coloring  # over the n+1 extended columns
    mode: str
    max_q_err: float

    @property
    def n_colors(self) -> int:
        """Total colors over rows and columns (incl. the two pinned)."""
        return self.row_coloring.n_colors + self.col_coloring.n_colors

    @property
    def compression_ratio(self) -> float:
        original_size = self.original.n_rows * self.original.n_cols
        reduced_size = max(self.reduced.n_rows * self.reduced.n_cols, 1)
        return original_size / reduced_size

    def lift(self, x_hat: np.ndarray) -> np.ndarray:
        """Lift a reduced solution to the original variable space.

        For a stable coloring the lift is exactly feasible and preserves
        the objective: ``x_j = x_hat_s / sqrt(|Q_s|)`` in sqrt mode and
        ``x_j = x_hat_s / |Q_s|`` in grohe mode (spreading the class value
        evenly over its members).
        """
        x_hat = np.asarray(x_hat, dtype=np.float64)
        if x_hat.shape != (self.reduced.n_cols,):
            raise LPError(
                f"x_hat has shape {x_hat.shape}, expected "
                f"({self.reduced.n_cols},)"
            )
        n = self.original.n_cols
        # Reduced column r corresponds to the r-th non-pinned column color.
        rhs_color = self.col_coloring.color_of(n)
        col_colors = [
            color
            for color in range(self.col_coloring.n_colors)
            if color != rhs_color
        ]
        value_of_color = dict(zip(col_colors, x_hat))
        sizes = self.col_coloring.sizes
        labels = self.col_coloring.labels[:n]
        x = np.zeros(n)
        for j in range(n):
            color = int(labels[j])
            if self.mode == "sqrt":
                x[j] = value_of_color[color] / np.sqrt(sizes[color])
            else:
                x[j] = value_of_color[color] / sizes[color]
        return x


def initial_bipartite_coloring(
    m: int, n: int
) -> tuple[Coloring, tuple[int, int]]:
    """Initial partition {rows} {obj row} {columns} {RHS column}.

    Returns the coloring plus the (canonical) color ids of the two pinned
    singletons — Coloring relabels by first occurrence, so callers must
    not assume the ids they assigned survive construction.
    """
    labels = np.empty(m + n + 2, dtype=np.int64)
    labels[:m] = 0
    labels[m] = 2
    labels[m + 1 : m + 1 + n] = 1
    labels[m + 1 + n] = 3
    coloring = Coloring(labels)
    frozen = (coloring.color_of(m), coloring.color_of(m + 1 + n))
    return coloring, frozen


def color_lp(
    lp: LinearProgram,
    n_colors: int | None = None,
    q: float | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> RothkoResult:
    """Color the extended matrix's bipartite graph with Rothko.

    ``alpha=1, beta=0`` is the paper's LP weighting ("prioritizes colors
    with more rows", Sec. 5.2).  The split threshold is arithmetic because
    LP matrices may carry negative weights.
    """
    adjacency = lp.bipartite_adjacency()
    initial, frozen = initial_bipartite_coloring(lp.n_rows, lp.n_cols)
    engine = Rothko(
        adjacency,
        initial=initial,
        alpha=alpha,
        beta=beta,
        split_mean="arithmetic",
        frozen=frozen,
    )
    return engine.run(
        max_colors=n_colors, q_tolerance=q if q is not None else 0.0
    )


def _coerce_colorings(
    lp: LinearProgram, coloring
) -> tuple[Coloring, Coloring, np.ndarray | None, np.ndarray | None]:
    """Normalize the ``coloring`` argument of :func:`reduce_lp`.

    Accepts a bipartite :class:`Coloring` over the extended matrix's
    ``m+n+2`` nodes or an explicit ``(row_coloring, col_coloring)``
    pair.  Returns the split colorings plus — for the bipartite form —
    the maps from canonical row/column color ids back to bipartite ids
    (needed to index a precomputed block-weight matrix).
    """
    if isinstance(coloring, Coloring):
        expected = lp.n_rows + lp.n_cols + 2
        if coloring.n != expected:
            raise LPError(
                f"bipartite coloring covers {coloring.n} nodes, expected "
                f"{expected} (extended matrix rows + columns)"
            )
        m1 = lp.n_rows + 1
        row_labels = coloring.labels[:m1]
        col_labels = coloring.labels[m1:]
        return (
            Coloring(row_labels),
            Coloring(col_labels),
            first_occurrence_values(row_labels),
            first_occurrence_values(col_labels),
        )
    try:
        row_coloring, col_coloring = coloring
    except (TypeError, ValueError) as exc:
        raise LPError(
            "coloring must be a bipartite Coloring or a "
            "(row_coloring, col_coloring) pair"
        ) from exc
    return row_coloring, col_coloring, None, None


def reduce_lp(
    lp: LinearProgram,
    n_colors: int | None = None,
    q: float | None = None,
    mode: str = "sqrt",
    alpha: float = 1.0,
    beta: float = 0.0,
    coloring=None,
    block_weights: np.ndarray | None = None,
    max_q_err: float | None = None,
) -> LPReduction:
    """Build the reduced LP (Eq. 6), coloring with Rothko if needed.

    The single entry point for the LP reduction:

    * with ``coloring=None`` Rothko colors the extended matrix's
      bipartite graph first (``n_colors`` counts *total* colors over
      rows and columns, including the two pinned singletons);
    * ``coloring`` accepts a precomputed coloring — either a bipartite
      :class:`Coloring` over the ``m+n+2`` extended nodes or an explicit
      ``(row_coloring, col_coloring)`` pair — and skips Rothko
      (``n_colors``/``q``/``alpha``/``beta`` are then ignored).

    ``block_weights`` (bipartite form only) supplies the extended
    matrix's block sums ``W = S^T A S`` in the bipartite coloring's
    canonical id order; the progressive pipeline runner maintains it
    incrementally so multi-budget sweeps skip the indicator triple
    product.  ``max_q_err`` likewise short-circuits the from-scratch
    q-error evaluation when the caller already knows it.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if coloring is None:
        rothko = color_lp(lp, n_colors=n_colors, q=q, alpha=alpha, beta=beta)
        coloring = rothko.coloring
    row_coloring, col_coloring, row_ids, col_ids = _coerce_colorings(
        lp, coloring
    )
    if block_weights is not None and row_ids is None:
        raise LPError(
            "block_weights requires the bipartite coloring form (the "
            "id maps of a (row, col) pair are unknown)"
        )

    m, n = lp.n_rows, lp.n_cols
    if row_coloring.n != m + 1:
        raise LPError(
            f"row coloring covers {row_coloring.n} rows, expected {m + 1}"
        )
    if col_coloring.n != n + 1:
        raise LPError(
            f"column coloring covers {col_coloring.n} cols, expected {n + 1}"
        )
    obj_color = row_coloring.color_of(m)
    rhs_color = col_coloring.color_of(n)
    if row_coloring.sizes[obj_color] != 1:
        raise LPError("objective row must be a singleton color")
    if col_coloring.sizes[rhs_color] != 1:
        raise LPError("RHS column must be a singleton color")

    # Colors of the real rows/columns, in a stable order excluding pins.
    row_colors = [
        color for color in range(row_coloring.n_colors) if color != obj_color
    ]
    col_colors = [
        color for color in range(col_coloring.n_colors) if color != rhs_color
    ]

    if block_weights is not None:
        # The maintained W already holds every extended-matrix block sum
        # (rows x columns, including the b column and c row): slice it
        # instead of re-aggregating.
        block_full = np.asarray(block_weights)[np.ix_(row_ids, col_ids)]
        sub = block_full[np.ix_(row_colors, col_colors)]
        b_sub = block_full[row_colors, rhs_color]
        c_sub = block_full[obj_color, col_colors]
    else:
        # Aggregate A over blocks: S_rows^T A S_cols, real colors only.
        row_indicator = sp.csr_matrix(
            (
                np.ones(m),
                (row_coloring.labels[:m], np.arange(m)),
            ),
            shape=(row_coloring.n_colors, m),
        )
        col_indicator = sp.csr_matrix(
            (
                np.ones(n),
                (np.arange(n), col_coloring.labels[:n]),
            ),
            shape=(n, col_coloring.n_colors),
        )
        block = (row_indicator @ lp.a_matrix @ col_indicator).toarray()
        b_block = row_indicator @ lp.b
        c_block = lp.c @ col_indicator
        sub = block[np.ix_(row_colors, col_colors)]
        b_sub = b_block[row_colors]
        c_sub = np.asarray(c_block).ravel()[col_colors]

    row_sizes = row_coloring.sizes[row_colors].astype(np.float64)
    col_sizes = col_coloring.sizes[col_colors].astype(np.float64)

    if mode == "sqrt":
        a_hat = sub / np.sqrt(np.outer(row_sizes, col_sizes))
        b_hat = b_sub / np.sqrt(row_sizes)
        c_hat = c_sub / np.sqrt(col_sizes)
    else:  # grohe
        a_hat = sub / col_sizes[None, :]
        b_hat = b_sub
        c_hat = c_sub / col_sizes

    reduced = LinearProgram(
        sp.csr_matrix(a_hat),
        b_hat,
        c_hat,
        name=f"{lp.name or 'lp'}-reduced-{len(row_colors)}x{len(col_colors)}",
    )
    if max_q_err is None:
        from repro.core.qerror import max_q_err as _max_q_err

        # q-error of the bipartite coloring on the extended matrix.
        labels = np.concatenate(
            [
                row_coloring.labels,
                col_coloring.labels + row_coloring.n_colors,
            ]
        )
        max_q_err = _max_q_err(lp.bipartite_adjacency(), Coloring(labels))
    return LPReduction(
        original=lp,
        reduced=reduced,
        row_coloring=row_coloring,
        col_coloring=col_coloring,
        mode=mode,
        max_q_err=max_q_err,
    )


@dataclass(frozen=True)
class ApproxLPResult:
    """End-to-end output of :func:`approx_lp_opt`."""

    value: float
    reduction: LPReduction
    solution: LPSolution
    x_lifted: np.ndarray
    timings: StageTimings

    @property
    def coloring_seconds(self) -> float:
        return self.timings.coloring

    @property
    def solve_seconds(self) -> float:
        return self.timings.solve

    @property
    def total_seconds(self) -> float:
        return self.timings.total


def approx_lp_opt(
    lp: LinearProgram,
    n_colors: int | None = None,
    q: float | None = None,
    mode: str = "sqrt",
    method: str = "scipy",
    alpha: float = 1.0,
    beta: float = 0.0,
) -> ApproxLPResult:
    """The paper's LP pipeline: color -> reduce -> solve the reduced LP,
    driven through the shared :mod:`repro.pipeline` runner.

    The returned ``value`` approximates ``OPT(A, b, c)``; Theorem 2 bounds
    the error by ``q * Delta``.
    """
    if n_colors is None and q is None:
        raise ValueError("approx_lp_opt needs n_colors and/or q")
    from repro.pipeline import LPTask, run_task

    task = LPTask(lp, mode=mode, method=method, alpha=alpha, beta=beta)
    result = run_task(task, n_colors=n_colors, q=q)
    return ApproxLPResult(
        value=result.value,
        reduction=result.reduced,
        solution=result.solution,
        x_lifted=result.lifted,
        timings=result.timings,
    )
