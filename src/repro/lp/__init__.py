"""LP substrate and the quasi-stable LP reduction (Sec. 4.1)."""

from repro.lp.model import LinearProgram
from repro.lp.reduction import (
    ApproxLPResult,
    LPReduction,
    approx_lp_opt,
    color_lp,
    initial_bipartite_coloring,
    reduce_lp,
)
from repro.lp.solve import LPSolution, solve_lp

__all__ = [
    "LinearProgram",
    "ApproxLPResult",
    "LPReduction",
    "approx_lp_opt",
    "color_lp",
    "initial_bipartite_coloring",
    "reduce_lp",
    "LPSolution",
    "solve_lp",
]
