"""Linear programs in the paper's canonical form (Sec. 4.1, Eq. 2):

    maximize  c^T x   subject to   A x <= b,  x >= 0

with ``A`` an ``m x n`` sparse matrix.  The *extended matrix* **A** of
Eq. (3) appends ``b`` as a last column and ``c^T`` as a last row; its
corner entry is infinity in the paper but only ever appears inside the two
pinned singleton colors, so we store it as 0 and pin instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import LPError


@dataclass
class LinearProgram:
    """``maximize c^T x  s.t.  A x <= b, x >= 0``."""

    a_matrix: sp.csr_matrix
    b: np.ndarray
    c: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.a_matrix = sp.csr_matrix(self.a_matrix, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64).ravel()
        self.c = np.asarray(self.c, dtype=np.float64).ravel()
        m, n = self.a_matrix.shape
        if self.b.shape != (m,):
            raise LPError(f"b has shape {self.b.shape}, expected ({m},)")
        if self.c.shape != (n,):
            raise LPError(f"c has shape {self.c.shape}, expected ({n},)")

    @property
    def n_rows(self) -> int:
        return self.a_matrix.shape[0]

    @property
    def n_cols(self) -> int:
        return self.a_matrix.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.a_matrix.nnz)

    def objective(self, x: np.ndarray) -> float:
        return float(self.c @ x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise LPError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        if np.any(x < -tol):
            return False
        residual = self.a_matrix @ x - self.b
        scale = 1.0 + np.abs(self.b)
        return bool(np.all(residual <= tol * scale))

    def extended_matrix(self) -> sp.csr_matrix:
        """The ``(m+1) x (n+1)`` extended matrix **A** of Eq. (3).

        Layout: ``[[A, b], [c^T, 0]]`` — the infinity corner is stored as
        zero; callers must pin the last row and last column to singleton
        colors (the LP reduction does this automatically).
        """
        m, n = self.a_matrix.shape
        top = sp.hstack([self.a_matrix, sp.csr_matrix(self.b.reshape(-1, 1))])
        bottom = sp.hstack(
            [sp.csr_matrix(self.c.reshape(1, -1)), sp.csr_matrix((1, 1))]
        )
        return sp.vstack([top, bottom]).tocsr()

    def bipartite_adjacency(self) -> sp.csr_matrix:
        """The square ``(m+n+2)`` adjacency of the extended matrix's
        bipartite graph: rows first, then columns; arcs row -> column."""
        extended = self.extended_matrix().tocoo()
        m1, n1 = extended.shape
        size = m1 + n1
        return sp.csr_matrix(
            (extended.data, (extended.row, extended.col + m1)),
            shape=(size, size),
        )

    def scale(self, factor: float) -> "LinearProgram":
        """A copy with all data multiplied by ``factor > 0`` (same argmax)."""
        if factor <= 0:
            raise LPError(f"scale factor must be positive, got {factor}")
        return LinearProgram(
            self.a_matrix * factor,
            self.b * factor,
            self.c * factor,
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"<LinearProgram {self.name or 'unnamed'} "
            f"{self.n_rows}x{self.n_cols} nnz={self.nnz}>"
        )
