"""Mehrotra predictor–corrector interior-point solver.

This is the substrate for the paper's exact LP baseline (they use Tulip,
an open-source interior-point solver) *and* for the early-stopping
baseline of Table 1 (bottom): interior-point methods maintain primal and
dual iterates whose objectives sandwich the optimum, so a caller can stop
as soon as the certified relative error ``dual/primal`` crosses a target —
the "recommended approach in practice" the paper compares against.

The LP ``max c^T x, A x <= b, x >= 0`` is converted to the standard form
``min -c^T z, [A I] z = b, z >= 0`` by adding slack variables.  Newton
steps solve the normal equations ``(A D^2 A^T) dy = r`` with a sparse LU
factorization.

References: Mehrotra (1992); Wright, "Primal-Dual Interior-Point
Methods", SIAM 1997, Ch. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import SolverError
from repro.lp.model import LinearProgram


@dataclass(frozen=True)
class IPMIterate:
    """Per-iteration snapshot passed to the early-stopping callback."""

    iteration: int
    primal_objective: float  # of the original max problem
    dual_objective: float  # upper bound on the optimum (when feasible)
    duality_gap: float
    primal_infeasibility: float
    dual_infeasibility: float

    def certified_ratio(self) -> float:
        """An upper bound on ``max(opt/primal, primal/opt)`` once the
        iterate is near-feasible; inf while the bounds are useless."""
        if self.primal_objective <= 0 or self.dual_objective <= 0:
            return float("inf")
        ratio = self.dual_objective / self.primal_objective
        return max(ratio, 1.0 / ratio) if ratio > 0 else float("inf")


@dataclass
class IPMResult:
    status: str
    objective: float
    x: np.ndarray
    iterations: int
    history: list[IPMIterate]


def _solve_normal_equations(a_eq: sp.csr_matrix, d2: np.ndarray, dense: bool):
    """Factor ``A D^2 A^T`` and return a solve closure."""
    scaled = a_eq.multiply(d2)  # A * diag(d2) applied column-wise
    normal = (scaled @ a_eq.T).tocsc()
    m = normal.shape[0]
    # Tiny Tikhonov regularization keeps the factorization alive on
    # rank-deficient constraint matrices.
    normal = normal + sp.identity(m, format="csc") * 1e-10
    if dense or m <= 400:
        dense_normal = normal.toarray()
        try:
            chol = np.linalg.cholesky(dense_normal)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"normal equations not SPD: {exc}") from exc

        def solve(vector: np.ndarray) -> np.ndarray:
            y = np.linalg.solve(chol, vector)
            return np.linalg.solve(chol.T, y)

        return solve
    try:
        lu = spla.splu(normal)
    except RuntimeError as exc:
        raise SolverError(f"sparse factorization failed: {exc}") from exc
    return lu.solve


def interior_point_solve(
    lp: LinearProgram,
    tol: float = 1e-8,
    max_iterations: int = 200,
    callback: Optional[Callable[[IPMIterate], bool]] = None,
    dense: bool = False,
) -> IPMResult:
    """Solve ``max c x, A x <= b, x >= 0`` with Mehrotra's method.

    ``callback`` is invoked once per iteration with an :class:`IPMIterate`;
    returning ``True`` stops the solve early with status
    ``"early_stopped"`` (the Table 1 baseline).
    """
    m, n = lp.a_matrix.shape
    # Standard form: min cs z, As z = b, z >= 0 with z = [x; slack].
    a_eq = sp.hstack([lp.a_matrix, sp.identity(m, format="csr")]).tocsr()
    cost = np.concatenate([-lp.c, np.zeros(m)])
    b = lp.b.copy()
    n_total = n + m

    # Mehrotra starting point (Wright Ch. 10): least-squares primal/dual.
    solve0 = _solve_normal_equations(a_eq, np.ones(n_total), dense)
    x = a_eq.T @ solve0(b)
    y = solve0(a_eq @ cost)
    s = cost - a_eq.T @ y
    shift_x = max(-1.25 * x.min(initial=0.0), 0.0)
    shift_s = max(-1.25 * s.min(initial=0.0), 0.0)
    x = x + shift_x + 0.1
    s = s + shift_s + 0.1
    correction = 0.5 * float(x @ s)
    x += correction / max(float(s.sum()), 1e-8)
    s += correction / max(float(x.sum()), 1e-8)
    x = np.maximum(x, 1e-4)
    s = np.maximum(s, 1e-4)

    history: list[IPMIterate] = []
    norm_b = 1.0 + np.linalg.norm(b)
    norm_c = 1.0 + np.linalg.norm(cost)

    status = "iteration_limit"
    for iteration in range(1, max_iterations + 1):
        r_primal = b - a_eq @ x
        r_dual = cost - a_eq.T @ y - s
        mu = float(x @ s) / n_total

        primal_objective = float(lp.c @ x[:n])  # original max objective
        dual_objective = float(b @ y)
        iterate = IPMIterate(
            iteration=iteration,
            primal_objective=primal_objective,
            dual_objective=dual_objective,
            duality_gap=abs(primal_objective - dual_objective),
            primal_infeasibility=float(np.linalg.norm(r_primal)) / norm_b,
            dual_infeasibility=float(np.linalg.norm(r_dual)) / norm_c,
        )
        history.append(iterate)
        if callback is not None and callback(iterate):
            status = "early_stopped"
            break
        converged = (
            mu < tol
            and iterate.primal_infeasibility < tol * 100
            and iterate.dual_infeasibility < tol * 100
        )
        if converged:
            status = "optimal"
            break

        d2 = x / s
        solver = _solve_normal_equations(a_eq, d2, dense)

        def newton_step(comp_rhs: np.ndarray):
            """Solve the KKT system with complementarity RHS ``comp_rhs``:

                A dx           = r_primal
                A^T dy + ds    = r_dual
                S dx + X ds    = comp_rhs
            """
            rhs_y = r_primal + a_eq @ (d2 * r_dual) - a_eq @ (comp_rhs / s)
            dy = solver(rhs_y)
            ds = r_dual - a_eq.T @ dy
            dx = comp_rhs / s - d2 * ds
            return dx, dy, ds

        # Predictor (affine scaling: comp_rhs = -XSe).
        dx_aff, dy_aff, ds_aff = newton_step(-x * s)
        alpha_p_aff = _max_step(x, dx_aff)
        alpha_d_aff = _max_step(s, ds_aff)
        mu_aff = float(
            (x + alpha_p_aff * dx_aff) @ (s + alpha_d_aff * ds_aff)
        ) / n_total
        sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

        # Corrector: comp_rhs = sigma mu e - XSe - dXaff dSaff e.
        dx, dy, ds = newton_step(sigma * mu - x * s - dx_aff * ds_aff)

        alpha_p = min(0.995 * _max_step(x, dx), 1.0)
        alpha_d = min(0.995 * _max_step(s, ds), 1.0)
        x = x + alpha_p * dx
        y = y + alpha_d * dy
        s = s + alpha_d * ds
        if x.min() <= 0 or s.min() <= 0:
            raise SolverError("interior-point iterate left the positive cone")

    return IPMResult(
        status=status,
        objective=float(lp.c @ x[:n]),
        x=x[:n].copy(),
        iterations=len(history),
        history=history,
    )


def _max_step(values: np.ndarray, direction: np.ndarray) -> float:
    """Largest ``alpha <= 1`` keeping ``values + alpha * direction > 0``."""
    negative = direction < 0
    if not negative.any():
        return 1.0
    return float(min(1.0, np.min(-values[negative] / direction[negative])))


def early_stopping_solve(
    lp: LinearProgram,
    target_ratio: float,
    max_iterations: int = 200,
    dense: bool = False,
) -> IPMResult:
    """The Table 1 baseline: run the IPM until the certified relative
    error ``max(dual/primal, primal/dual)`` drops below ``target_ratio``.

    Requires near-feasible iterates before trusting the certificate, so
    the stop also waits for small infeasibilities.
    """
    if target_ratio < 1.0:
        raise ValueError(f"target_ratio must be >= 1.0, got {target_ratio}")

    def stop(iterate: IPMIterate) -> bool:
        near_feasible = (
            iterate.primal_infeasibility < 1e-4
            and iterate.dual_infeasibility < 1e-4
        )
        return near_feasible and iterate.certified_ratio() <= target_ratio

    return interior_point_solve(
        lp,
        callback=stop,
        max_iterations=max_iterations,
        dense=dense,
    )
