"""Dense two-phase primal simplex with Bland's rule.

Intended for the *reduced* LPs, which have at most a few hundred rows and
columns; the exact baselines use the interior-point solver or scipy.
Bland's rule guarantees termination (no cycling) at the cost of speed —
the right trade-off for a reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LPError, LPInfeasibleError, LPUnboundedError
from repro.lp.model import LinearProgram

_TOL = 1e-9


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r, :] -= tableau[r, col] * tableau[row, :]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray, basis: list[int], n_decision: int, max_iterations: int
) -> None:
    """Minimize the objective in the last tableau row over the first
    ``n_decision`` columns; raises on unboundedness."""
    m = tableau.shape[0] - 1
    for _ in range(max_iterations):
        costs = tableau[-1, :n_decision]
        entering_candidates = np.nonzero(costs < -_TOL)[0]
        if entering_candidates.size == 0:
            return
        col = int(entering_candidates[0])  # Bland: lowest index
        column = tableau[:m, col]
        positive = column > _TOL
        if not positive.any():
            raise LPUnboundedError("unbounded direction in simplex")
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / column[positive]
        best = np.min(ratios)
        # Bland tie-break: smallest basis index among the argmin rows.
        tie_rows = np.nonzero(ratios <= best + _TOL)[0]
        row = int(min(tie_rows, key=lambda r: basis[r]))
        _pivot(tableau, basis, row, col)
    raise LPError(f"simplex iteration limit ({max_iterations}) exceeded")


def simplex_solve(
    lp: LinearProgram, max_iterations: int = 100_000
) -> tuple[float, np.ndarray, int]:
    """Solve ``max c x, A x <= b, x >= 0`` exactly.

    Returns ``(optimal_value, x, n_iterations_hint)``.  Phase 1 finds a
    feasible basis when some ``b_i < 0``; phase 2 optimizes.  Raises
    :class:`LPInfeasibleError` / :class:`LPUnboundedError`.
    """
    a_dense = lp.a_matrix.toarray()
    b = lp.b.copy()
    c = lp.c.copy()
    m, n = a_dense.shape

    # Standard form: A x + s = b with slack s >= 0.  Normalize rows so
    # b >= 0, flipping the slack sign where needed; rows with a flipped
    # slack need an artificial variable to form the initial basis.
    slack = np.eye(m)
    for i in range(m):
        if b[i] < 0:
            a_dense[i, :] *= -1
            b[i] *= -1
            slack[i, i] = -1
    needs_artificial = [i for i in range(m) if slack[i, i] < 0]

    n_art = len(needs_artificial)
    artificial = np.zeros((m, n_art))
    for k, i in enumerate(needs_artificial):
        artificial[i, k] = 1.0

    total = n + m + n_art
    tableau = np.zeros((m + 1, total + 1))
    tableau[:m, :n] = a_dense
    tableau[:m, n : n + m] = slack
    tableau[:m, n + m : n + m + n_art] = artificial
    tableau[:m, -1] = b

    basis: list[int] = []
    artificial_of_row = {i: n + m + k for k, i in enumerate(needs_artificial)}
    for i in range(m):
        basis.append(artificial_of_row.get(i, n + i))

    if n_art:
        # Phase 1: minimize the sum of artificials.
        tableau[-1, n + m : n + m + n_art] = 1.0
        for i in needs_artificial:
            tableau[-1, :] -= tableau[i, :]
        _run_simplex(tableau, basis, n + m, max_iterations)
        if tableau[-1, -1] < -1e-7:
            raise LPInfeasibleError(
                f"phase 1 left infeasibility {-tableau[-1, -1]:.3g}"
            )
        # Drive any remaining artificial out of the basis if possible.
        for row, variable in enumerate(basis):
            if variable >= n + m:
                pivots = np.nonzero(np.abs(tableau[row, : n + m]) > _TOL)[0]
                if pivots.size:
                    _pivot(tableau, basis, row, int(pivots[0]))
        # Rebuild the objective row for phase 2.
        tableau[-1, :] = 0.0

    # Phase 2: minimize -c x (we maximize c x).
    tableau[-1, :n] = -c
    for row, variable in enumerate(basis):
        if variable < n and abs(tableau[-1, variable]) > _TOL:
            tableau[-1, :] -= tableau[-1, variable] * tableau[row, :]
    _run_simplex(tableau, basis, n + m, max_iterations)

    x = np.zeros(n)
    for row, variable in enumerate(basis):
        if variable < n:
            x[variable] = tableau[row, -1]
    return float(lp.c @ x), x, 0
