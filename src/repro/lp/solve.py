"""Unified LP solve dispatch."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.lp.model import LinearProgram

METHODS = ("scipy", "interior_point", "simplex")


@dataclass(frozen=True)
class LPSolution:
    """Result of :func:`solve_lp`."""

    status: str
    objective: float
    x: np.ndarray
    method: str
    elapsed: float
    iterations: int = 0


def solve_lp(
    lp: LinearProgram,
    method: str = "scipy",
    **kwargs,
) -> LPSolution:
    """Solve an LP with one of the backends.

    ``"scipy"`` (HiGHS; the fast oracle), ``"interior_point"`` (our
    Mehrotra solver — supports early stopping), or ``"simplex"`` (our
    dense two-phase simplex — for small/reduced LPs).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    start = time.perf_counter()
    if method == "scipy":
        from repro.lp.scipy_backend import scipy_solve

        objective, x = scipy_solve(lp, **kwargs)
        return LPSolution(
            status="optimal",
            objective=objective,
            x=x,
            method=method,
            elapsed=time.perf_counter() - start,
        )
    if method == "interior_point":
        from repro.lp.interior_point import interior_point_solve

        result = interior_point_solve(lp, **kwargs)
        return LPSolution(
            status=result.status,
            objective=result.objective,
            x=result.x,
            method=method,
            elapsed=time.perf_counter() - start,
            iterations=result.iterations,
        )
    from repro.lp.simplex import simplex_solve

    objective, x, iterations = simplex_solve(lp, **kwargs)
    return LPSolution(
        status="optimal",
        objective=objective,
        x=x,
        method=method,
        elapsed=time.perf_counter() - start,
        iterations=iterations,
    )
