"""Structured LP generators (the Table 3 stand-ins and Fig. 3's example).

The paper evaluates on Mittelmann benchmark LPs (qap15, nug08-3rd,
supportcase10, ex10), which are not redistributable here.  Coloring
compresses an LP exactly when many rows (and columns) have near-identical
block sums, so the stand-ins are built around that mechanism:

* :func:`planted_block_lp` — rows and columns are secretly grouped;
  every (row-group, column-group) block is a near-biregular random
  pattern whose values share a base level plus noise.  The planted
  grouping is an (approximately) equitable partition, so Rothko can
  rediscover it; the ``noise`` knob controls the achievable q.
* :func:`qap_like` / :func:`nug_like` — assignment-polytope LPs with a
  quadratic-coupling flavor: the constraint matrix of the QAP
  linearization family (these are the benchmarks' actual origin).
* :func:`supportcase_like` (wide) and :func:`ex10_like` (tall) match the
  aspect ratios of the remaining two instances.
* :func:`fig3_example` — the exact 5x3 LP of Fig. 3 (OPT 128.157...).
* :func:`transportation` — classic transportation LPs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import LPError
from repro.lp.model import LinearProgram
from repro.utils.rng import SeedLike, ensure_rng


def fig3_example() -> LinearProgram:
    """The worked example of Fig. 3; optimal value 128.157 (3 d.p.)."""
    a_matrix = np.array(
        [
            [4.0, 8.0, 2.0],
            [6.0, 5.0, 1.0],
            [7.0, 4.0, 2.0],
            [3.0, 1.0, 22.0],
            [2.0, 3.0, 21.0],
        ]
    )
    b = np.array([20.0, 20.0, 21.0, 50.0, 51.0])
    c = np.array([9.0, 10.0, 50.0])
    return LinearProgram(sp.csr_matrix(a_matrix), b, c, name="fig3")


def planted_block_lp(
    n_rows: int,
    n_cols: int,
    row_groups: int,
    col_groups: int,
    density: float = 0.4,
    noise: float = 0.05,
    seed: SeedLike = 0,
    name: str = "planted",
) -> LinearProgram:
    """LP whose matrix hides an (approximately) equitable block structure.

    Every block either is empty or has per-row nonzero count
    ``round(density * block_width)``, wired round-robin so row sums within
    a block agree up to rounding; values are the block's base level times
    ``1 + noise * U(-1, 1)``.  With ``noise = 0`` the planted grouping is
    an exactly stable coloring of the extended matrix, so the reduced LP
    is exact (the Grohe et al. regime); increasing ``noise`` degrades it
    gracefully into the quasi-stable regime.
    """
    if not 0 < density <= 1:
        raise LPError(f"density must be in (0, 1], got {density}")
    rng = ensure_rng(seed)
    row_membership = np.sort(rng.integers(0, row_groups, size=n_rows))
    col_membership = np.sort(rng.integers(0, col_groups, size=n_cols))
    # Guarantee every group is non-empty by seeding one member each.
    row_membership[:row_groups] = np.arange(row_groups)
    col_membership[:col_groups] = np.arange(col_groups)
    row_membership = np.sort(row_membership)
    col_membership = np.sort(col_membership)

    base = rng.uniform(1.0, 9.0, size=(row_groups, col_groups))
    active = rng.random((row_groups, col_groups)) < 0.7
    # Keep at least one active block per row group and per column group so
    # no variable is free (unbounded) and no constraint is vacuous.
    for g in range(row_groups):
        if not active[g].any():
            active[g, rng.integers(0, col_groups)] = True
    for g in range(col_groups):
        if not active[:, g].any():
            active[rng.integers(0, row_groups), g] = True

    cols_of_group = [
        np.nonzero(col_membership == g)[0] for g in range(col_groups)
    ]
    rows_of_group = [
        np.nonzero(row_membership == g)[0] for g in range(row_groups)
    ]
    rows, cols, values = [], [], []
    for row_group in range(row_groups):
        group_rows = rows_of_group[row_group]
        for col_group in range(col_groups):
            if not active[row_group, col_group]:
                continue
            group_cols = cols_of_group[col_group]
            width = len(group_cols)
            # Per-row nonzero count, rounded to a multiple of
            # width / gcd(|rows|, width) so the consecutive round-robin
            # covers every column the same number of times — this makes
            # the noiseless instance *exactly* biregular per block.
            step = width // np.gcd(len(group_rows), width)
            per_row = max(1, round(density * width / step)) * step
            per_row = min(per_row, width)
            level = base[row_group, col_group]
            for rank, row in enumerate(group_rows):
                start = (rank * per_row) % width
                chosen = group_cols[(start + np.arange(per_row)) % width]
                for col in chosen:
                    jitter = 1.0 + noise * rng.uniform(-1.0, 1.0)
                    rows.append(int(row))
                    cols.append(int(col))
                    values.append(level * jitter)
    a_matrix = sp.csr_matrix(
        (values, (rows, cols)), shape=(n_rows, n_cols)
    )
    row_level = rng.uniform(20.0, 60.0, size=row_groups)
    col_level = rng.uniform(2.0, 12.0, size=col_groups)
    b = row_level[row_membership] * (
        1.0 + noise * rng.uniform(-1.0, 1.0, size=n_rows)
    )
    c = col_level[col_membership] * (
        1.0 + noise * rng.uniform(-1.0, 1.0, size=n_cols)
    )
    return LinearProgram(a_matrix, b, c, name=name)


def qap_like(size: int = 8, seed: SeedLike = 0, name: str = "qap") -> LinearProgram:
    """Assignment-polytope LP with QAP-flavored objective coupling.

    Variables ``x[i, j]`` (facility i at location j), relaxed assignment
    constraints ``sum_j x[i, j] <= 1`` and ``sum_i x[i, j] <= 1``, plus
    aggregated linearized-interaction rows that couple pairs of
    facilities through a low-rank flow/distance structure — the mechanism
    that makes real qap/nug matrices so compressible.
    """
    rng = ensure_rng(seed)
    n_vars = size * size

    def var(i: int, j: int) -> int:
        return i * size + j

    rows, cols, values = [], [], []
    row_id = 0
    # Row constraints: each facility assigned at most once.
    for i in range(size):
        for j in range(size):
            rows.append(row_id)
            cols.append(var(i, j))
            values.append(1.0)
        row_id += 1
    # Column constraints: each location used at most once.
    for j in range(size):
        for i in range(size):
            rows.append(row_id)
            cols.append(var(i, j))
            values.append(1.0)
        row_id += 1
    # Interaction rows: for each facility pair (i, k), flow f[i, k] limits
    # the co-assignment weighted by a coarse distance profile.
    flow_levels = rng.integers(1, 4, size=(size, size))
    for i in range(size):
        for k in range(i + 1, size):
            level = float(flow_levels[i, k])
            for j in range(size):
                rows.append(row_id)
                cols.append(var(i, j))
                values.append(level)
                rows.append(row_id)
                cols.append(var(k, j))
                values.append(level)
            row_id += 1
    a_matrix = sp.csr_matrix(
        (values, (rows, cols)), shape=(row_id, n_vars)
    )
    b = np.concatenate(
        [
            np.ones(2 * size),
            rng.integers(2, 5, size=row_id - 2 * size).astype(float),
        ]
    )
    # Benefit of assignment: distance-band levels (few distinct values).
    benefit_levels = rng.integers(1, 6, size=(size, size)).astype(float)
    c = benefit_levels.ravel()
    return LinearProgram(a_matrix, b, c, name=name)


def nug_like(size: int = 6, seed: SeedLike = 1) -> LinearProgram:
    """Same family as :func:`qap_like` with a different seed/shape (the
    nug08-3rd instance is a QAP linearization too)."""
    return qap_like(size=size, seed=seed, name="nug")


def supportcase_like(
    n_rows: int = 120,
    n_cols: int = 4000,
    seed: SeedLike = 2,
) -> LinearProgram:
    """Wide LP (columns >> rows), the supportcase10 aspect ratio."""
    return planted_block_lp(
        n_rows,
        n_cols,
        row_groups=max(4, n_rows // 20),
        col_groups=max(8, n_cols // 250),
        density=0.3,
        noise=0.08,
        seed=seed,
        name="supportcase",
    )


def ex10_like(
    n_rows: int = 3000,
    n_cols: int = 700,
    seed: SeedLike = 3,
) -> LinearProgram:
    """Tall LP (rows >> columns), the ex10 aspect ratio."""
    return planted_block_lp(
        n_rows,
        n_cols,
        row_groups=max(10, n_rows // 150),
        col_groups=max(5, n_cols // 100),
        density=0.35,
        noise=0.06,
        seed=seed,
        name="ex10",
    )


def transportation(
    n_sources: int,
    n_sinks: int,
    seed: SeedLike = 0,
) -> LinearProgram:
    """Transportation LP: ship from sources to sinks maximizing profit.

    Variables ``x[i, j] >= 0``; supply rows ``sum_j x[i, j] <= supply_i``;
    demand rows ``sum_i x[i, j] <= demand_j``.  Supplies/demands/profits
    are drawn from a few levels, so the LP compresses well.
    """
    rng = ensure_rng(seed)
    n_vars = n_sources * n_sinks
    rows, cols, values = [], [], []
    for i in range(n_sources):
        for j in range(n_sinks):
            rows.append(i)
            cols.append(i * n_sinks + j)
            values.append(1.0)
    for j in range(n_sinks):
        for i in range(n_sources):
            rows.append(n_sources + j)
            cols.append(i * n_sinks + j)
            values.append(1.0)
    a_matrix = sp.csr_matrix(
        (values, (rows, cols)), shape=(n_sources + n_sinks, n_vars)
    )
    supply = rng.choice([30.0, 40.0, 50.0], size=n_sources)
    demand = rng.choice([20.0, 25.0], size=n_sinks)
    b = np.concatenate([supply, demand])
    profit = rng.choice([3.0, 4.0, 5.0], size=n_vars)
    return LinearProgram(a_matrix, b, profit, name="transportation")
