"""Dinic's max-flow: level graphs + blocking flows, O(V^2 E).

This is the legacy ``python`` engine implementation, kept as the
cross-checking reference; production solving goes through the flat
arc-store variant (:func:`repro.solvers.maxflow.dinic` — vectorized
level BFS, compacted level-graph DFS), reached via
``max_flow(..., algorithm="dinic")``.
"""

from __future__ import annotations

from collections import deque

from repro.obs import recorder as _obs
from repro.flow.network import FlowNetwork, FlowResult, ResidualGraph

_EPS = 1e-12


def _bfs_levels(residual: ResidualGraph, source: int, sink: int) -> list[int] | None:
    """Level assignment of the residual graph; None when t is unreachable."""
    levels = [-1] * residual.n
    levels[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for arc_id in residual.adj[u]:
            v = residual.to[arc_id]
            if levels[v] == -1 and residual.cap[arc_id] > _EPS:
                levels[v] = levels[u] + 1
                queue.append(v)
    return levels if levels[sink] != -1 else None


def _blocking_flow(
    residual: ResidualGraph,
    levels: list[int],
    source: int,
    sink: int,
    cursor: list[int],
) -> float:
    """Iterative DFS pushing one augmenting path per call (current-arc)."""
    # path of (node, arc taken); classic iterative Dinic DFS.
    total = 0.0
    stack: list[int] = [source]
    path: list[int] = []
    while stack:
        u = stack[-1]
        if u == sink:
            bottleneck = min(residual.cap[arc_id] for arc_id in path)
            for arc_id in path:
                residual.cap[arc_id] -= bottleneck
                residual.cap[arc_id ^ 1] += bottleneck
            total += bottleneck
            # Retreat to the first saturated arc on the path.
            for index, arc_id in enumerate(path):
                if residual.cap[arc_id] <= _EPS:
                    del stack[index + 1 :]
                    del path[index:]
                    break
            continue
        advanced = False
        while cursor[u] < len(residual.adj[u]):
            arc_id = residual.adj[u][cursor[u]]
            v = residual.to[arc_id]
            if residual.cap[arc_id] > _EPS and levels[v] == levels[u] + 1:
                stack.append(v)
                path.append(arc_id)
                advanced = True
                break
            cursor[u] += 1
        if not advanced:
            # Dead end: remove u from the level graph and backtrack.
            levels[u] = -1
            stack.pop()
            if path:
                path.pop()
    return total


def dinic_max_flow(network: FlowNetwork) -> FlowResult:
    """Compute the maximum s-t flow with Dinic's algorithm."""
    residual = ResidualGraph.from_network(network)
    source, sink = network.source_index, network.sink_index
    total = 0.0
    phases = 0
    while True:
        levels = _bfs_levels(residual, source, sink)
        if levels is None:
            break
        phases += 1
        cursor = [0] * residual.n
        total += _blocking_flow(residual, levels, source, sink, cursor)
    _obs._active.count("flow.dinic.phases", phases)
    return FlowResult(value=total, arc_flow=residual.extract_flow())
