"""Flow networks and flow validation (Sec. 4.2 definitions).

A network is ``G = (X, c, S, T)`` — here specialized to single source and
sink (as in Theorem 6); capacities are the positive arc weights of a
:class:`~repro.graphs.digraph.WeightedDiGraph`.  Undirected graphs work
unchanged: their adjacency already stores both arc directions, each with
the full capacity, the standard reduction.

``FlowResult`` carries the flow value and the per-arc assignment so
callers can validate capacity and conservation (done in
:func:`validate_flow`, used heavily by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

from repro.exceptions import FlowError
from repro.graphs.digraph import WeightedDiGraph

ArcFlow = Dict[Tuple[int, int], float]


@dataclass(frozen=True)
class FlowNetwork:
    """A single-source single-sink flow network."""

    graph: WeightedDiGraph
    source: Hashable
    sink: Hashable

    def __post_init__(self) -> None:
        if not self.graph.has_node(self.source):
            raise FlowError(f"source {self.source!r} not in graph")
        if not self.graph.has_node(self.sink):
            raise FlowError(f"sink {self.sink!r} not in graph")
        if self.source == self.sink:
            raise FlowError("source and sink must differ")
        for _, _, weight in self.graph.edges():
            if weight < 0:
                raise FlowError(f"negative capacity {weight}")

    @property
    def source_index(self) -> int:
        return self.graph.index_of(self.source)

    @property
    def sink_index(self) -> int:
        return self.graph.index_of(self.sink)

    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes


@dataclass(frozen=True)
class FlowResult:
    """A max-flow answer: the value plus per-arc flows (by node index)."""

    value: float
    arc_flow: ArcFlow = field(default_factory=dict)

    def out_flow(self, node: int) -> float:
        return sum(f for (u, _), f in self.arc_flow.items() if u == node)

    def in_flow(self, node: int) -> float:
        return sum(f for (_, v), f in self.arc_flow.items() if v == node)


def validate_flow(
    network: FlowNetwork, result: FlowResult, tol: float = 1e-7
) -> None:
    """Raise :class:`FlowError` unless ``result`` is a valid s-t flow.

    Checks the capacity condition, conservation at internal nodes, and
    that the claimed value matches the net out-flow at the source.
    """
    graph = network.graph
    capacities: dict[tuple[int, int], float] = {}
    for ui in range(graph.n_nodes):
        for vi, cap in graph.out_items(ui).items():
            capacities[(ui, vi)] = cap

    net = [0.0] * graph.n_nodes
    for (u, v), f in result.arc_flow.items():
        if f < -tol:
            raise FlowError(f"negative flow {f} on arc {(u, v)}")
        cap = capacities.get((u, v))
        if cap is None:
            raise FlowError(f"flow on non-existent arc {(u, v)}")
        if f > cap + tol:
            raise FlowError(f"flow {f} exceeds capacity {cap} on {(u, v)}")
        net[u] += f
        net[v] -= f

    s, t = network.source_index, network.sink_index
    for node in range(graph.n_nodes):
        if node in (s, t):
            continue
        if abs(net[node]) > tol:
            raise FlowError(f"conservation violated at node {node}: {net[node]}")
    if abs(net[s] - result.value) > tol:
        raise FlowError(
            f"claimed value {result.value} but source pushes {net[s]}"
        )
    if abs(net[t] + result.value) > tol:
        raise FlowError(
            f"claimed value {result.value} but sink receives {-net[t]}"
        )


def max_flow(
    network: FlowNetwork, algorithm: str = "push_relabel"
) -> FlowResult:
    """Dispatch to one of the max-flow solvers.

    ``push_relabel`` (the paper's exact baseline), ``dinic`` or
    ``edmonds_karp``.
    """
    from repro.flow.dinic import dinic_max_flow
    from repro.flow.edmonds_karp import edmonds_karp_max_flow
    from repro.flow.push_relabel import push_relabel_max_flow

    solvers = {
        "push_relabel": push_relabel_max_flow,
        "dinic": dinic_max_flow,
        "edmonds_karp": edmonds_karp_max_flow,
    }
    if algorithm not in solvers:
        raise ValueError(
            f"algorithm must be one of {sorted(solvers)}, got {algorithm!r}"
        )
    return solvers[algorithm](network)


class ResidualGraph:
    """Paired-edge residual representation shared by all three solvers.

    Arc ``e`` and its reverse ``e ^ 1`` are adjacent in the edge arrays,
    so the reverse of any arc is a single XOR away — the classic trick.
    """

    __slots__ = ("n", "to", "cap", "adj", "_original_cap", "_forward")

    def __init__(self, n: int) -> None:
        self.n = n
        self.to: list[int] = []
        self.cap: list[float] = []
        self.adj: list[list[int]] = [[] for _ in range(n)]
        self._original_cap: list[float] = []
        self._forward: list[bool] = []

    def add_arc(self, u: int, v: int, capacity: float) -> int:
        """Add a forward arc and its zero-capacity residual twin."""
        arc_id = len(self.to)
        self.to.extend((v, u))
        self.cap.extend((capacity, 0.0))
        self._original_cap.extend((capacity, 0.0))
        self._forward.extend((True, False))
        self.adj[u].append(arc_id)
        self.adj[v].append(arc_id + 1)
        return arc_id

    @classmethod
    def from_network(cls, network: FlowNetwork) -> "ResidualGraph":
        graph = network.graph
        residual = cls(graph.n_nodes)
        for ui in range(graph.n_nodes):
            for vi, capacity in graph.out_items(ui).items():
                if capacity > 0:
                    residual.add_arc(ui, vi, capacity)
        return residual

    def extract_flow(self) -> ArcFlow:
        """Per-arc flows of the forward arcs (flow = original - residual)."""
        flow: ArcFlow = {}
        for arc_id in range(0, len(self.to), 2):
            pushed = self._original_cap[arc_id] - self.cap[arc_id]
            if pushed > 0:
                u = self.to[arc_id + 1]
                v = self.to[arc_id]
                flow[(u, v)] = flow.get((u, v), 0.0) + pushed
        return flow
