"""Flow networks and flow validation (Sec. 4.2 definitions).

A network is ``G = (X, c, S, T)`` — here specialized to single source and
sink (as in Theorem 6); capacities are the positive arc weights of a
:class:`~repro.graphs.digraph.WeightedDiGraph`.  Undirected graphs work
unchanged: their adjacency already stores both arc directions, each with
the full capacity, the standard reduction.

Solving is delegated to one of two engines (``max_flow(...,
engine=...)``):

* ``"arcstore"`` (default) — the CSR-native solver core of
  :mod:`repro.solvers`: one flat :class:`~repro.solvers.arcstore.
  ArcStore` per graph, vectorized BFS, and flat-array residual updates;
* ``"python"`` — the original pure-Python solvers over the paired-edge
  :class:`ResidualGraph`, kept as the cross-checking reference.

``FlowResult`` carries the flow value and the per-arc assignment so
callers can validate capacity and conservation (done in
:func:`validate_flow` — O(m) numpy reductions — used heavily by the
test suite).  The arcstore engine produces flows as flat arrays; the
``arc_flow`` dict view is materialized lazily for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import numpy as np

from repro.exceptions import FlowError
from repro.graphs.digraph import WeightedDiGraph

ArcFlow = Dict[Tuple[int, int], float]

#: (tails, heads, flows) — the flat-array form of a flow assignment
ArcFlowArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class FlowNetwork:
    """A single-source single-sink flow network."""

    graph: WeightedDiGraph
    source: Hashable
    sink: Hashable

    def __post_init__(self) -> None:
        if not self.graph.has_node(self.source):
            raise FlowError(f"source {self.source!r} not in graph")
        if not self.graph.has_node(self.sink):
            raise FlowError(f"sink {self.sink!r} not in graph")
        if self.source == self.sink:
            raise FlowError("source and sink must differ")
        for _, _, weight in self.graph.edges():
            if weight < 0:
                raise FlowError(f"negative capacity {weight}")

    @property
    def source_index(self) -> int:
        return self.graph.index_of(self.source)

    @property
    def sink_index(self) -> int:
        return self.graph.index_of(self.sink)

    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes


class FlowResult:
    """A max-flow answer: the value plus per-arc flows (by node index).

    The per-arc assignment is stored either as a dict (the legacy
    engine, hand-built fixtures) or as flat ``(tails, heads, flows)``
    arrays (the arcstore engine); each view is materialized lazily from
    the other on first access, so both engines expose the same surface.
    """

    __slots__ = ("value", "_arc_flow", "_arc_arrays")

    def __init__(
        self,
        value: float,
        arc_flow: ArcFlow | None = None,
        arc_arrays: ArcFlowArrays | None = None,
    ) -> None:
        self.value = value
        self._arc_flow = arc_flow
        self._arc_arrays = arc_arrays
        if arc_flow is None and arc_arrays is None:
            self._arc_flow = {}

    @property
    def arc_flow(self) -> ArcFlow:
        """Dict view ``(u, v) -> flow`` (materialized lazily)."""
        if self._arc_flow is None:
            tails, heads, flows = self._arc_arrays
            self._arc_flow = {
                (int(u), int(v)): float(f)
                for u, v, f in zip(tails, heads, flows)
            }
        return self._arc_flow

    def arc_arrays(self) -> ArcFlowArrays:
        """Flat ``(tails, heads, flows)`` view (materialized lazily)."""
        if self._arc_arrays is None:
            items = self._arc_flow.items()
            tails = np.fromiter(
                (u for (u, _), _ in items), dtype=np.int64, count=len(items)
            )
            heads = np.fromiter(
                (v for (_, v), _ in items), dtype=np.int64, count=len(items)
            )
            flows = np.fromiter(
                (f for _, f in items), dtype=np.float64, count=len(items)
            )
            self._arc_arrays = (tails, heads, flows)
        return self._arc_arrays

    def out_flow(self, node: int) -> float:
        tails, _, flows = self.arc_arrays()
        return float(flows[tails == node].sum())

    def in_flow(self, node: int) -> float:
        _, heads, flows = self.arc_arrays()
        return float(flows[heads == node].sum())

    def __eq__(self, other: object) -> bool:
        # Value equality over (value, per-arc flows), matching the
        # frozen-dataclass semantics this class replaced.
        if not isinstance(other, FlowResult):
            return NotImplemented
        return self.value == other.value and self.arc_flow == other.arc_flow

    # Explicitly unhashable: hashing the frozen dataclass this class
    # replaced also always raised (its dict field is unhashable).
    __hash__ = None

    def __repr__(self) -> str:
        return f"FlowResult(value={self.value!r})"


def validate_flow(
    network: FlowNetwork, result: FlowResult, tol: float = 1e-7
) -> None:
    """Raise :class:`FlowError` unless ``result`` is a valid s-t flow.

    Checks the capacity condition, conservation at internal nodes, and
    that the claimed value matches the net out-flow at the source — all
    as O(m) numpy reductions over the flat arc arrays (the per-arc dict
    is never touched, so validating an arcstore result stays cheap).
    """
    graph = network.graph
    n = graph.n_nodes
    tails, heads, flows = result.arc_arrays()

    if flows.size:
        worst = int(np.argmin(flows))
        if flows[worst] < -tol:
            raise FlowError(
                f"negative flow {flows[worst]} on arc "
                f"{(int(tails[worst]), int(heads[worst]))}"
            )
        # Out-of-range endpoints first: the flat key encoding below is
        # only injective over valid node indices.
        out_of_range = (tails < 0) | (tails >= n) | (heads < 0) | (heads >= n)
        if out_of_range.any():
            first = int(np.argmax(out_of_range))
            raise FlowError(
                f"flow on non-existent arc "
                f"{(int(tails[first]), int(heads[first]))}"
            )
        # Capacity lookup: CSR arc keys are sorted (row-major, sorted
        # columns), so one searchsorted resolves every flow arc.
        matrix = graph.to_csr()
        matrix.sort_indices()
        graph_keys = (
            np.repeat(
                np.arange(n, dtype=np.int64), np.diff(matrix.indptr)
            )
            * n
            + matrix.indices
        )
        flow_keys = tails.astype(np.int64) * n + heads
        positions = np.searchsorted(graph_keys, flow_keys)
        positions_clipped = np.minimum(positions, max(graph_keys.size - 1, 0))
        missing = (
            (positions >= graph_keys.size)
            | (graph_keys[positions_clipped] != flow_keys)
            if graph_keys.size
            else np.ones(flow_keys.size, dtype=bool)
        )
        if missing.any():
            first = int(np.argmax(missing))
            raise FlowError(
                f"flow on non-existent arc "
                f"{(int(tails[first]), int(heads[first]))}"
            )
        capacities = matrix.data[positions_clipped]
        over = flows > capacities + tol
        if over.any():
            first = int(np.argmax(over))
            raise FlowError(
                f"flow {flows[first]} exceeds capacity {capacities[first]} "
                f"on {(int(tails[first]), int(heads[first]))}"
            )

    net = np.zeros(n)
    if flows.size:
        net += np.bincount(tails, weights=flows, minlength=n)
        net -= np.bincount(heads, weights=flows, minlength=n)
    s, t = network.source_index, network.sink_index
    interior = np.abs(net) > tol
    interior[s] = interior[t] = False
    if interior.any():
        node = int(np.argmax(interior))
        raise FlowError(
            f"conservation violated at node {node}: {net[node]}"
        )
    if abs(net[s] - result.value) > tol:
        raise FlowError(
            f"claimed value {result.value} but source pushes {net[s]}"
        )
    if abs(net[t] + result.value) > tol:
        raise FlowError(
            f"claimed value {result.value} but sink receives {-net[t]}"
        )


def _arcstore_max_flow(
    network: FlowNetwork, algorithm: str, backend=None
) -> FlowResult:
    from repro.solvers import (
        arc_store_for,
        dinic,
        edmonds_karp,
        push_relabel,
    )

    solvers = {
        "push_relabel": push_relabel,
        "dinic": dinic,
        "edmonds_karp": edmonds_karp,
    }
    store = arc_store_for(network.graph)
    value, cap = solvers[algorithm](
        store, network.source_index, network.sink_index, backend=backend
    )
    return FlowResult(
        value=value, arc_arrays=store.extract_flow_arrays(cap)
    )


def max_flow(
    network: FlowNetwork,
    algorithm: str = "push_relabel",
    engine: str = "arcstore",
    backend=None,
) -> FlowResult:
    """Dispatch to one of the max-flow solvers.

    ``algorithm`` is one of ``push_relabel`` (the paper's exact
    baseline), ``dinic`` or ``edmonds_karp``; ``engine`` selects the
    arc-store implementation (default) or the legacy pure-Python one.
    ``backend`` reaches the arcstore engine's solver-kernel dispatch
    (explicit wins, else the process default); the legacy engine
    ignores it.
    """
    from repro.solvers import check_engine

    algorithms = ("push_relabel", "dinic", "edmonds_karp")
    if algorithm not in algorithms:
        raise ValueError(
            f"algorithm must be one of {sorted(algorithms)}, "
            f"got {algorithm!r}"
        )
    if check_engine(engine) == "arcstore":
        return _arcstore_max_flow(network, algorithm, backend=backend)

    from repro.flow.dinic import dinic_max_flow
    from repro.flow.edmonds_karp import edmonds_karp_max_flow
    from repro.flow.push_relabel import push_relabel_max_flow

    solvers = {
        "push_relabel": push_relabel_max_flow,
        "dinic": dinic_max_flow,
        "edmonds_karp": edmonds_karp_max_flow,
    }
    return solvers[algorithm](network)


class ResidualGraph:
    """Paired-edge residual representation of the legacy ``python``
    engine (the arcstore engine keeps the same pairing in flat arrays —
    see :class:`repro.solvers.arcstore.ArcStore`).

    Arc ``e`` and its reverse ``e ^ 1`` are adjacent in the edge arrays,
    so the reverse of any arc is a single XOR away — the classic trick.
    """

    __slots__ = ("n", "to", "cap", "adj", "_original_cap", "_forward")

    def __init__(self, n: int) -> None:
        self.n = n
        self.to: list[int] = []
        self.cap: list[float] = []
        self.adj: list[list[int]] = [[] for _ in range(n)]
        self._original_cap: list[float] = []
        self._forward: list[bool] = []

    def add_arc(self, u: int, v: int, capacity: float) -> int:
        """Add a forward arc and its zero-capacity residual twin."""
        arc_id = len(self.to)
        self.to.extend((v, u))
        self.cap.extend((capacity, 0.0))
        self._original_cap.extend((capacity, 0.0))
        self._forward.extend((True, False))
        self.adj[u].append(arc_id)
        self.adj[v].append(arc_id + 1)
        return arc_id

    @classmethod
    def from_network(cls, network: FlowNetwork) -> "ResidualGraph":
        graph = network.graph
        residual = cls(graph.n_nodes)
        for ui in range(graph.n_nodes):
            for vi, capacity in graph.out_items(ui).items():
                if capacity > 0:
                    residual.add_arc(ui, vi, capacity)
        return residual

    def extract_flow(self) -> ArcFlow:
        """Per-arc flows of the forward arcs (flow = original - residual)."""
        flow: ArcFlow = {}
        for arc_id in range(0, len(self.to), 2):
            pushed = self._original_cap[arc_id] - self.cap[arc_id]
            if pushed > 0:
                u = self.to[arc_id + 1]
                v = self.to[arc_id]
                flow[(u, v)] = flow.get((u, v), 0.0) + pushed
        return flow
