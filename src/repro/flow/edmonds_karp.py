"""Edmonds–Karp max-flow: BFS augmenting paths, O(V E^2).

The simplest correct solver; used as the ground truth the faster solvers
are cross-checked against in the test suite.  This module is the legacy
``python`` engine; the arc-store variant
(:func:`repro.solvers.maxflow.edmonds_karp`) finds each augmenting path
with one vectorized BFS instead of a Python queue walk.
"""

from __future__ import annotations

from collections import deque

from repro.obs import recorder as _obs
from repro.flow.network import FlowNetwork, FlowResult, ResidualGraph

_EPS = 1e-12


def edmonds_karp_max_flow(network: FlowNetwork) -> FlowResult:
    """Compute the maximum s-t flow with shortest augmenting paths."""
    residual = ResidualGraph.from_network(network)
    source, sink = network.source_index, network.sink_index
    total = 0.0
    augmentations = 0

    while True:
        # BFS for a shortest residual path, remembering the incoming arc.
        parent_arc = [-1] * residual.n
        parent_arc[source] = -2  # mark visited
        queue = deque([source])
        while queue and parent_arc[sink] == -1:
            u = queue.popleft()
            for arc_id in residual.adj[u]:
                v = residual.to[arc_id]
                if parent_arc[v] == -1 and residual.cap[arc_id] > _EPS:
                    parent_arc[v] = arc_id
                    queue.append(v)
        if parent_arc[sink] == -1:
            break
        augmentations += 1

        # Bottleneck along the path.
        bottleneck = float("inf")
        v = sink
        while v != source:
            arc_id = parent_arc[v]
            bottleneck = min(bottleneck, residual.cap[arc_id])
            v = residual.to[arc_id ^ 1]
        # Augment.
        v = sink
        while v != source:
            arc_id = parent_arc[v]
            residual.cap[arc_id] -= bottleneck
            residual.cap[arc_id ^ 1] += bottleneck
            v = residual.to[arc_id ^ 1]
        total += bottleneck

    _obs._active.count("flow.ek.augmentations", augmentations)
    return FlowResult(value=total, arc_flow=residual.extract_flow())
