"""Min-cut extraction (max-flow min-cut theorem, used for validation).

The arcstore engine (default) runs :func:`repro.solvers.maxflow.dinic`
and reads reachability straight off the final residual arrays — one
vectorized BFS, then a mask over the forward arcs picks the crossing
set.  The ``python`` engine re-runs the legacy list-based Dinic and
walks the residual adjacency, kept for cross-checking.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

from repro.flow.network import FlowNetwork, ResidualGraph

_EPS = 1e-12


def min_cut(
    network: FlowNetwork, engine: str = "arcstore", backend=None
) -> Tuple[float, set[int], list[tuple[int, int]]]:
    """Return ``(capacity, source_side, cut_arcs)`` of a minimum s-t cut.

    Runs Dinic to max-flow, then collects the nodes still reachable in the
    residual graph; the cut arcs are the original arcs leaving that set.
    By max-flow/min-cut the returned capacity equals the max-flow value —
    the property tests assert exactly this.  ``backend`` reaches the
    arcstore engine's solver kernels; the legacy engine ignores it.
    """
    from repro.solvers import check_engine

    if check_engine(engine) == "arcstore":
        from repro.solvers import arc_store_for
        from repro.solvers.maxflow import min_cut as _arcstore_min_cut

        store = arc_store_for(network.graph)
        capacity, source_side, cut_arcs, _ = _arcstore_min_cut(
            store, network.source_index, network.sink_index,
            backend=backend,
        )
        return capacity, source_side, cut_arcs
    return _python_min_cut(network)


def _python_min_cut(
    network: FlowNetwork,
) -> Tuple[float, set[int], list[tuple[int, int]]]:
    """Legacy engine: list-based Dinic plus a Python reachability walk."""
    from repro.flow.dinic import _bfs_levels, _blocking_flow

    residual = ResidualGraph.from_network(network)
    source, sink = network.source_index, network.sink_index

    # Re-run Dinic on this residual instance (dinic_max_flow builds its
    # own, so inline the loop here to keep the final residual state).
    while True:
        levels = _bfs_levels(residual, source, sink)
        if levels is None:
            break
        cursor = [0] * residual.n
        _blocking_flow(residual, levels, source, sink, cursor)

    # Reachability in the final residual graph.
    reachable = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for arc_id in residual.adj[u]:
            v = residual.to[arc_id]
            if v not in reachable and residual.cap[arc_id] > _EPS:
                reachable.add(v)
                queue.append(v)

    graph = network.graph
    cut_arcs: list[tuple[int, int]] = []
    capacity = 0.0
    for u in reachable:
        for v, cap in graph.out_items(u).items():
            if v not in reachable:
                cut_arcs.append((u, v))
                capacity += cap
    return capacity, reachable, cut_arcs
