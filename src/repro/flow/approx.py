"""Quasi-stable max-flow approximation (Sec. 4.2, Theorem 6).

Pipeline: color the network with the source and sink pinned to singleton
colors (``alpha = beta = 0``, the paper's choice for flow — only the total
inter-color capacity matters, not class sizes), build the reduced network,
and solve max-flow on it.

Two reduced capacity functions are supported:

* ``c_hat_2[i, j] = c(P_i, P_j)`` — block capacity sums; the reduced
  max-flow **upper-bounds** the true value and is the deployed
  approximation (cheap: one sparse triple product);
* ``c_hat_1[i, j] = maxUFlow(P_i, P_j, c)`` — uniform-flow capacities;
  the reduced max-flow **lower-bounds** the true value (expensive: one LP
  per adjacent color pair; exposed for the Theorem 6 bound experiments).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.reduced import block_weights
from repro.core.rothko import Rothko, RothkoResult
from repro.flow.network import FlowNetwork, FlowResult, max_flow
from repro.flow.uniform import max_uniform_flow, max_uniform_flow_assignment
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.digraph import WeightedDiGraph


def color_flow_network(
    network: FlowNetwork,
    n_colors: int | None = None,
    q: float | None = None,
    split_mean: str = "arithmetic",
) -> RothkoResult:
    """Run Rothko on the network with ``{s}`` and ``{t}`` pinned.

    The initial partition is ``{s}, {t}, V - {s, t}`` with the first two
    frozen, so the coloring always satisfies Theorem 6's precondition
    ``P_0 = {s}, P_k = {t}``.
    """
    graph = network.graph
    labels = np.full(graph.n_nodes, 2, dtype=np.int64)
    labels[network.source_index] = 0
    labels[network.sink_index] = 1
    initial = Coloring(labels)
    # Coloring canonicalizes labels by first occurrence: look the pinned
    # singleton ids up rather than assuming they stayed 0 and 1.
    frozen = (
        initial.color_of(network.source_index),
        initial.color_of(network.sink_index),
    )
    engine = Rothko(
        graph,
        initial=initial,
        alpha=0.0,
        beta=0.0,
        split_mean=split_mean,
        frozen=frozen,
    )
    return engine.run(
        max_colors=n_colors, q_tolerance=q if q is not None else 0.0
    )


def reduced_network(
    network: FlowNetwork,
    coloring: Coloring,
    bound: str = "upper",
) -> FlowNetwork:
    """Build the reduced network ``G_hat_2`` (upper) or ``G_hat_1`` (lower).

    Color ids become node labels; the colors of ``s`` and ``t`` become the
    reduced source/sink (they must be singletons).
    """
    if bound not in ("upper", "lower"):
        raise ValueError(f"bound must be 'upper' or 'lower', got {bound!r}")
    graph = network.graph
    source_color = coloring.color_of(network.source_index)
    sink_color = coloring.color_of(network.sink_index)
    if coloring.sizes[source_color] != 1 or coloring.sizes[sink_color] != 1:
        raise ValueError(
            "source and sink must be singleton colors (Theorem 6); use "
            "color_flow_network to build such a coloring"
        )

    if bound == "upper":
        capacities = block_weights(graph.to_csr(), coloring)
    else:
        capacities = _uniform_capacities(graph, coloring)

    reduced = WeightedDiGraph(directed=True)
    k = coloring.n_colors
    for color in range(k):
        reduced.add_node(color)
    capacities = sp.coo_matrix(capacities)
    for i, j, capacity in zip(capacities.row, capacities.col, capacities.data):
        if i != j and capacity > 0:
            reduced.add_edge(int(i), int(j), float(capacity))
    return FlowNetwork(reduced, source_color, sink_color)


def _uniform_capacities(
    graph: WeightedDiGraph, coloring: Coloring
) -> sp.csr_matrix:
    """``c_hat_1``: maxUFlow of every adjacent color block (Theorem 6)."""
    matrix = graph.to_csr()
    adjacency = block_weights(matrix, coloring).tocoo()
    classes = coloring.classes()
    rows, cols, values = [], [], []
    for i, j, total in zip(adjacency.row, adjacency.col, adjacency.data):
        if i == j or total <= 0:
            continue
        block = BipartiteGraph(matrix[classes[i]][:, classes[j]])
        value = max_uniform_flow(block)
        if value > 0:
            rows.append(i)
            cols.append(j)
            values.append(value)
    k = coloring.n_colors
    return sp.csr_matrix((values, (rows, cols)), shape=(k, k))


@dataclass(frozen=True)
class ApproxFlowResult:
    """End-to-end output of :func:`approx_max_flow`."""

    value: float
    coloring: Coloring
    reduced: FlowNetwork
    reduced_result: FlowResult
    coloring_seconds: float
    reduce_seconds: float
    solve_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.coloring_seconds + self.reduce_seconds + self.solve_seconds

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


def approx_max_flow(
    network: FlowNetwork,
    n_colors: int | None = None,
    q: float | None = None,
    bound: str = "upper",
    algorithm: str = "push_relabel",
    split_mean: str = "arithmetic",
) -> ApproxFlowResult:
    """Approximate ``maxFlow(G)`` on the reduced graph (the paper's method).

    End-to-end: color (s/t pinned) -> reduce -> solve.  With
    ``bound="upper"`` the result over-estimates the true flow; Theorem 6
    guarantees ``maxFlow(G_hat_1) <= maxFlow(G) <= maxFlow(G_hat_2)``.
    """
    if n_colors is None and q is None:
        raise ValueError("approx_max_flow needs n_colors and/or q")
    start = time.perf_counter()
    rothko = color_flow_network(
        network, n_colors=n_colors, q=q, split_mean=split_mean
    )
    coloring_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reduced = reduced_network(network, rothko.coloring, bound=bound)
    reduce_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reduced_result = max_flow(reduced, algorithm=algorithm)
    solve_seconds = time.perf_counter() - start

    return ApproxFlowResult(
        value=reduced_result.value,
        coloring=rothko.coloring,
        reduced=reduced,
        reduced_result=reduced_result,
        coloring_seconds=coloring_seconds,
        reduce_seconds=reduce_seconds,
        solve_seconds=solve_seconds,
    )


def lift_flow(
    network: FlowNetwork,
    coloring: Coloring,
    reduced_result: FlowResult,
    tol: float = 1e-9,
) -> FlowResult:
    """Lift a reduced flow on ``G_hat_1`` to a valid flow on ``G``.

    This is the constructive half of Theorem 6: for every reduced arc
    ``(i, j)`` carrying flow ``f_hat``, take the maximum *uniform* flow
    of the bipartite block ``(P_i, P_j, c)`` and scale it down by
    ``f_hat / f'(P_i, P_j)``.  Uniformity makes the per-node in/out flows
    constant within each color, so conservation on the reduced graph
    implies conservation on the original graph and the lifted flow has
    exactly the reduced value.

    The reduced flow must respect the ``c_hat_1`` (uniform-flow)
    capacities — i.e. come from ``reduced_network(..., bound="lower")``;
    otherwise a block cannot absorb its share and a
    :class:`~repro.exceptions.FlowError` is raised.
    """
    from repro.exceptions import FlowError

    matrix = network.graph.to_csr()
    classes = coloring.classes()
    lifted: dict[tuple[int, int], float] = {}
    for (i, j), f_hat in reduced_result.arc_flow.items():
        if f_hat <= tol:
            continue
        members_i = classes[i]
        members_j = classes[j]
        block = BipartiteGraph(matrix[members_i][:, members_j])
        capacity, assignment = max_uniform_flow_assignment(block)
        if f_hat > capacity + tol:
            raise FlowError(
                f"reduced flow {f_hat} between colors ({i}, {j}) exceeds "
                f"the block's maximum uniform flow {capacity}; lift the "
                "flow of the lower-bound reduced network instead"
            )
        scale = f_hat / capacity
        assignment = assignment.tocoo()
        for a, b, value in zip(assignment.row, assignment.col, assignment.data):
            if value <= 0:
                continue
            arc = (int(members_i[a]), int(members_j[b]))
            lifted[arc] = lifted.get(arc, 0.0) + value * scale
    return FlowResult(value=reduced_result.value, arc_flow=lifted)
