"""Quasi-stable max-flow approximation (Sec. 4.2, Theorem 6).

Pipeline: color the network with the source and sink pinned to singleton
colors (``alpha = beta = 0``, the paper's choice for flow — only the total
inter-color capacity matters, not class sizes), build the reduced network,
and solve max-flow on it.

Two reduced capacity functions are supported:

* ``c_hat_2[i, j] = c(P_i, P_j)`` — block capacity sums; the reduced
  max-flow **upper-bounds** the true value and is the deployed
  approximation (cheap: one sparse triple product);
* ``c_hat_1[i, j] = maxUFlow(P_i, P_j, c)`` — uniform-flow capacities;
  the reduced max-flow **lower-bounds** the true value (expensive: one LP
  per adjacent color pair; exposed for the Theorem 6 bound experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.reduced import block_weights as _scratch_block_weights
from repro.core.rothko import Rothko, RothkoResult
from repro.flow.network import FlowNetwork, FlowResult, max_flow
from repro.flow.uniform import max_uniform_flow, max_uniform_flow_assignment
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.timing import StageTimings


def flow_initial_coloring(
    network: FlowNetwork,
) -> tuple[Coloring, tuple[int, int]]:
    """Initial partition ``{s}, {t}, V - {s, t}`` plus the frozen ids.

    This is Theorem 6's precondition ``P_0 = {s}, P_k = {t}``; the two
    pinned colors must stay singletons, so they are returned as the
    frozen set.  Coloring canonicalizes labels by first occurrence, so
    the pinned singleton ids are looked up rather than assumed.
    """
    graph = network.graph
    labels = np.full(graph.n_nodes, 2, dtype=np.int64)
    labels[network.source_index] = 0
    labels[network.sink_index] = 1
    initial = Coloring(labels)
    frozen = (
        initial.color_of(network.source_index),
        initial.color_of(network.sink_index),
    )
    return initial, frozen


def color_flow_network(
    network: FlowNetwork,
    n_colors: int | None = None,
    q: float | None = None,
    split_mean: str = "arithmetic",
) -> RothkoResult:
    """Run Rothko on the network with ``{s}`` and ``{t}`` pinned.

    ``alpha = beta = 0`` per the paper's choice for flow — only the
    total inter-color capacity matters, not class sizes.
    """
    initial, frozen = flow_initial_coloring(network)
    engine = Rothko(
        network.graph,
        initial=initial,
        alpha=0.0,
        beta=0.0,
        split_mean=split_mean,
        frozen=frozen,
    )
    return engine.run(
        max_colors=n_colors, q_tolerance=q if q is not None else 0.0
    )


def reduced_network(
    network: FlowNetwork,
    coloring: Coloring,
    bound: str = "upper",
    block_weights: np.ndarray | sp.spmatrix | None = None,
) -> FlowNetwork:
    """Build the reduced network ``G_hat_2`` (upper) or ``G_hat_1`` (lower).

    Color ids become node labels; the colors of ``s`` and ``t`` become the
    reduced source/sink (they must be singletons).  ``block_weights``
    accepts a precomputed ``W = S^T A S`` (canonical color-id order) —
    the progressive pipeline runner maintains it incrementally across
    splits, skipping the sparse triple product per budget.
    """
    if bound not in ("upper", "lower"):
        raise ValueError(f"bound must be 'upper' or 'lower', got {bound!r}")
    graph = network.graph
    source_color = coloring.color_of(network.source_index)
    sink_color = coloring.color_of(network.sink_index)
    if coloring.sizes[source_color] != 1 or coloring.sizes[sink_color] != 1:
        raise ValueError(
            "source and sink must be singleton colors (Theorem 6); use "
            "color_flow_network to build such a coloring"
        )

    if bound == "upper":
        capacities = (
            _scratch_block_weights(graph.to_csr(), coloring)
            if block_weights is None
            else block_weights
        )
    else:
        capacities = _uniform_capacities(graph, coloring, block_weights)

    reduced = WeightedDiGraph(directed=True)
    k = coloring.n_colors
    for color in range(k):
        reduced.add_node(color)
    capacities = sp.coo_matrix(capacities)
    for i, j, capacity in zip(capacities.row, capacities.col, capacities.data):
        if i != j and capacity > 0:
            reduced.add_edge(int(i), int(j), float(capacity))
    return FlowNetwork(reduced, source_color, sink_color)


def _uniform_capacities(
    graph: WeightedDiGraph,
    coloring: Coloring,
    block_sums: np.ndarray | sp.spmatrix | None = None,
) -> sp.csr_matrix:
    """``c_hat_1``: maxUFlow of every adjacent color block (Theorem 6).

    ``block_sums`` optionally supplies the precomputed block weights
    used to find the adjacent color pairs (one LP is solved per pair).
    """
    matrix = graph.to_csr()
    if block_sums is None:
        block_sums = _scratch_block_weights(matrix, coloring)
    adjacency = sp.coo_matrix(block_sums)
    classes = coloring.classes()
    rows, cols, values = [], [], []
    for i, j, total in zip(adjacency.row, adjacency.col, adjacency.data):
        if i == j or total <= 0:
            continue
        block = BipartiteGraph(matrix[classes[i]][:, classes[j]])
        value = max_uniform_flow(block)
        if value > 0:
            rows.append(i)
            cols.append(j)
            values.append(value)
    k = coloring.n_colors
    return sp.csr_matrix((values, (rows, cols)), shape=(k, k))


@dataclass(frozen=True)
class ApproxFlowResult:
    """End-to-end output of :func:`approx_max_flow`."""

    value: float
    coloring: Coloring
    reduced: FlowNetwork
    reduced_result: FlowResult
    timings: StageTimings

    @property
    def coloring_seconds(self) -> float:
        return self.timings.coloring

    @property
    def reduce_seconds(self) -> float:
        return self.timings.reduce

    @property
    def solve_seconds(self) -> float:
        return self.timings.solve

    @property
    def total_seconds(self) -> float:
        return self.timings.total

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


def approx_max_flow(
    network: FlowNetwork,
    n_colors: int | None = None,
    q: float | None = None,
    bound: str = "upper",
    algorithm: str = "push_relabel",
    split_mean: str = "arithmetic",
    engine: str = "arcstore",
) -> ApproxFlowResult:
    """Approximate ``maxFlow(G)`` on the reduced graph (the paper's method).

    End-to-end: color (s/t pinned) -> reduce -> solve, driven through
    the shared :mod:`repro.pipeline` runner.  With ``bound="upper"`` the
    result over-estimates the true flow; Theorem 6 guarantees
    ``maxFlow(G_hat_1) <= maxFlow(G) <= maxFlow(G_hat_2)``.  ``engine``
    selects the exact solver core used on the reduced network (the flat
    arc-store engine by default).
    """
    if n_colors is None and q is None:
        raise ValueError("approx_max_flow needs n_colors and/or q")
    from repro.pipeline import MaxFlowTask, run_task

    task = MaxFlowTask(
        network,
        bound=bound,
        algorithm=algorithm,
        split_mean=split_mean,
        engine=engine,
    )
    result = run_task(task, n_colors=n_colors, q=q)
    return ApproxFlowResult(
        value=result.value,
        coloring=result.coloring,
        reduced=result.reduced,
        reduced_result=result.solution,
        timings=result.timings,
    )


def lift_flow(
    network: FlowNetwork,
    coloring: Coloring,
    reduced_result: FlowResult,
    tol: float = 1e-9,
) -> FlowResult:
    """Lift a reduced flow on ``G_hat_1`` to a valid flow on ``G``.

    This is the constructive half of Theorem 6: for every reduced arc
    ``(i, j)`` carrying flow ``f_hat``, take the maximum *uniform* flow
    of the bipartite block ``(P_i, P_j, c)`` and scale it down by
    ``f_hat / f'(P_i, P_j)``.  Uniformity makes the per-node in/out flows
    constant within each color, so conservation on the reduced graph
    implies conservation on the original graph and the lifted flow has
    exactly the reduced value.

    The reduced flow must respect the ``c_hat_1`` (uniform-flow)
    capacities — i.e. come from ``reduced_network(..., bound="lower")``;
    otherwise a block cannot absorb its share and a
    :class:`~repro.exceptions.FlowError` is raised.
    """
    from repro.exceptions import FlowError

    matrix = network.graph.to_csr()
    classes = coloring.classes()
    lifted: dict[tuple[int, int], float] = {}
    for (i, j), f_hat in reduced_result.arc_flow.items():
        if f_hat <= tol:
            continue
        members_i = classes[i]
        members_j = classes[j]
        block = BipartiteGraph(matrix[members_i][:, members_j])
        capacity, assignment = max_uniform_flow_assignment(block)
        if f_hat > capacity + tol:
            raise FlowError(
                f"reduced flow {f_hat} between colors ({i}, {j}) exceeds "
                f"the block's maximum uniform flow {capacity}; lift the "
                "flow of the lower-bound reduced network instead"
            )
        scale = f_hat / capacity
        assignment = assignment.tocoo()
        for a, b, value in zip(assignment.row, assignment.col, assignment.data):
            if value <= 0:
                continue
            arc = (int(members_i[a]), int(members_j[b]))
            lifted[arc] = lifted.get(arc, 0.0) + value * scale
    return FlowResult(value=reduced_result.value, arc_flow=lifted)
