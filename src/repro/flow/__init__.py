"""Max-flow substrate and the quasi-stable flow approximation (Sec. 4.2).

Exact solving is a thin view over the CSR-native arc-store core
(:mod:`repro.solvers`); every solver entry point takes
``engine="arcstore" | "python"``, with the legacy pure-Python tier kept
for cross-checking.
"""

from repro.flow.approx import (
    approx_max_flow,
    color_flow_network,
    flow_initial_coloring,
    lift_flow,
    reduced_network,
)
from repro.flow.dinic import dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.mincut import min_cut
from repro.flow.network import FlowNetwork, FlowResult, max_flow
from repro.flow.push_relabel import push_relabel_max_flow
from repro.flow.uniform import max_uniform_flow, max_uniform_flow_assignment

__all__ = [
    "approx_max_flow",
    "color_flow_network",
    "flow_initial_coloring",
    "lift_flow",
    "reduced_network",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "min_cut",
    "FlowNetwork",
    "FlowResult",
    "max_flow",
    "push_relabel_max_flow",
    "max_uniform_flow",
    "max_uniform_flow_assignment",
]
