"""Maximum uniform flows in bipartite graphs (Definition 5, Lemma 8).

A flow in a bipartite graph ``(X, Y, c)`` is *uniform* when every source
node carries the same outgoing flow and every target node the same
incoming flow.  ``maxUFlow`` defines the lower-bound capacities
``c_hat_1`` of Theorem 6.  Three methods are provided:

* ``"biregular"`` fast path — in an (a, b)-biregular graph Lemma 8 gives
  ``maxUFlow = min(a |X|, b |Y|) = c(X, Y)`` outright;
* ``"parametric"`` — binary search over the target value ``F``: extend the
  graph with a super-source (arcs of capacity ``F/|X|``) and super-sink
  (``F/|Y|``); ``F`` is feasible iff the extended max-flow equals ``F``
  (exactly the construction in Lemma 8's proof);
* ``"lp"`` — the exact LP: maximize ``|X| * phi`` subject to per-edge
  capacities, row sums equal ``phi``, column sums equal ``psi``.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro.core.kernels import scatter_select_sums
from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.digraph import WeightedDiGraph

_METHODS = ("auto", "biregular", "parametric", "lp")


def lemma8_condition_holds(graph: BipartiteGraph, a: float, b: float) -> bool:
    """Check Eq. (8): ``c(S, T) + F >= a |S| + b |T|`` for all
    ``S subseteq X, T subseteq Y`` with ``F = min(a |X|, b |Y|)``.

    Enumerates the left subsets only: for a fixed ``S`` the worst right
    subset is available in closed form.  With
    ``w_S(y) = c(S, {y})`` (the row/column reductions, computed on the
    sparse CSR arrays — no dense materialization),

    ``min_T [c(S, T) - b |T|] = sum_y min(0, w_S(y) - b)``

    because each right node contributes independently and only nodes with
    ``w_S(y) < b`` make the left side smaller.  That reduces the check
    from ``O(4^n)`` subset pairs to ``O(2^|X|)`` sparse reductions, so
    the guard is on the left side only (still exponential; tests).
    """
    from itertools import combinations

    n_left, n_right = graph.n_left, graph.n_right
    if n_left > 20:
        raise ValueError(
            "brute-force Lemma 8 check limited to 20 left nodes"
        )
    target = min(a * n_left, b * n_right)
    matrix = graph.matrix
    left_all = range(n_left)
    for ls in range(n_left + 1):
        for subset_left in combinations(left_all, ls):
            if subset_left:
                col_sums = scatter_select_sums(
                    matrix.indptr, matrix.indices, matrix.data,
                    np.asarray(subset_left, dtype=np.int64), n_right,
                )
                worst = float(np.minimum(col_sums - b, 0.0).sum())
            else:
                worst = n_right * min(-b, 0.0)
            if worst + target < a * ls - 1e-9:
                return False
    return True


def _uniform_flow_lp(
    graph: BipartiteGraph, return_flow: bool = False
):
    """Exact maxUFlow via linear programming (scipy HiGHS).

    Variables: one flow per edge, plus the per-source rate ``phi`` and
    per-target rate ``psi``.  Maximize ``|X| phi``.  With
    ``return_flow=True`` returns ``(value, edge_flow_matrix)`` where the
    matrix is a sparse |X| x |Y| uniform flow achieving the value.
    """
    coo = graph.matrix.tocoo()
    n_edges = coo.nnz
    n_left, n_right = graph.n_left, graph.n_right
    if n_edges == 0:
        if return_flow:
            return 0.0, sp.csr_matrix((n_left, n_right))
        return 0.0
    # Columns: [edge flows..., phi, psi]
    n_vars = n_edges + 2
    rows, cols, vals = [], [], []
    rhs = []
    row_id = 0
    # Row sums: sum of edges out of x - phi = 0
    for x in range(n_left):
        mask = coo.row == x
        for edge_index in np.nonzero(mask)[0]:
            rows.append(row_id)
            cols.append(int(edge_index))
            vals.append(1.0)
        rows.append(row_id)
        cols.append(n_edges)
        vals.append(-1.0)
        rhs.append(0.0)
        row_id += 1
    # Column sums: sum of edges into y - psi = 0
    for y in range(n_right):
        mask = coo.col == y
        for edge_index in np.nonzero(mask)[0]:
            rows.append(row_id)
            cols.append(int(edge_index))
            vals.append(1.0)
        rows.append(row_id)
        cols.append(n_edges + 1)
        vals.append(-1.0)
        rhs.append(0.0)
        row_id += 1
    a_eq = sp.csr_matrix((vals, (rows, cols)), shape=(row_id, n_vars))
    bounds = [(0.0, float(c)) for c in coo.data] + [(0.0, None), (0.0, None)]
    objective = np.zeros(n_vars)
    objective[n_edges] = -float(n_left)  # linprog minimizes
    solution = scipy.optimize.linprog(
        objective, A_eq=a_eq, b_eq=rhs, bounds=bounds, method="highs"
    )
    if not solution.success:
        raise FlowError(f"uniform-flow LP failed: {solution.message}")
    value = float(-solution.fun)
    if not return_flow:
        return value
    flow = sp.csr_matrix(
        (solution.x[:n_edges], (coo.row, coo.col)),
        shape=(n_left, n_right),
    )
    return value, flow


def _uniform_flow_feasible(graph: BipartiteGraph, target: float) -> bool:
    """Is there a uniform flow of value ``target``? (Lemma 8 construction.)"""
    n_left, n_right = graph.n_left, graph.n_right
    network_graph = WeightedDiGraph(directed=True)
    network_graph.add_node("s")
    network_graph.add_node("t")
    for x in range(n_left):
        network_graph.add_edge("s", ("x", x), target / n_left)
    for y in range(n_right):
        network_graph.add_edge(("y", y), "t", target / n_right)
    coo = graph.matrix.tocoo()
    for x, y, c in zip(coo.row, coo.col, coo.data):
        network_graph.add_edge(("x", int(x)), ("y", int(y)), float(c))
    result = max_flow(
        FlowNetwork(network_graph, "s", "t"), algorithm="dinic"
    )
    return result.value >= target * (1 - 1e-9)


def max_uniform_flow(
    graph: BipartiteGraph,
    method: str = "auto",
    tol: float = 1e-6,
) -> float:
    """``maxUFlow(X, Y, c)`` — the maximum uniform flow value (Def. 5).

    ``"auto"`` uses the biregular closed form when it applies, else the LP.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if graph.n_left == 0 or graph.n_right == 0 or graph.n_edges == 0:
        return 0.0
    row_sums = graph.row_sums()
    col_sums = graph.col_sums()

    if method in ("auto", "biregular") and graph.is_biregular():
        # Lemma 8 / Corollary 9: F = min(a |X|, b |Y|) = c(X, Y).
        return float(
            min(row_sums[0] * graph.n_left, col_sums[0] * graph.n_right)
        )
    if method == "biregular":
        raise FlowError("graph is not biregular; no closed form")
    if method in ("auto", "lp"):
        return _uniform_flow_lp(graph)

    # Parametric binary search.  maxUFlow is at most min over the
    # bottleneck rates implied by the smallest row/column sums.
    upper = min(
        float(row_sums.min()) * graph.n_left,
        float(col_sums.min()) * graph.n_right,
    )
    if upper <= tol:
        return 0.0
    low, high = 0.0, upper
    if _uniform_flow_feasible(graph, high):
        return high
    while high - low > tol * max(1.0, upper):
        mid = (low + high) / 2.0
        if _uniform_flow_feasible(graph, mid):
            low = mid
        else:
            high = mid
    return low


def max_uniform_flow_assignment(
    graph: BipartiteGraph,
) -> tuple[float, sp.csr_matrix]:
    """``maxUFlow`` together with an achieving flow assignment.

    Used by the Theorem 6 lifting: the reduced flow between two colors is
    spread over the block by scaling this uniform flow.
    """
    if graph.n_left == 0 or graph.n_right == 0 or graph.n_edges == 0:
        return 0.0, sp.csr_matrix((graph.n_left, graph.n_right))
    return _uniform_flow_lp(graph, return_flow=True)
