"""FIFO push–relabel with the gap heuristic — the paper's exact baseline.

The paper benchmarks against GraphsFlows' push-relabel implementation
("considered to be the benchmark for max-flow", Sec. 6.1); this is the
same algorithm family: highest-level selection is replaced by FIFO active
vertex processing, plus the gap heuristic that relabels whole empty
levels at once.  Complexity O(V^3); in practice much faster.

This module is the legacy ``python`` engine; the arc-store variant
(:func:`repro.solvers.maxflow.push_relabel`) runs highest-label
selection with per-height bucket arrays over the flat arc ids.
"""

from __future__ import annotations

from collections import deque

from repro.obs import recorder as _obs
from repro.flow.network import FlowNetwork, FlowResult, ResidualGraph

_EPS = 1e-12


def push_relabel_max_flow(network: FlowNetwork) -> FlowResult:
    """Compute the maximum s-t flow with FIFO push-relabel."""
    residual = ResidualGraph.from_network(network)
    n = residual.n
    source, sink = network.source_index, network.sink_index

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)
    height[source] = n
    count_at_height[0] = n - 1
    count_at_height[n] += 1

    active: deque[int] = deque()
    in_queue = [False] * n
    cursor = [0] * n

    relabels = 0
    pushes = 0

    def push(arc_id: int, u: int) -> None:
        nonlocal pushes
        pushes += 1
        v = residual.to[arc_id]
        delta = min(excess[u], residual.cap[arc_id])
        residual.cap[arc_id] -= delta
        residual.cap[arc_id ^ 1] += delta
        excess[u] -= delta
        excess[v] += delta
        if v not in (source, sink) and not in_queue[v] and excess[v] > _EPS:
            in_queue[v] = True
            active.append(v)

    # Saturate every source arc.
    excess[source] = float("inf")
    for arc_id in list(residual.adj[source]):
        if residual._forward[arc_id] and residual.cap[arc_id] > _EPS:
            push(arc_id, source)
    excess[source] = 0.0

    def relabel(u: int) -> None:
        nonlocal relabels
        relabels += 1
        old_height = height[u]
        min_height = 2 * n
        for arc_id in residual.adj[u]:
            if residual.cap[arc_id] > _EPS:
                min_height = min(min_height, height[residual.to[arc_id]])
        if min_height >= 2 * n:
            # A node with excess always has a residual arc back toward the
            # source, so this indicates a corrupted residual graph.
            raise RuntimeError(f"relabel of node {u} found no residual arc")
        new_height = min_height + 1
        count_at_height[old_height] -= 1
        height[u] = new_height
        count_at_height[new_height] += 1
        cursor[u] = 0
        # Gap heuristic: if the old level emptied out, every node above it
        # (except s) can never push to the sink again — lift them past n.
        if count_at_height[old_height] == 0 and old_height < n:
            for node in range(n):
                if node != source and old_height < height[node] <= n:
                    count_at_height[height[node]] -= 1
                    height[node] = n + 1
                    count_at_height[n + 1] += 1

    while active:
        u = active.popleft()
        in_queue[u] = False
        # Discharge u completely.
        while excess[u] > _EPS:
            if cursor[u] == len(residual.adj[u]):
                relabel(u)
                continue
            arc_id = residual.adj[u][cursor[u]]
            v = residual.to[arc_id]
            if residual.cap[arc_id] > _EPS and height[u] == height[v] + 1:
                push(arc_id, u)
            else:
                cursor[u] += 1

    recorder = _obs._active
    recorder.count("flow.pr.relabels", relabels)
    recorder.count("flow.pr.pushes", pushes)
    return FlowResult(value=excess[sink], arc_flow=residual.extract_flow())
