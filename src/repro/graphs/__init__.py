"""Graph substrate: weighted digraphs, bipartite graphs, generators, and IO."""

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.digraph import WeightedDiGraph, coerce_index_array
from repro.graphs.edgestore import (
    EdgeStore,
    EdgeStoreWriter,
    ingest_arrays,
    ingest_edgelist,
    ingest_uniform_random,
)
from repro.graphs.generators import (
    barabasi_albert,
    biregular_bipartite,
    centrality_counterexample,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    grid_3d,
    karate_club,
    lifted_biregular,
    pathological_flow_network,
    path_graph,
    powerlaw_cluster,
    star_graph,
    stochastic_block,
    two_maximal_colorings_graph,
)
from repro.graphs.ops import (
    bipartite_block,
    degree_vector,
    induced_subgraph,
    perturb_add_random_edges,
)

__all__ = [
    "BipartiteGraph",
    "EdgeStore",
    "EdgeStoreWriter",
    "WeightedDiGraph",
    "coerce_index_array",
    "ingest_arrays",
    "ingest_edgelist",
    "ingest_uniform_random",
    "barabasi_albert",
    "biregular_bipartite",
    "centrality_counterexample",
    "cycle_graph",
    "erdos_renyi",
    "grid_2d",
    "grid_3d",
    "karate_club",
    "lifted_biregular",
    "pathological_flow_network",
    "path_graph",
    "powerlaw_cluster",
    "star_graph",
    "stochastic_block",
    "two_maximal_colorings_graph",
    "bipartite_block",
    "degree_vector",
    "induced_subgraph",
    "perturb_add_random_edges",
]
