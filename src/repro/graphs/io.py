"""Graph readers/writers: weighted edge lists and DIMACS max-flow files.

The DIMACS format is the lingua franca of the min-cut/max-flow benchmark
suites the paper evaluates on [1, 19]; supporting it means real instances
can be dropped in whenever they are available locally.
"""

from __future__ import annotations

import os
from typing import TextIO, Tuple

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.labels import coerce_label


def write_edgelist(graph: WeightedDiGraph, path: str | os.PathLike) -> None:
    """Write ``u v weight`` lines (labels rendered with ``str``)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# directed={graph.directed}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def read_edgelist(
    path: str | os.PathLike, directed: bool = True
) -> WeightedDiGraph:
    """Read ``u v [weight]`` lines; ``#`` comments are skipped.

    Integer-looking node labels are parsed as ints, others kept as
    strings; the ``# directed=...`` header written by
    :func:`write_edgelist` overrides the ``directed`` argument.
    """
    graph: WeightedDiGraph | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "directed=" in line and graph is None:
                    directed = line.split("directed=")[1].strip() == "True"
                continue
            if graph is None:
                graph = WeightedDiGraph(directed=directed)
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v [w]', got {line!r}"
                )
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            graph.add_edge(coerce_label(parts[0]), coerce_label(parts[1]), weight)
    if graph is None:
        graph = WeightedDiGraph(directed=directed)
    return graph


def write_dimacs_flow(
    graph: WeightedDiGraph,
    source,
    sink,
    path: str | os.PathLike,
) -> None:
    """Write a DIMACS ``max`` problem file (1-based node numbering)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"p max {graph.n_nodes} {graph.n_arcs}\n")
        handle.write(f"n {graph.index_of(source) + 1} s\n")
        handle.write(f"n {graph.index_of(sink) + 1} t\n")
        for ui in range(graph.n_nodes):
            for vi, w in graph.out_items(ui).items():
                handle.write(f"a {ui + 1} {vi + 1} {w:g}\n")


def read_dimacs_flow(
    path: str | os.PathLike,
) -> Tuple[WeightedDiGraph, int, int]:
    """Read a DIMACS max-flow file; returns ``(graph, source, sink)``.

    Node labels are the 0-based integers; parallel arcs have their
    capacities summed (the standard DIMACS interpretation).
    """
    graph = WeightedDiGraph(directed=True)
    source: int | None = None
    sink: int | None = None
    declared_nodes = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind == "p":
                if len(parts) != 4 or parts[1] != "max":
                    raise GraphError(
                        f"{path}:{line_number}: expected 'p max N M', got {line!r}"
                    )
                declared_nodes = int(parts[2])
                for i in range(declared_nodes):
                    graph.add_node(i)
            elif kind == "n":
                node = int(parts[1]) - 1
                if parts[2] == "s":
                    source = node
                elif parts[2] == "t":
                    sink = node
                else:
                    raise GraphError(
                        f"{path}:{line_number}: node designator must be s/t"
                    )
            elif kind == "a":
                u, v, cap = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                existing = graph.weight(u, v)
                graph.add_edge(u, v, existing + cap)
            else:
                raise GraphError(f"{path}:{line_number}: unknown line {line!r}")
    if source is None or sink is None:
        raise GraphError(f"{path}: missing source/sink declaration")
    return graph, source, sink
