"""Graph generators: classic random models plus the paper's special graphs.

Every generator is deterministic given a ``seed`` and returns a
:class:`~repro.graphs.digraph.WeightedDiGraph`.  The module covers:

* classic models used as dataset stand-ins (Erdős–Rényi, Barabási–Albert,
  powerlaw-cluster, stochastic block);
* the paper's figures: Zachary's karate club (Fig. 1), the lifted biregular
  graph with a planted stable coloring (Fig. 2), the pathological flow
  network (Fig. 4 / Example 7), the centrality counterexample (Fig. 5),
  and the graph with two maximal q-colorings (Fig. 6);
* grid graphs, the substrate for vision-style max-flow instances.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.rng import SeedLike, ensure_rng

# ----------------------------------------------------------------------
# Zachary's karate club (Fig. 1).  The canonical 34-node, 78-edge graph
# from Zachary (1977); hardcoded so the generator works offline and does
# not depend on networkx data files.  1-based node ids as in the paper.
# ----------------------------------------------------------------------
_KARATE_EDGES = [
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9),
    (1, 11), (1, 12), (1, 13), (1, 14), (1, 18), (1, 20), (1, 22),
    (1, 32), (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22),
    (2, 31), (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29),
    (3, 33), (4, 8), (4, 13), (4, 14), (5, 7), (5, 11), (6, 7), (6, 11),
    (6, 17), (7, 17), (9, 31), (9, 33), (9, 34), (10, 34), (14, 34),
    (15, 33), (15, 34), (16, 33), (16, 34), (19, 33), (19, 34), (20, 34),
    (21, 33), (21, 34), (23, 33), (23, 34), (24, 26), (24, 28), (24, 30),
    (24, 33), (24, 34), (25, 26), (25, 28), (25, 32), (26, 32), (27, 30),
    (27, 34), (28, 34), (29, 32), (29, 34), (30, 33), (30, 34), (31, 33),
    (31, 34), (32, 33), (32, 34), (33, 34),
]


def karate_club() -> WeightedDiGraph:
    """Zachary's karate club graph: 34 nodes, 78 edges, undirected.

    The running example of Fig. 1: its stable coloring has 27 colors while
    a q=3 quasi-stable coloring needs only 6.
    """
    edges = np.asarray(_KARATE_EDGES, dtype=np.int64) - 1
    return WeightedDiGraph.from_arrays(
        edges[:, 0], edges[:, 1], n_nodes=34, directed=False,
        labels=list(range(1, 35)),
    )


# ----------------------------------------------------------------------
# classic random models
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> WeightedDiGraph:
    """G(n, p) undirected random graph (vectorized upper-triangle draw)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    return WeightedDiGraph.from_arrays(
        iu[mask], ju[mask], n_nodes=n, directed=False
    )


def barabasi_albert(n: int, m: int, seed: SeedLike = None) -> WeightedDiGraph:
    """Barabási–Albert preferential attachment graph.

    Starts from a star on ``m + 1`` nodes, then attaches each new node to
    ``m`` existing nodes chosen proportionally to degree (sampling from the
    repeated-endpoints urn, the standard O(m) trick).
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    # Urn of endpoints; each edge contributes both ends.  Edges are
    # collected into flat lists and materialized once at the end — the
    # urn process is inherently sequential, but the graph build is not.
    src: list[int] = []
    dst: list[int] = []
    urn: list[int] = []
    for i in range(1, m + 1):
        src.append(0)
        dst.append(i)
        urn.extend((0, i))
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(urn[rng.integers(0, len(urn))])
        for target in targets:
            src.append(new)
            dst.append(target)
            urn.extend((new, target))
    return WeightedDiGraph.from_arrays(
        np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64),
        n_nodes=n, directed=False,
    )


def powerlaw_cluster(
    n: int, m: int, p: float, seed: SeedLike = None
) -> WeightedDiGraph:
    """Holme–Kim powerlaw cluster graph (BA plus triangle-closing steps).

    Stand-in for social graphs with heavy-tailed degrees *and* clustering
    (facebook/deezer-like structure).
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"triangle probability must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    urn: list[int] = []
    for i in range(1, m + 1):
        src.append(0)
        dst.append(i)
        urn.extend((0, i))
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(1, m + 1):
        adjacency[0].add(i)
        adjacency[i].add(0)
    for new in range(m + 1, n):
        added: set[int] = set()
        target = urn[rng.integers(0, len(urn))]
        while len(added) < m:
            if target not in added:
                added.add(target)
            # Triangle step: connect to a neighbor of the previous target.
            if len(added) < m and rng.random() < p and adjacency[target]:
                neighbors = [v for v in adjacency[target] if v not in added and v != new]
                if neighbors:
                    added.add(neighbors[rng.integers(0, len(neighbors))])
            target = urn[rng.integers(0, len(urn))]
        for t in added:
            src.append(new)
            dst.append(t)
            adjacency[new].add(t)
            adjacency[t].add(new)
            urn.extend((new, t))
    return WeightedDiGraph.from_arrays(
        np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64),
        n_nodes=n, directed=False,
    )


def stochastic_block(
    sizes: list[int],
    p_matrix: np.ndarray | list[list[float]],
    seed: SeedLike = None,
) -> WeightedDiGraph:
    """Stochastic block model: community ``i``-``j`` pairs joined w.p. ``p[i][j]``.

    Stand-in for community-structured graphs (dblp-like).
    """
    probs = np.asarray(p_matrix, dtype=float)
    k = len(sizes)
    if probs.shape != (k, k):
        raise GraphError(f"p_matrix must be {k}x{k}, got {probs.shape}")
    rng = ensure_rng(seed)
    total = sum(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    membership = np.empty(total, dtype=int)
    for block, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
        membership[lo:hi] = block
    iu, ju = np.triu_indices(total, k=1)
    thresholds = probs[membership[iu], membership[ju]]
    mask = rng.random(iu.size) < thresholds
    return WeightedDiGraph.from_arrays(
        iu[mask], ju[mask], n_nodes=total, directed=False
    )


# ----------------------------------------------------------------------
# simple deterministic families
# ----------------------------------------------------------------------
def path_graph(n: int) -> WeightedDiGraph:
    steps = np.arange(n - 1, dtype=np.int64)
    return WeightedDiGraph.from_arrays(
        steps, steps + 1, n_nodes=n, directed=False
    )


def cycle_graph(n: int) -> WeightedDiGraph:
    if n < 3:
        raise GraphError(f"cycle needs at least 3 nodes, got {n}")
    steps = np.arange(n, dtype=np.int64)
    return WeightedDiGraph.from_arrays(
        steps, (steps + 1) % n, n_nodes=n, directed=False
    )


def star_graph(n_leaves: int) -> WeightedDiGraph:
    """Hub node 0 connected to ``n_leaves`` leaves."""
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    return WeightedDiGraph.from_arrays(
        np.zeros(n_leaves, dtype=np.int64), leaves,
        n_nodes=n_leaves + 1, directed=False,
    )


def grid_2d(width: int, height: int) -> WeightedDiGraph:
    """4-connected ``width x height`` grid; node label = ``(x, y)``."""
    ids = np.arange(width * height, dtype=np.int64)
    x = ids % width
    y = ids // width
    right = ids[x + 1 < width]
    down = ids[y + 1 < height]
    src = np.concatenate([right, down])
    dst = np.concatenate([right + 1, down + width])
    labels = list(zip(x.tolist(), y.tolist()))
    return WeightedDiGraph.from_arrays(
        src, dst, n_nodes=width * height, directed=False, labels=labels
    )


def grid_3d(nx: int, ny: int, nz: int) -> WeightedDiGraph:
    """6-connected 3-D grid; node label = ``(x, y, z)``."""
    ids = np.arange(nx * ny * nz, dtype=np.int64)
    x = ids % nx
    y = (ids // nx) % ny
    z = ids // (nx * ny)
    right = ids[x + 1 < nx]
    down = ids[y + 1 < ny]
    deep = ids[z + 1 < nz]
    src = np.concatenate([right, down, deep])
    dst = np.concatenate([right + 1, down + nx, deep + nx * ny])
    labels = list(zip(x.tolist(), y.tolist(), z.tolist()))
    return WeightedDiGraph.from_arrays(
        src, dst, n_nodes=nx * ny * nz, directed=False, labels=labels
    )


def biregular_bipartite(
    n_left: int, n_right: int, out_degree: int
) -> WeightedDiGraph:
    """Unit-weight (a, b)-biregular bipartite graph as a directed graph.

    Left nodes are labeled ``("L", i)``, right nodes ``("R", j)``; all arcs
    go left -> right.  Wiring is the round-robin pattern of
    :meth:`BipartiteGraph.biregular`.
    """
    if out_degree > n_right:
        # Round-robin targets would collide, silently degenerating the
        # graph (same guard as BipartiteGraph.biregular).
        raise GraphError(
            f"out_degree {out_degree} exceeds right side size {n_right}"
        )
    if (n_left * out_degree) % n_right != 0:
        raise GraphError(
            "biregular graph needs n_left * out_degree divisible by n_right"
        )
    edge_ids = np.arange(n_left * out_degree, dtype=np.int64)
    src = edge_ids // out_degree
    dst = n_left + edge_ids % n_right
    labels = [("L", i) for i in range(n_left)]
    labels += [("R", j) for j in range(n_right)]
    return WeightedDiGraph.from_arrays(
        src, dst, n_nodes=n_left + n_right, directed=True, labels=labels
    )


def uniform_random_digraph(
    n: int, out_degree: int, seed: SeedLike = None
) -> WeightedDiGraph:
    """Directed random graph: every node draws ``out_degree`` targets
    uniformly at random (self-loops dropped, parallel draws sum weight).

    Fully vectorized — two array draws and one
    :meth:`WeightedDiGraph.from_arrays` call — so it scales to
    million-node instances in ``O(m)``; the large-scale Rothko benchmark
    uses it as its synthetic workload.
    """
    if n < 1 or out_degree < 1:
        raise GraphError(
            f"need n >= 1 and out_degree >= 1, got n={n}, d={out_degree}"
        )
    rng = ensure_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    dst = rng.integers(0, n, size=n * out_degree, dtype=np.int64)
    keep = src != dst
    return WeightedDiGraph.from_arrays(
        src[keep], dst[keep], n_nodes=n, directed=True
    )


# ----------------------------------------------------------------------
# paper-specific constructions
# ----------------------------------------------------------------------
def lifted_biregular(
    n_groups: int = 100,
    group_size: int = 10,
    template_edges: int = 1080,
    lift_degree: int = 2,
    seed: SeedLike = 0,
) -> tuple[WeightedDiGraph, np.ndarray]:
    """Graph with a planted ``n_groups``-color equitable partition (Fig. 2).

    A uniform random template graph with ``template_edges`` edges is drawn
    on ``n_groups`` supernodes; each template edge ``(i, j)`` is lifted to
    a ``lift_degree``-biregular bipartite graph between group ``i`` and
    group ``j``.  The groups form an equitable partition, so the stable
    coloring has at most ``n_groups`` colors; the template's heterogeneous
    degrees keep the supernodes 1-WL-distinguishable, so generically it
    has exactly ``n_groups`` (a regular template would collapse the stable
    coloring to a single color instead).

    With the defaults, ``|V| = 1000`` and ``|E| = template_edges *
    group_size * lift_degree = 21 600`` — the paper's robustness graph.

    Returns the graph and the planted group-membership array.
    """
    if not 1 <= lift_degree <= group_size:
        raise GraphError(
            f"need 1 <= lift_degree <= group_size, got {lift_degree}"
        )
    max_edges = n_groups * (n_groups - 1) // 2
    if not 1 <= template_edges <= max_edges:
        raise GraphError(
            f"need 1 <= template_edges <= {max_edges}, got {template_edges}"
        )
    rng = ensure_rng(seed)
    n = n_groups * group_size
    membership = np.repeat(np.arange(n_groups), group_size)

    iu, ju = np.triu_indices(n_groups, k=1)
    chosen = rng.choice(iu.size, size=template_edges, replace=False)
    block_a = np.repeat(np.arange(group_size, dtype=np.int64), lift_degree)
    block_d = np.tile(np.arange(lift_degree, dtype=np.int64), group_size)
    src_blocks: list[np.ndarray] = []
    dst_blocks: list[np.ndarray] = []
    for gi, gj in zip(iu[chosen].tolist(), ju[chosen].tolist()):
        # Lift (gi, gj) to a lift_degree-biregular bipartite block using a
        # rotated round-robin so different template edges use different
        # wirings (keeps the template nodes distinguishable).
        rotation = int(rng.integers(0, group_size))
        src_blocks.append(gi * group_size + block_a)
        dst_blocks.append(
            gj * group_size + (block_a + rotation + block_d) % group_size
        )
    graph = WeightedDiGraph.from_arrays(
        np.concatenate(src_blocks), np.concatenate(dst_blocks),
        n_nodes=n, directed=False,
    )
    return graph, membership


def pathological_flow_network(n: int) -> tuple[WeightedDiGraph, str, str]:
    """The layered network of Fig. 4 / Example 7 (shift-matching variant).

    Middle layers ``L1 .. L_{n-1}`` of ``n`` nodes each; ``s`` feeds every
    node of ``L1``; every node of ``L_{n-1}`` feeds ``t``; between
    consecutive layers node ``j`` connects only to node ``j + 1``.  All
    capacities are 1.

    Properties (verified in the test suite):

    * the layer coloring ``{s}, L1, ..., L_{n-1}, {t}`` is q-stable for q=1;
    * ``maxFlow = 2`` (only the two left-most staircases reach ``t``);
    * the maximum *uniform* flow between consecutive layers is 0, so the
      lower bound ``c_hat_1`` of Theorem 6 collapses while the upper bound
      ``c_hat_2`` is ~n — the paper's cautionary example.

    Returns ``(graph, source_label, sink_label)``.
    """
    if n < 3:
        raise GraphError(f"need n >= 3, got {n}")
    graph = WeightedDiGraph(directed=True)
    graph.add_node("s")
    graph.add_node("t")
    layers = n - 1
    for layer in range(1, layers + 1):
        for j in range(1, n + 1):
            graph.add_node((layer, j))
    for j in range(1, n + 1):
        graph.add_edge("s", (1, j), 1.0)
        graph.add_edge((layers, j), "t", 1.0)
    for layer in range(1, layers):
        for j in range(1, n):
            graph.add_edge((layer, j), (layer + 1, j + 1), 1.0)
    return graph, "s", "t"


def pathological_layer_coloring(n: int) -> np.ndarray:
    """The q=1 layer coloring that accompanies :func:`pathological_flow_network`.

    Colors: 0 for ``s``, 1..n-1 for the layers, n for ``t`` — aligned with
    the node insertion order of the generator.
    """
    layers = n - 1
    labels = [0, layers + 1]  # s, t
    for layer in range(1, layers + 1):
        labels.extend([layer] * n)
    return np.asarray(labels, dtype=np.int64)


def centrality_counterexample() -> tuple[WeightedDiGraph, int, int]:
    """A stable-colored graph where same-color nodes differ in centrality.

    Fig. 5's exact wiring is not fully recoverable from the paper, so we use
    the classic behaviorally-equivalent example: the disjoint union of a
    6-cycle and two triangles.  Every node has degree 2, hence the stable
    coloring (1-WL) is the single-color partition; but a 6-cycle node has
    strictly positive betweenness while a triangle node has betweenness 0.

    Returns ``(graph, u, v)`` where ``u`` (on the 6-cycle) and ``v`` (on a
    triangle) share a stable color yet ``g(u) != g(v)``.
    """
    graph = WeightedDiGraph(directed=False)
    for i in range(12):
        graph.add_node(i)
    # 6-cycle on 0..5
    for i in range(6):
        graph.add_edge(i, (i + 1) % 6)
    # two triangles on 6..8 and 9..11
    for base in (6, 9):
        graph.add_edge(base, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 2, base)
    return graph, 0, 6


def two_maximal_colorings_graph(n: int) -> tuple[WeightedDiGraph, list[int]]:
    """Fig. 6: a graph with two distinct maximal 1-stable colorings.

    Three bottom nodes feed disjoint fans of ``n``, ``n+1`` and ``n+2``
    top nodes.  Every top node has exactly one incoming edge, so all top
    nodes share a color; the bottom nodes have out-degrees ``n, n+1, n+2``
    and can be grouped either ``{1,2},{3}`` or ``{1},{2,3}`` — both maximal
    for q=1, so no maximum q-coloring exists (Theorem 12 context).

    Returns ``(graph, bottom_labels)``.
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    graph = WeightedDiGraph(directed=True)
    bottoms = ["b1", "b2", "b3"]
    for b in bottoms:
        graph.add_node(b)
    top = 0
    for b, fan in zip(bottoms, (n, n + 1, n + 2)):
        for _ in range(fan):
            graph.add_edge(b, ("top", top), 1.0)
            top += 1
    return graph, bottoms
