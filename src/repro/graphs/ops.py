"""Graph operations used by the coloring pipelines and experiments."""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.digraph import WeightedDiGraph
from repro.utils.rng import SeedLike, ensure_rng


def degree_vector(
    graph: WeightedDiGraph, weighted: bool = True, direction: str = "out"
) -> np.ndarray:
    """Per-node (weighted) degree vector, by internal index."""
    matrix = graph.to_csr()
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    if not weighted:
        matrix = sp.csr_matrix(
            (np.ones_like(matrix.data), matrix.indices, matrix.indptr),
            shape=matrix.shape,
        )
    axis = 1 if direction == "out" else 0
    return np.asarray(matrix.sum(axis=axis)).ravel()


def induced_subgraph(
    graph: WeightedDiGraph, labels: Sequence
) -> WeightedDiGraph:
    """Subgraph induced by ``labels`` (kept in the given order)."""
    keep = set(labels)
    sub = WeightedDiGraph(directed=graph.directed)
    for label in labels:
        if not graph.has_node(label):
            raise GraphError(f"unknown node {label!r}")
        sub.add_node(label)
    for u, v, w in graph.edges():
        if u in keep and v in keep:
            sub.add_edge(u, v, w)
    return sub


def bipartite_block(
    graph: WeightedDiGraph,
    left_indices: Sequence[int],
    right_indices: Sequence[int],
) -> BipartiteGraph:
    """The weighted bipartite graph ``(P_i, P_j, w)`` between two classes.

    Uses internal node indices.  This is the object Theorem 6 reasons
    about: the block of the adjacency matrix between two colors.
    """
    matrix = graph.to_csr()
    left = np.asarray(left_indices, dtype=np.intp)
    right = np.asarray(right_indices, dtype=np.intp)
    return BipartiteGraph(matrix[left][:, right])


def perturb_add_random_edges(
    graph: WeightedDiGraph,
    count: int,
    seed: SeedLike = None,
    weight: float = 1.0,
    max_attempts_factor: int = 50,
) -> WeightedDiGraph:
    """Return a copy of ``graph`` with ``count`` fresh random edges added.

    This is the Fig. 2 perturbation: new endpoints are drawn uniformly,
    skipping self-loops and already-present edges.  Raises if the graph is
    too dense to place the requested number of new edges.
    """
    rng = ensure_rng(seed)
    perturbed = graph.copy()
    n = perturbed.n_nodes
    if n < 2:
        raise GraphError("need at least 2 nodes to add edges")
    added = 0
    attempts = 0
    budget = max(count * max_attempts_factor, 100)
    labels = perturbed.labels()
    while added < count:
        attempts += 1
        if attempts > budget:
            raise GraphError(
                f"could not place {count} new edges after {attempts} attempts"
            )
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        lu, lv = labels[u], labels[v]
        if perturbed.has_edge(lu, lv):
            continue
        perturbed.add_edge(lu, lv, weight)
        added += 1
    return perturbed
