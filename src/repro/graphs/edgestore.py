"""Out-of-core edge stores: ``.npy``-backed, memmap-ready graph snapshots.

A store is a directory of seven files::

    meta.json          format name/version, n_nodes, n_arcs, directed,
                       index_dtype ("<i4" or "<i8")
    src.npy            arc tails,   CSR order (sorted by (src, dst))
    dst.npy            arc heads    — doubles as the CSR ``indices``
    weight.npy         float64      — doubles as the CSR ``data``
    csr_indptr.npy     n+1 row offsets
    csc_indices.npy    arc tails in CSC order (sorted by (dst, src))
    csc_data.npy       float64 weights in CSC order
    csc_indptr.npy     n+1 column offsets

Arcs are deduplicated (duplicate ``(src, dst)`` pairs sum their
weights, in input order) and exact-zero sums are dropped — the same COO
semantics as :meth:`WeightedDiGraph.from_arrays` and the paper's Sec. 3
"zero weight means no edge" convention.  Undirected stores hold both
directions of every off-diagonal edge, mirroring ``from_arrays``.

Index arrays are written in the dtype scipy itself would pick for the
matrix (int32 whenever ``max(n, nnz)`` fits, int64 beyond), which is
what lets ``sp.csr_matrix((data, indices, indptr))`` wrap the memmaps
**zero-copy**: the resulting matrix's ``data``/``indices``/``indptr``
share pages with the files, so a coloring run touches only the edge
segments its chunked kernels actually stream.

Ingestion is out-of-core too: :class:`EdgeStoreWriter` buffers appended
arc chunks up to ``chunk_arcs``, spills each as a lexsorted run, and
finalization performs a vectorized k-way external merge (block-at-a-time
``searchsorted`` cuts, ``np.add.reduceat`` group sums) — the full edge
list is never resident, and the dict-of-dicts adjacency never exists.
"""

from __future__ import annotations

import json
import shutil
import struct
from pathlib import Path
from typing import Any, Iterable

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.digraph import coerce_index_array

__all__ = [
    "EdgeStore",
    "EdgeStoreWriter",
    "NpyAppender",
    "ingest_arrays",
    "ingest_edgelist",
    "ingest_uniform_random",
    "memmap_descriptor",
    "open_descriptor",
]

FORMAT_NAME = "repro-edgestore"
FORMAT_VERSION = 1
META_FILE = "meta.json"

#: appended arcs buffered in RAM before a sorted run spills to disk
DEFAULT_CHUNK_ARCS = 8_000_000
#: arcs loaded per run per merge refill (doubled on demand when a single
#: duplicate key group outgrows it)
_MERGE_BLOCK = 1 << 20

_MAGIC = b"\x93NUMPY\x01\x00"
_INT32_MAX = np.iinfo(np.int32).max
#: packed (a, b) merge keys are ``a * n + b`` in int64, so n is bounded
#: by sqrt(2**63) — comfortably past every graph this package targets
_MAX_NODES = int(np.sqrt(2.0**63)) - 1


# ----------------------------------------------------------------------
# streaming .npy output
# ----------------------------------------------------------------------
class NpyAppender:
    """Streaming one-dimensional ``.npy`` writer.

    The header's shape field is written with fixed width, so the final
    element count can be patched in place on :meth:`close` — appended
    chunks stream straight to disk, nothing is buffered.
    """

    def __init__(self, path: Any, dtype: Any) -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._handle = open(self.path, "wb")
        self._handle.write(self._header(0))

    def _header(self, count: int) -> bytes:
        descr = np.lib.format.dtype_to_descr(self.dtype)
        # %-20d left-justifies the count with trailing spaces inside the
        # tuple (valid to literal_eval), keeping the header length
        # independent of the count so close() can overwrite in place.
        body = (
            "{'descr': %r, 'fortran_order': False, "
            "'shape': (%-20d,), }" % (descr, count)
        )
        unpadded = len(_MAGIC) + 2 + len(body) + 1
        body += " " * ((-unpadded) % 64)
        header = (body + "\n").encode("latin1")
        return _MAGIC + struct.pack("<H", len(header)) + header

    def append(self, values: np.ndarray) -> None:
        array = np.ascontiguousarray(values, dtype=self.dtype)
        array.tofile(self._handle)
        self.count += int(array.size)

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(self._header(self.count))
        self._handle.close()

    def __enter__(self) -> "NpyAppender":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# memmap introspection (shared with the process-pool executor)
# ----------------------------------------------------------------------
def _memmap_base(array: Any) -> np.memmap | None:
    # Walk to the ROOT memmap: a sliced memmap is itself an np.memmap
    # but inherits the parent's ``offset`` unadjusted, so only the
    # deepest memmap in the base chain pairs a data pointer with a
    # trustworthy file offset.
    found = None
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            found = base
        base = getattr(base, "base", None)
    return found


def memmap_descriptor(
    array: np.ndarray,
) -> tuple[str, str, tuple, int] | None:
    """``(path, dtype_str, shape, offset)`` when ``array`` is a
    contiguous view over a file-backed memmap, else ``None``.

    The descriptor is picklable and position-independent: any process
    can reopen the identical view with :func:`open_descriptor`, which is
    how the round executor shares graph snapshots with pool workers
    without copying them into shared memory.
    """
    base = _memmap_base(array)
    if base is None or getattr(base, "filename", None) is None:
        return None
    if not array.flags["C_CONTIGUOUS"]:
        return None
    delta = (
        array.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    if delta < 0:
        return None
    return (
        str(base.filename),
        array.dtype.str,
        tuple(array.shape),
        int(base.offset + delta),
    )


def open_descriptor(descriptor: tuple[str, str, tuple, int]) -> np.memmap:
    """Reopen a :func:`memmap_descriptor` as a read-only memmap."""
    path, dtype, shape, offset = descriptor
    return np.memmap(
        path,
        dtype=np.dtype(dtype),
        mode="r",
        shape=tuple(shape),
        offset=int(offset),
    )


# ----------------------------------------------------------------------
# external merge
# ----------------------------------------------------------------------
class _RunReader:
    """Buffered block reader over one spilled (k1, k2, payload) run."""

    def __init__(self, k1_path: Path, k2_path: Path, w_path: Path, n: int):
        self._k1 = np.load(k1_path, mmap_mode="r")
        self._k2 = np.load(k2_path, mmap_mode="r")
        self._w = np.load(w_path, mmap_mode="r")
        self._n = n
        self._pos = 0
        self.keys = np.empty(0, dtype=np.int64)
        self.payload = np.empty(0, dtype=np.float64)

    @property
    def file_remaining(self) -> int:
        return int(self._k1.size) - self._pos

    def refill(self, block: int) -> None:
        while self.keys.size < block and self.file_remaining:
            take = min(block, self.file_remaining)
            stop = self._pos + take
            packed = (
                self._k1[self._pos:stop].astype(np.int64) * self._n
                + self._k2[self._pos:stop]
            )
            self.keys = np.concatenate([self.keys, packed])
            self.payload = np.concatenate(
                [self.payload, np.asarray(self._w[self._pos:stop])]
            )
            self._pos = stop

    def cut(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        head = (self.keys[:count], self.payload[:count])
        self.keys = self.keys[count:]
        self.payload = self.payload[count:]
        return head


def _merge_runs(run_files: list, n: int, emit, block: int = _MERGE_BLOCK):
    """K-way merge of lexsorted runs, vectorized block at a time.

    ``emit(keys, payload)`` receives globally sorted blocks whose key
    groups are complete (no group spans two emits), with input order
    preserved among equal keys — the invariant the dedup summer needs.
    """
    readers = [_RunReader(*paths, n) for paths in run_files]
    while True:
        for reader in readers:
            reader.refill(block)
        if not any(reader.keys.size for reader in readers):
            break
        # Keys strictly below every unread datum are globally complete;
        # a run read to EOF no longer bounds anything.
        safe = None
        for reader in readers:
            if reader.file_remaining:
                last = int(reader.keys[-1])
                safe = last if safe is None else min(safe, last)
        if safe is None:
            cuts = [reader.keys.size for reader in readers]
        else:
            cuts = [
                int(np.searchsorted(reader.keys, safe, side="left"))
                for reader in readers
            ]
        if not sum(cuts):
            # One duplicate-key group outgrew the block: widen and retry.
            block *= 2
            continue
        parts = [
            reader.cut(count)
            for reader, count in zip(readers, cuts)
            if count
        ]
        keys = np.concatenate([part[0] for part in parts])
        payload = np.concatenate([part[1] for part in parts])
        order = np.argsort(keys, kind="stable")
        emit(keys[order], payload[order])


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class EdgeStoreWriter:
    """Chunked, external-sort ingestion into an on-disk edge store.

    Feed arc chunks with :meth:`append`; each buffered ``chunk_arcs``
    spills as a lexsorted run, and :meth:`finalize` merges the runs into
    deduplicated CSR-ordered arrays plus the CSC companion sort.  Peak
    memory is O(chunk_arcs + n), independent of the total arc count.
    """

    def __init__(
        self,
        path: Any,
        *,
        directed: bool = True,
        n_nodes: int | None = None,
        chunk_arcs: int = DEFAULT_CHUNK_ARCS,
        overwrite: bool = False,
    ) -> None:
        self.path = Path(path)
        self.directed = bool(directed)
        self.declared_n = None if n_nodes is None else int(n_nodes)
        if self.declared_n is not None and self.declared_n < 0:
            raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
        self.chunk_arcs = int(chunk_arcs)
        if self.chunk_arcs < 2:
            raise GraphError(
                f"chunk_arcs must be >= 2, got {chunk_arcs}"
            )
        if (self.path / META_FILE).exists() and not overwrite:
            raise GraphError(
                f"edge store already exists at {self.path} "
                "(pass overwrite=True to replace it)"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self._spill = self.path / ".ingest"
        if self._spill.exists():
            shutil.rmtree(self._spill)
        self._spill.mkdir()
        self._buffer: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._runs: list[tuple[Path, Path, Path]] = []
        self._appended = 0  # caller-facing arc count (pre-mirror)
        self._stored = 0  # arcs written to runs (post-mirror)
        self._max_node = -1
        self._closed = False

    # -- input ----------------------------------------------------------
    def append(
        self,
        src: Any,
        dst: Any,
        weight: Any | None = None,
    ) -> None:
        """Append parallel arc arrays (chunk of the edge list)."""
        if self._closed:
            raise GraphError("edge store writer is already finalized")
        src = coerce_index_array(src, "src")
        dst = coerce_index_array(dst, "dst")
        if src.size != dst.size:
            raise GraphError(
                f"src and dst must match, got {src.size} vs {dst.size}"
            )
        if weight is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64).ravel()
            if weight.size != src.size:
                raise GraphError(
                    f"weight must match src/dst, got {weight.size} arcs "
                    f"vs {src.size}"
                )
        if not src.size:
            return
        self._validate(src, dst)
        self._appended += src.size
        if not self.directed:
            off = src != dst
            src, dst, weight = (
                np.concatenate([src, dst[off]]),
                np.concatenate([dst, src[off]]),
                np.concatenate([weight, weight[off]]),
            )
        self._max_node = max(
            self._max_node, int(src.max()), int(dst.max())
        )
        self._buffer.append((src, dst, weight))
        self._buffered += src.size
        self._stored += src.size
        if self._buffered >= self.chunk_arcs:
            self._flush_run()

    def _validate(self, src: np.ndarray, dst: np.ndarray) -> None:
        n = self.declared_n
        low = min(int(src.min()), int(dst.min()))
        high = max(int(src.max()), int(dst.max()))
        if low >= 0 and (n is None or high < n):
            return
        bad = (src < 0) | (dst < 0)
        if n is not None:
            bad |= (src >= n) | (dst >= n)
        arc = int(np.flatnonzero(bad)[0])
        bound = "inf" if n is None else n
        raise GraphError(
            f"edge endpoints out of range [0, {bound}): "
            f"arc {self._appended + arc}: {src[arc]} -> {dst[arc]}"
        )

    def _flush_run(self) -> None:
        if not self._buffered:
            return
        src = np.concatenate([part[0] for part in self._buffer])
        dst = np.concatenate([part[1] for part in self._buffer])
        weight = np.concatenate([part[2] for part in self._buffer])
        self._buffer.clear()
        self._buffered = 0
        order = np.lexsort((dst, src))  # stable: input order on ties
        tag = f"run_{len(self._runs):05d}"
        paths = tuple(
            self._spill / f"{tag}.{stem}.npy"
            for stem in ("k1", "k2", "w")
        )
        np.save(paths[0], src[order])
        np.save(paths[1], dst[order])
        np.save(paths[2], weight[order])
        self._runs.append(paths)

    # -- output ---------------------------------------------------------
    def finalize(self) -> "EdgeStore":
        """Merge the spilled runs into the final store; return it open."""
        if self._closed:
            raise GraphError("edge store writer is already finalized")
        self._flush_run()
        n = (
            self.declared_n
            if self.declared_n is not None
            else self._max_node + 1
        )
        if n > _MAX_NODES:
            raise GraphError(
                f"edge store supports at most {_MAX_NODES} nodes, got {n}"
            )
        # Upper bound for the index dtype: dedup only shrinks nnz.  The
        # rare overshoot (int64 picked, deduped nnz fits int32) is fixed
        # by a downcast pass below so the store always matches scipy's
        # preferred dtype — the zero-copy wrap condition.
        index_dtype = (
            np.dtype(np.int32)
            if max(n, self._stored) <= _INT32_MAX
            else np.dtype(np.int64)
        )
        src_counts = np.zeros(n, dtype=np.int64)
        dst_counts = np.zeros(n, dtype=np.int64)
        src_out = NpyAppender(self.path / "src.npy", index_dtype)
        dst_out = NpyAppender(self.path / "dst.npy", index_dtype)
        weight_out = NpyAppender(self.path / "weight.npy", np.float64)

        def emit_dedup(keys: np.ndarray, weights: np.ndarray) -> None:
            starts = np.flatnonzero(
                np.concatenate(([True], keys[1:] != keys[:-1]))
            )
            sums = np.add.reduceat(weights, starts)
            unique = keys[starts]
            keep = sums != 0.0
            unique, sums = unique[keep], sums[keep]
            src = unique // n
            dst = unique - src * n
            src_out.append(src)
            dst_out.append(dst)
            weight_out.append(sums)
            src_counts[:] += np.bincount(src, minlength=n)
            dst_counts[:] += np.bincount(dst, minlength=n)

        if n and self._runs:
            _merge_runs(self._runs, n, emit_dedup)
        src_out.close()
        dst_out.close()
        weight_out.close()
        nnz = src_out.count
        if (
            index_dtype == np.int64
            and max(n, nnz) <= _INT32_MAX
        ):
            index_dtype = np.dtype(np.int32)
            for stem in ("src", "dst"):
                self._downcast(self.path / f"{stem}.npy", index_dtype)
        indptr = np.zeros(n + 1, dtype=index_dtype)
        np.cumsum(src_counts, out=indptr[1:])
        np.save(self.path / "csr_indptr.npy", indptr)

        self._build_csc(n, nnz, index_dtype, dst_counts)

        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n_nodes": int(n),
            "n_arcs": int(nnz),
            "directed": self.directed,
            "index_dtype": index_dtype.str,
        }
        (self.path / META_FILE).write_text(
            json.dumps(meta, indent=2) + "\n"
        )
        shutil.rmtree(self._spill, ignore_errors=True)
        self._closed = True
        return EdgeStore(self.path)

    def _downcast(self, path: Path, dtype: np.dtype) -> None:
        wide = np.load(path, mmap_mode="r")
        temp = path.with_suffix(".tmp.npy")
        with NpyAppender(temp, dtype) as out:
            for start in range(0, wide.size, self.chunk_arcs):
                out.append(wide[start:start + self.chunk_arcs])
        del wide
        temp.replace(path)

    def _build_csc(
        self,
        n: int,
        nnz: int,
        index_dtype: np.dtype,
        dst_counts: np.ndarray,
    ) -> None:
        """Second external sort of the final arcs, by (dst, src)."""
        runs: list[tuple[Path, Path, Path]] = []
        if nnz:
            src = np.load(self.path / "src.npy", mmap_mode="r")
            dst = np.load(self.path / "dst.npy", mmap_mode="r")
            weight = np.load(self.path / "weight.npy", mmap_mode="r")
            for index, start in enumerate(
                range(0, nnz, self.chunk_arcs)
            ):
                stop = min(start + self.chunk_arcs, nnz)
                chunk_src = np.asarray(src[start:stop])
                chunk_dst = np.asarray(dst[start:stop])
                chunk_w = np.asarray(weight[start:stop])
                order = np.lexsort((chunk_src, chunk_dst))
                tag = f"csc_{index:05d}"
                paths = tuple(
                    self._spill / f"{tag}.{stem}.npy"
                    for stem in ("k1", "k2", "w")
                )
                np.save(paths[0], chunk_dst[order])
                np.save(paths[1], chunk_src[order])
                np.save(paths[2], chunk_w[order])
                runs.append(paths)
            del src, dst, weight
        indices_out = NpyAppender(
            self.path / "csc_indices.npy", index_dtype
        )
        data_out = NpyAppender(self.path / "csc_data.npy", np.float64)

        def emit_csc(keys: np.ndarray, weights: np.ndarray) -> None:
            indices_out.append(keys % n)  # key = dst * n + src
            data_out.append(weights)

        if n and runs:
            _merge_runs(runs, n, emit_csc)
        indices_out.close()
        data_out.close()
        indptr = np.zeros(n + 1, dtype=index_dtype)
        np.cumsum(dst_counts, out=indptr[1:])
        np.save(self.path / "csc_indptr.npy", indptr)

    def __enter__(self) -> "EdgeStoreWriter":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is None and not self._closed:
            self.finalize()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class EdgeStore:
    """An on-disk edge store, ready for memmapped or resident loading."""

    _STEMS = (
        "src", "dst", "weight",
        "csr_indptr", "csc_indptr", "csc_indices", "csc_data",
    )

    def __init__(self, path: Any) -> None:
        self.path = Path(path)
        meta_path = self.path / META_FILE
        if not meta_path.exists():
            raise GraphError(f"no edge store at {self.path}")
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise GraphError(
                f"corrupt edge store metadata at {meta_path}: {exc}"
            ) from exc
        if meta.get("format") != FORMAT_NAME:
            raise GraphError(
                f"{meta_path} is not a {FORMAT_NAME} store"
            )
        if int(meta.get("version", -1)) != FORMAT_VERSION:
            raise GraphError(
                f"unsupported edge store version {meta.get('version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        self.meta = meta
        self.n_nodes = int(meta["n_nodes"])
        self.n_arcs = int(meta["n_arcs"])
        self.directed = bool(meta["directed"])
        self.index_dtype = np.dtype(meta["index_dtype"])

    def _load(self, stem: str, mmap: bool) -> np.ndarray:
        return np.load(
            self.path / f"{stem}.npy", mmap_mode="r" if mmap else None
        )

    def arc_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, weight)`` in CSR order."""
        return (
            self._load("src", mmap),
            self._load("dst", mmap),
            self._load("weight", mmap),
        )

    def csr_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` — dst/weight double as the CSR."""
        return (
            self._load("csr_indptr", mmap),
            self._load("dst", mmap),
            self._load("weight", mmap),
        )

    def csc_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self._load("csc_indptr", mmap),
            self._load("csc_indices", mmap),
            self._load("csc_data", mmap),
        )

    def csr_matrix(self, mmap: bool = True) -> sp.csr_matrix:
        """The adjacency as CSR; zero-copy over the files when ``mmap``."""
        indptr, indices, data = self.csr_arrays(mmap)
        shape = (self.n_nodes, self.n_nodes)
        matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
        matrix.has_sorted_indices = True  # sorted by construction
        return matrix

    def csc_matrix(self, mmap: bool = True) -> sp.csc_matrix:
        indptr, indices, data = self.csc_arrays(mmap)
        shape = (self.n_nodes, self.n_nodes)
        matrix = sp.csc_matrix((data, indices, indptr), shape=shape)
        matrix.has_sorted_indices = True
        return matrix

    def array_nbytes(self) -> int:
        """Bytes the seven arrays would occupy resident (file payloads)."""
        total = 0
        for stem in self._STEMS:
            array = np.load(self.path / f"{stem}.npy", mmap_mode="r")
            total += int(array.nbytes)
        return total

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"<EdgeStore {kind} n_nodes={self.n_nodes} "
            f"n_arcs={self.n_arcs} at {self.path}>"
        )


# ----------------------------------------------------------------------
# ingestion fronts
# ----------------------------------------------------------------------
def ingest_arrays(
    path: Any,
    src: Any,
    dst: Any,
    weight: Any | None = None,
    *,
    n_nodes: int | None = None,
    directed: bool = True,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
) -> EdgeStore:
    """One-shot ingestion of parallel arc arrays (chunked internally)."""
    src = coerce_index_array(src, "src")
    dst = coerce_index_array(dst, "dst")
    writer = EdgeStoreWriter(
        path,
        directed=directed,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
    )
    weights = (
        None if weight is None
        else np.asarray(weight, dtype=np.float64).ravel()
    )
    for start in range(0, max(src.size, 1), max(chunk_arcs, 1)):
        stop = start + chunk_arcs
        writer.append(
            src[start:stop],
            dst[start:stop],
            None if weights is None else weights[start:stop],
        )
    return writer.finalize()


def ingest_edgelist(
    path: Any,
    edgelist: Any,
    *,
    directed: bool = True,
    n_nodes: int | None = None,
    comments: str = "#",
    chunk_lines: int = 1_000_000,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
) -> EdgeStore:
    """Stream a whitespace-separated ``src dst [weight]`` text file.

    Node ids must be integers (the store is index-addressed); lines
    starting with ``comments`` and blank lines are skipped.  The file is
    parsed in ``chunk_lines`` batches, so arbitrarily large edge lists
    ingest in bounded memory.
    """
    writer = EdgeStoreWriter(
        path,
        directed=directed,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
    )
    src: list[int] = []
    dst: list[int] = []
    weight: list[float] = []

    def flush() -> None:
        if src:
            writer.append(
                np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(weight, dtype=np.float64),
            )
            src.clear()
            dst.clear()
            weight.clear()

    with open(edgelist, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            text = line.strip()
            if not text or text.startswith(comments):
                continue
            parts = text.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{edgelist}:{line_no}: expected 'src dst [weight]', "
                    f"got {text!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
                weight.append(
                    float(parts[2]) if len(parts) == 3 else 1.0
                )
            except ValueError as exc:
                raise GraphError(
                    f"{edgelist}:{line_no}: {exc}"
                ) from exc
            if len(src) >= chunk_lines:
                flush()
    flush()
    return writer.finalize()


def ingest_uniform_random(
    path: Any,
    n_nodes: int,
    out_degree: int,
    *,
    seed: int = 0,
    chunk_nodes: int = 500_000,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
) -> EdgeStore:
    """Stream-ingest the ``uniform_random_digraph`` family at any scale.

    Same arc model as :func:`repro.graphs.generators.uniform_random_digraph`
    — ``out_degree`` draws per node, uniform heads, self-loops dropped,
    unit weights (duplicate draws sum) — but generated chunk by chunk,
    so a 100M-arc graph is ingested without ever holding its edge list.
    """
    rng = np.random.default_rng(seed)
    writer = EdgeStoreWriter(
        path,
        directed=True,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
    )
    for start in range(0, n_nodes, chunk_nodes):
        stop = min(start + chunk_nodes, n_nodes)
        src = np.repeat(
            np.arange(start, stop, dtype=np.int64), out_degree
        )
        dst = rng.integers(0, n_nodes, size=src.size, dtype=np.int64)
        keep = src != dst
        writer.append(src[keep], dst[keep])
    return writer.finalize()
